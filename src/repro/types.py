"""Shared lightweight value types used across the library.

These are deliberately tiny: plain frozen dataclasses and numpy-friendly
aliases.  Heavier domain objects (poses, videos, reports) live in their
own packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

# Type aliases for documentation purposes.  Binary masks are boolean
# 2-D arrays; RGB images are float arrays in [0, 1] of shape (H, W, 3).
Mask = np.ndarray
RgbImage = np.ndarray
HsvImage = np.ndarray


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D point in world coordinates (y grows upward)."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_array(self) -> np.ndarray:
        """Return the point as a ``(2,)`` float array ``[x, y]``."""
        return np.array([self.x, self.y], dtype=float)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True, slots=True)
class Segment:
    """A 2-D line segment between two points."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """The point halfway between ``start`` and ``end``."""
        return Point(
            (self.start.x + self.end.x) / 2.0,
            (self.start.y + self.end.y) / 2.0,
        )

    def as_array(self) -> np.ndarray:
        """Return a ``(2, 2)`` array ``[[x0, y0], [x1, y1]]``."""
        return np.array(
            [[self.start.x, self.start.y], [self.end.x, self.end.y]],
            dtype=float,
        )


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned box in image coordinates (inclusive bounds).

    Rows index the vertical axis (top-down, as in numpy arrays) and
    columns the horizontal axis.
    """

    row_min: int
    col_min: int
    row_max: int
    col_max: int

    def __post_init__(self) -> None:
        if self.row_max < self.row_min or self.col_max < self.col_min:
            raise ValueError(
                f"degenerate bounding box: rows [{self.row_min}, {self.row_max}], "
                f"cols [{self.col_min}, {self.col_max}]"
            )

    @property
    def height(self) -> int:
        """Number of rows covered (inclusive)."""
        return self.row_max - self.row_min + 1

    @property
    def width(self) -> int:
        """Number of columns covered (inclusive)."""
        return self.col_max - self.col_min + 1

    @property
    def area(self) -> int:
        """Number of pixels covered."""
        return self.height * self.width

    @property
    def center(self) -> tuple[float, float]:
        """``(row, col)`` centre of the box."""
        return (
            (self.row_min + self.row_max) / 2.0,
            (self.col_min + self.col_max) / 2.0,
        )

    def contains(self, row: int, col: int) -> bool:
        """Whether pixel ``(row, col)`` lies inside the box."""
        return (
            self.row_min <= row <= self.row_max
            and self.col_min <= col <= self.col_max
        )

    def expanded(self, margin: int, shape: tuple[int, int] | None = None) -> "BoundingBox":
        """Return a box grown by ``margin`` pixels on every side.

        When ``shape`` is given the result is clipped to
        ``[0, shape[0]-1] x [0, shape[1]-1]``.
        """
        row_min = self.row_min - margin
        col_min = self.col_min - margin
        row_max = self.row_max + margin
        col_max = self.col_max + margin
        if shape is not None:
            row_min = max(row_min, 0)
            col_min = max(col_min, 0)
            row_max = min(row_max, shape[0] - 1)
            col_max = min(col_max, shape[1] - 1)
        return BoundingBox(row_min, col_min, row_max, col_max)

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """Return the overlapping box, or ``None`` when disjoint."""
        row_min = max(self.row_min, other.row_min)
        col_min = max(self.col_min, other.col_min)
        row_max = min(self.row_max, other.row_max)
        col_max = min(self.col_max, other.col_max)
        if row_max < row_min or col_max < col_min:
            return None
        return BoundingBox(row_min, col_min, row_max, col_max)

    def slices(self) -> tuple[slice, slice]:
        """Return ``(row_slice, col_slice)`` for numpy indexing."""
        return (
            slice(self.row_min, self.row_max + 1),
            slice(self.col_min, self.col_max + 1),
        )


def mask_bounding_box(mask: np.ndarray) -> BoundingBox | None:
    """Bounding box of the True pixels of ``mask``, or ``None`` if empty."""
    rows, cols = np.nonzero(mask)
    if rows.size == 0:
        return None
    return BoundingBox(
        int(rows.min()), int(cols.min()), int(rows.max()), int(cols.max())
    )
