"""Non-GA search baselines for the pose-fitting problem.

The paper only compares against Shoji et al.'s single-frame GA; these
classical local-search baselines (hill climbing, pure random search,
Nelder–Mead via scipy) calibrate how much of the temporal tracker's
speed comes from the GA itself versus from the temporal seeding.  All
return the shared :class:`~repro.ga.convergence.SearchResult` so the
comparison bench can treat every strategy uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize

from .convergence import GenerationStats, SearchResult
from ..errors import ConfigurationError
from ..model.geometry import wrap_angle
from ..model.pose import GENES

ScalarFitness = Callable[[np.ndarray], float]
BatchFitness = Callable[[np.ndarray], np.ndarray]


def _as_scalar(fitness_fn: BatchFitness) -> ScalarFitness:
    def scalar(genes: np.ndarray) -> float:
        return float(np.atleast_1d(fitness_fn(genes[None, :]))[0])

    return scalar


@dataclass(frozen=True, slots=True)
class HillClimbConfig:
    """Random-restart-free stochastic hill climbing."""

    iterations: int = 300
    center_sigma: float = 2.0
    angle_sigma: float = 8.0
    shrink_every: int = 100  # halve step sizes periodically
    record_every: int = 10  # history granularity

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.record_every < 1 or self.shrink_every < 1:
            raise ConfigurationError("record/shrink intervals must be >= 1")


def hill_climb(
    start: np.ndarray,
    fitness_fn: BatchFitness,
    config: HillClimbConfig | None = None,
    rng: np.random.Generator | None = None,
) -> SearchResult:
    """Stochastic hill climbing from ``start``.

    Each iteration perturbs one random gene; the move is kept only if
    it improves fitness.  Step sizes shrink geometrically.
    """
    config = config or HillClimbConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    scalar = _as_scalar(fitness_fn)

    current = np.array(start, dtype=np.float64, copy=True)
    if current.shape != (GENES,):
        raise ConfigurationError(f"start must have shape ({GENES},)")
    current_fit = scalar(current)
    evaluations = 1

    result = SearchResult(best_genes=current.copy(), best_fitness=current_fit)
    result.history.append(GenerationStats(0, current_fit, current_fit, evaluations))

    center_sigma = config.center_sigma
    angle_sigma = config.angle_sigma
    for iteration in range(1, config.iterations + 1):
        candidate = current.copy()
        gene = int(rng.integers(0, GENES))
        if gene < 2:
            candidate[gene] += rng.normal(0.0, center_sigma)
        else:
            candidate[gene] = wrap_angle(candidate[gene] + rng.normal(0.0, angle_sigma))
        candidate_fit = scalar(candidate)
        evaluations += 1
        if candidate_fit < current_fit:
            current, current_fit = candidate, candidate_fit
            if current_fit < result.best_fitness:
                result.best_fitness = current_fit
                result.best_genes = current.copy()
        if iteration % config.shrink_every == 0:
            center_sigma *= 0.5
            angle_sigma *= 0.5
        if iteration % config.record_every == 0:
            result.history.append(
                GenerationStats(
                    iteration // config.record_every,
                    result.best_fitness,
                    current_fit,
                    evaluations,
                )
            )
    result.total_evaluations = evaluations
    return result


def random_search(
    sampler: Callable[[int], np.ndarray],
    fitness_fn: BatchFitness,
    budget: int = 2000,
    batch_size: int = 50,
) -> SearchResult:
    """Pure random search: sample, evaluate, keep the best.

    ``sampler(n)`` must return ``(n, 10)`` chromosomes.
    """
    if budget < 1:
        raise ConfigurationError(f"budget must be >= 1, got {budget}")
    result = SearchResult(best_genes=np.zeros(GENES), best_fitness=np.inf)
    evaluations = 0
    generation = 0
    while evaluations < budget:
        n = min(batch_size, budget - evaluations)
        batch = sampler(n)
        fits = np.asarray(fitness_fn(batch), dtype=np.float64)
        evaluations += n
        best_idx = int(fits.argmin())
        if fits[best_idx] < result.best_fitness:
            result.best_fitness = float(fits[best_idx])
            result.best_genes = batch[best_idx].copy()
        result.history.append(
            GenerationStats(
                generation, result.best_fitness, float(fits.mean()), evaluations
            )
        )
        generation += 1
    result.total_evaluations = evaluations
    return result


def nelder_mead(
    start: np.ndarray,
    fitness_fn: BatchFitness,
    max_evaluations: int = 1500,
) -> SearchResult:
    """Nelder–Mead simplex refinement from ``start`` (scipy).

    Angles are optimised without wrapping (the simplex stays local);
    the final chromosome is wrapped before being returned.
    """
    scalar = _as_scalar(fitness_fn)
    counter = {"n": 0}
    history: list[GenerationStats] = []
    best = {"fit": np.inf, "genes": np.array(start, dtype=np.float64, copy=True)}

    def objective(genes: np.ndarray) -> float:
        counter["n"] += 1
        value = scalar(genes)
        if value < best["fit"]:
            best["fit"] = value
            best["genes"] = genes.copy()
        if counter["n"] % 50 == 0:
            history.append(
                GenerationStats(len(history), best["fit"], value, counter["n"])
            )
        return value

    optimize.minimize(
        objective,
        np.asarray(start, dtype=np.float64),
        method="Nelder-Mead",
        options={"maxfev": max_evaluations, "xatol": 0.05, "fatol": 1e-5},
    )
    genes = best["genes"].copy()
    genes[2:] = wrap_angle(genes[2:])
    result = SearchResult(best_genes=genes, best_fitness=float(best["fit"]))
    result.history = history or [
        GenerationStats(0, float(best["fit"]), float(best["fit"]), counter["n"])
    ]
    result.total_evaluations = counter["n"]
    return result
