"""Genetic operators of the paper: grouped crossover and mutation.

"Multiple crossover is used with genes in the chromosome grouped as
follows: (x0, y0), (ρ0), (ρ1, ρ4), (ρ2, ρ5), (ρ3, ρ6, ρ7). ... We can
set the crossover rate to 0.2.  After a crossover, mutation can be
applied to each group with a probability 0.01."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..model.chromosome import GENE_GROUPS
from ..model.geometry import wrap_angle
from ..model.pose import GENES


def singleton_groups() -> tuple[tuple[int, ...], ...]:
    """Every gene in its own group (the no-grouping ablation)."""
    return tuple((gene,) for gene in range(GENES))


@dataclass(frozen=True, slots=True)
class OperatorConfig:
    """Rates and mutation scales of the genetic operators.

    ``gene_groups`` defaults to the paper's five kinematic groups; the
    ablation bench swaps in :func:`singleton_groups` to measure what
    the grouping buys.
    """

    crossover_rate: float = 0.2  # per-group swap probability (paper)
    mutation_rate: float = 0.01  # per-group mutation probability (paper)
    center_sigma: float = 2.0  # pixels, for (x0, y0) mutations
    angle_sigma: float = 8.0  # degrees, for angle mutations
    gene_groups: tuple[tuple[int, ...], ...] = GENE_GROUPS

    def __post_init__(self) -> None:
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError(
                f"crossover_rate must be in [0, 1], got {self.crossover_rate}"
            )
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError(
                f"mutation_rate must be in [0, 1], got {self.mutation_rate}"
            )
        if self.center_sigma < 0 or self.angle_sigma < 0:
            raise ConfigurationError("mutation sigmas must be >= 0")
        flat = sorted(g for group in self.gene_groups for g in group)
        if flat != list(range(GENES)):
            raise ConfigurationError(
                "gene_groups must partition all 10 genes exactly once"
            )


def grouped_crossover(
    parent_a: np.ndarray,
    parent_b: np.ndarray,
    rate: float,
    rng: np.random.Generator,
    groups: tuple[tuple[int, ...], ...] = GENE_GROUPS,
) -> tuple[np.ndarray, np.ndarray]:
    """Swap whole gene groups between two parents.

    Each group is exchanged independently with probability ``rate``.
    Returns two children (copies).
    """
    child_a = np.array(parent_a, dtype=np.float64, copy=True)
    child_b = np.array(parent_b, dtype=np.float64, copy=True)
    if child_a.shape != (GENES,) or child_b.shape != (GENES,):
        raise ConfigurationError("parents must be 10-gene chromosomes")
    for group in groups:
        if rng.random() < rate:
            idx = list(group)
            child_a[idx], child_b[idx] = child_b[idx].copy(), child_a[idx].copy()
    return child_a, child_b


def mutate(
    genes: np.ndarray,
    config: OperatorConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Perturb whole gene groups with probability ``mutation_rate`` each.

    A mutated centre group gets Gaussian pixel noise; a mutated angle
    group gets Gaussian angular noise (wrapped to [0, 360)).  Returns a
    copy.
    """
    out = np.array(genes, dtype=np.float64, copy=True)
    if out.shape != (GENES,):
        raise ConfigurationError("mutate expects a 10-gene chromosome")
    for group in config.gene_groups:
        if rng.random() < config.mutation_rate:
            for gene in group:
                if gene < 2:
                    out[gene] += rng.normal(0.0, config.center_sigma)
                else:
                    out[gene] = wrap_angle(out[gene] + rng.normal(0.0, config.angle_sigma))
    return out
