"""Temporal GA pose tracking — the paper's contribution.

Frame 0 comes from human annotation; every later frame is estimated by
the GA seeded from the previous frame's pose (centres around the new
silhouette centroid, angles inside per-stick windows ``Δρ_l``).  With
this seeding the paper observes the best model already "at the second
generation" — the Fig. 7 bench measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .convergence import SearchResult
from .engine import GAConfig
from .population import temporal_population
from .strategies import SEARCH_STRATEGIES, SearchRequest
from ..errors import ConfigurationError, ImageError, ModelError, TrackingError
from ..imaging.image import ensure_mask
from ..model.containment import ContainmentChecker
from ..model.fitness import FitnessConfig, SilhouetteFitness
from ..model.pose import StickPose
from ..model.sticks import AngleWindows, BodyDimensions
from ..runtime import Instrumentation


@dataclass(frozen=True, slots=True)
class RecoveryConfig:
    """Per-frame recovery ladder for degraded silhouettes (extension).

    Real footage loses silhouettes: a dropped frame, a noise burst, an
    occlusion.  With recovery enabled the tracker bridges such frames
    instead of raising :class:`~repro.errors.TrackingError`:

    1. a frame whose silhouette is missing/degenerate, whose search is
       infeasible, or whose fitness *collapses* relative to the healthy
       frames so far is replaced by a damped constant-velocity
       extrapolation (or a carry-forward of the previous pose);
    2. after ``reanchor_after`` consecutive losses, the next usable
       silhouette re-anchors the track via the automatic moment-based
       annotator instead of the (by now stale) previous pose;
    3. frames that cannot be recovered carry the last pose forward and
       are marked ``failed``.

    Every frame's outcome is recorded as a :class:`FrameHealth` on the
    :class:`TrackingResult`.  ``enabled=False`` restores the strict
    fail-fast behaviour (the ``paper`` preset).
    """

    enabled: bool = True
    # How many consecutive lost frames may be bridged by extrapolation
    # before the track is declared ``failed`` (carry-forward only).
    max_extrapolated: int = 3
    # Consecutive losses after which the next usable silhouette is
    # re-seeded from auto-annotation instead of the previous pose.
    reanchor_after: int = 2
    # A tracked frame whose Eq. 3 fitness exceeds
    # ``max(collapse_min_fitness, collapse_factor * median(healthy))``
    # is treated as lost (the silhouette was there but was garbage).
    collapse_factor: float = 3.0
    collapse_min_fitness: float = 0.9
    # Silhouettes below this pixel count are treated as empty.
    min_silhouette_pixels: int = 40
    # Adaptive floor: once >= 3 frames were accepted, a silhouette
    # smaller than this fraction of the median accepted area is treated
    # as lost (catches residual blobs after a blanked/occluded frame
    # that still clear the absolute pixel floor).  Clean jump
    # silhouettes keep >~0.9 of the median area frame to frame, so 0.5
    # has wide margin on both sides.
    min_area_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_extrapolated < 0:
            raise ConfigurationError("recovery.max_extrapolated must be >= 0")
        if self.reanchor_after < 1:
            raise ConfigurationError("recovery.reanchor_after must be >= 1")
        if self.collapse_factor <= 1.0:
            raise ConfigurationError("recovery.collapse_factor must be > 1")
        if self.min_silhouette_pixels < 1:
            raise ConfigurationError(
                "recovery.min_silhouette_pixels must be >= 1"
            )
        if not 0.0 <= self.min_area_fraction < 1.0:
            raise ConfigurationError(
                "recovery.min_area_fraction must be in [0, 1)"
            )


@dataclass(frozen=True, slots=True)
class TrackerConfig:
    """Everything the temporal tracker needs besides the body.

    Five extensions beyond the paper (all on by default, all
    switchable off for the paper-faithful ablation):

    * ``extrapolate`` — centre the angle windows on a damped
      constant-velocity prediction instead of the previous pose, so a
      fast arm swing stays inside the search window;
    * ``reseed_fraction`` — give this fraction of the initial
      population one uniformly randomised angle group, so a limb lost
      in an earlier frame can be rediscovered;
    * ``temporal_weight`` — a weak smoothness prior added to Eq. 3;
    * ``limb_rescue`` — post-GA grid sweep over the arm group and foot;
    * ``polish`` — post-GA coordinate descent with shrinking steps.
    """

    ga: GAConfig = field(
        default_factory=lambda: GAConfig(max_generations=30, patience=10)
    )
    windows: AngleWindows = field(default_factory=AngleWindows)
    fitness: FitnessConfig = field(default_factory=FitnessConfig)
    # Per-frame search strategy, resolved by name from
    # :data:`~repro.ga.strategies.SEARCH_STRATEGIES` ("ga",
    # "hill_climb", "random_search", "nelder_mead").
    strategy: str = "ga"
    containment_margin: int = 1
    containment_samples: int = 7
    min_inside_fraction: float = 0.95
    include_previous: bool = True
    hard_containment: bool = True  # reject offspring outside the silhouette
    extrapolate: bool = True
    extrapolation_damping: float = 0.7
    max_extrapolation_step: float = 50.0  # degrees per frame, clamp
    reseed_fraction: float = 0.10
    # Weight of the temporal prior added to Eq. 3 during tracking:
    # penalises mean angular deviation (fraction of 180°) from the
    # window centre.  Small on purpose — silhouette evidence must win
    # whenever it exists; the prior only breaks silhouette ties (e.g.
    # an arm lying over the trunk).  0 restores the paper's pure Eq. 3.
    temporal_weight: float = 0.03
    # Limb rescue (extension): after the GA, sweep a coarse grid over
    # the arm gene group (and the foot angle) and adopt a feasible
    # candidate when it beats the incumbent's *raw* Eq. 3 fitness by
    # ``rescue_margin``.  The arm is the limb the window seeding loses
    # (it whips half a circle in a few frames), and once lost the
    # 0.01-per-group mutation never brings it back; the paper's own
    # figures only ever show two tracked frames, where this cannot yet
    # be observed.
    limb_rescue: bool = True
    rescue_margin: float = 0.005
    # Local polish (extension): after GA + rescue, coordinate-descent
    # over all genes with shrinking steps.  Removes the grid
    # quantisation of the rescue sweep and sharpens angles the GA left
    # a few degrees off (rule thresholds like "ρ2 > 270°" are tight).
    polish: bool = True
    polish_angle_steps: tuple[float, ...] = (12.0, 6.0, 3.0)
    polish_center_steps: tuple[float, ...] = (2.0, 1.0)
    # Per-frame fault recovery (extension): bridge lost/degenerate
    # silhouettes instead of raising.  See :class:`RecoveryConfig`.
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    def __post_init__(self) -> None:
        if self.strategy not in SEARCH_STRATEGIES:
            known = ", ".join(SEARCH_STRATEGIES.names())
            raise ConfigurationError(
                f"unknown search strategy {self.strategy!r}; "
                f"choose from: {known}"
            )


def extrapolate_pose(
    prev2: StickPose,
    prev1: StickPose,
    damping: float = 0.7,
    max_angle_step: float = 50.0,
    max_center_step: float = 12.0,
) -> StickPose:
    """Damped constant-velocity prediction of the next pose."""
    from ..model.geometry import angle_difference, wrap_angle

    dx = np.clip(damping * (prev1.x0 - prev2.x0), -max_center_step, max_center_step)
    dy = np.clip(damping * (prev1.y0 - prev2.y0), -max_center_step, max_center_step)
    angles = []
    for a2, a1 in zip(prev2.angles_deg, prev1.angles_deg):
        step = float(np.clip(
            damping * angle_difference(a1, a2), -max_angle_step, max_angle_step
        ))
        angles.append(float(wrap_angle(a1 + step)))
    return StickPose(
        x0=prev1.x0 + float(dx), y0=prev1.y0 + float(dy), angles_deg=tuple(angles)
    )


#: Valid :attr:`FrameHealth.status` values, from best to worst.
FRAME_STATUSES = ("tracked", "reanchored", "extrapolated", "failed")


@dataclass(frozen=True, slots=True)
class FrameHealth:
    """What happened to one frame of the track.

    ``status`` is one of :data:`FRAME_STATUSES`: ``tracked`` (the
    search ran and its result was accepted), ``reanchored`` (accepted,
    but seeded from auto-annotation after a run of losses),
    ``extrapolated`` (the silhouette was unusable; the pose is a
    motion-model prediction) or ``failed`` (unrecoverable; the last
    pose was carried forward).  ``reason`` says why recovery was
    needed; ``recovery`` names the mechanism used (``extrapolate``,
    ``carry_forward`` or ``auto_annotate``).
    """

    frame_index: int
    status: str
    reason: str = ""
    recovery: str | None = None
    fitness: float | None = None

    @property
    def healthy(self) -> bool:
        """True when the frame's pose came from an accepted search."""
        return self.status in ("tracked", "reanchored")

    def to_dict(self) -> dict:
        """JSON-ready form (service diagnostics)."""
        return {
            "frame": self.frame_index,
            "status": self.status,
            "reason": self.reason,
            "recovery": self.recovery,
            "fitness": self.fitness,
        }


@dataclass(frozen=True, slots=True)
class FrameTrackingRecord:
    """Per-frame tracking outcome."""

    frame_index: int
    pose: StickPose
    fitness: float
    search: SearchResult


@dataclass(frozen=True, slots=True)
class TrackingResult:
    """Pose track over a whole silhouette sequence."""

    poses: tuple[StickPose, ...]  # includes the annotated frame 0
    records: tuple[FrameTrackingRecord, ...]  # searched frames only
    # One entry per frame (including frame 0) when tracked through
    # :meth:`TemporalPoseTracker.track`; empty for hand-built results.
    health: tuple[FrameHealth, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when any frame needed recovery (or failed outright)."""
        return any(not entry.healthy for entry in self.health)

    def unhealthy_frames(self) -> list[int]:
        """Frame indices whose pose did not come from an accepted search."""
        return [
            entry.frame_index for entry in self.health if not entry.healthy
        ]

    def health_summary(self) -> dict[str, int]:
        """Frame count per health status (zero-count statuses included)."""
        summary = {status: 0 for status in FRAME_STATUSES}
        for entry in self.health:
            summary[entry.status] = summary.get(entry.status, 0) + 1
        return summary

    @property
    def mean_generation_of_best(self) -> float:
        """Average generation at which each frame's best model appeared."""
        if not self.records:
            return 0.0
        return float(
            np.mean([record.search.generation_of_best for record in self.records])
        )

    @property
    def mean_fitness(self) -> float:
        """Average final fitness across tracked frames."""
        if not self.records:
            return 0.0
        return float(np.mean([record.fitness for record in self.records]))

    def fitness_track(self) -> np.ndarray:
        """Final fitness per tracked frame."""
        return np.array([record.fitness for record in self.records])

    def confidence_track(self) -> np.ndarray:
        """Per-frame confidence in [0, 1] from the fitness distribution.

        A frame whose Eq. 3 fitness sits at the sequence median gets
        ~0.5; frames much worse than the robust spread (median absolute
        deviation) fall toward 0.  Useful for flagging frames where the
        silhouette was bad or the model slipped.
        """
        fitness = self.fitness_track()
        if fitness.size == 0:
            return fitness
        median = float(np.median(fitness))
        mad = float(np.median(np.abs(fitness - median)))
        if mad < 1e-8:
            # Degenerate spread: (near-)identical fitness everywhere.
            # A tiny MAD fallback would explode the z-scores and flag
            # frames that differ only by float noise, so report a flat
            # "no evidence either way" confidence instead.
            return np.full(fitness.shape, 0.5)
        z = (fitness - median) / (1.4826 * mad)
        return 1.0 / (1.0 + np.exp(z - 1.0))

    def flagged_frames(self, confidence_threshold: float = 0.25) -> list[int]:
        """Frame indices whose confidence falls below the threshold."""
        confidence = self.confidence_track()
        return [
            record.frame_index
            for record, value in zip(self.records, confidence)
            if value < confidence_threshold
        ]


class TemporalPoseTracker:
    """Track the jumper's pose through a silhouette sequence.

    With an :class:`~repro.runtime.Instrumentation` attached, the
    tracker times every frame under the ``tracking/frame`` span,
    forwards the GA's counters (generations, fitness evaluations,
    rejected offspring), accumulates ``fitness.silhouette_points`` and
    emits one ``tracking/frame`` convergence event per tracked frame.
    """

    def __init__(
        self,
        dims: BodyDimensions,
        config: TrackerConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.dims = dims
        self.config = config or TrackerConfig()
        self.instrumentation = instrumentation or Instrumentation()

    def estimate_frame(
        self,
        mask: np.ndarray,
        prev_pose: StickPose,
        rng: np.random.Generator,
        prev_prev_pose: StickPose | None = None,
    ) -> tuple[StickPose, SearchResult]:
        """Estimate one frame's pose from the previous frame's.

        When ``prev_prev_pose`` is given and extrapolation is enabled,
        the search windows are centred on a damped constant-velocity
        prediction instead of on ``prev_pose`` itself.
        """
        mask = ensure_mask(mask)
        if not mask.any():
            raise TrackingError("cannot estimate a pose on an empty silhouette")
        cfg = self.config

        window_center = prev_pose
        extra_seeds: list[StickPose] = []
        if cfg.extrapolate and prev_prev_pose is not None:
            window_center = extrapolate_pose(
                prev_prev_pose,
                prev_pose,
                damping=cfg.extrapolation_damping,
                max_angle_step=cfg.max_extrapolation_step,
            )
            extra_seeds.append(window_center)

        fitness = SilhouetteFitness(mask, self.dims, cfg.fitness)
        self.instrumentation.count(
            "fitness.silhouette_points", fitness.num_points
        )
        checker = ContainmentChecker(
            mask,
            self.dims,
            margin=cfg.containment_margin,
            samples_per_stick=cfg.containment_samples,
            min_inside_fraction=cfg.min_inside_fraction,
        )
        population = temporal_population(
            window_center,
            mask,
            cfg.windows,
            cfg.ga.population_size,
            checker=checker,
            rng=rng,
            include_previous=False,
            reseed_fraction=cfg.reseed_fraction,
            extra_seeds=(
                [prev_pose] + extra_seeds if cfg.include_previous else extra_seeds
            ),
        )
        if cfg.temporal_weight > 0:
            center_angles = np.asarray(window_center.angles_deg)
            weight = cfg.temporal_weight

            def fitness_fn(genes: np.ndarray, _raw=fitness.evaluate) -> np.ndarray:
                raw = np.atleast_1d(_raw(genes))
                batch = np.atleast_2d(genes)
                deviation = np.abs(
                    np.mod(batch[:, 2:] - center_angles + 180.0, 360.0) - 180.0
                ).mean(axis=1) / 180.0
                return raw + weight * deviation
        else:
            fitness_fn = fitness.evaluate

        validity = checker.check if cfg.hard_containment else None

        def sampler(n: int) -> np.ndarray:
            return temporal_population(
                window_center,
                mask,
                cfg.windows,
                n,
                checker=checker,
                rng=rng,
                include_previous=False,
                reseed_fraction=cfg.reseed_fraction,
            )

        strategy = SEARCH_STRATEGIES.get(cfg.strategy)
        result = strategy(
            SearchRequest(
                population=population,
                start=window_center.to_genes(),
                fitness_fn=fitness_fn,
                validity_fn=validity,
                sampler=sampler,
                config=cfg,
                rng=rng,
                instrumentation=self.instrumentation,
            )
        )
        if cfg.limb_rescue:
            result.best_genes = self._rescue_limbs(
                result.best_genes, fitness, checker
            )
        if cfg.polish:
            result.best_genes = self._polish(result.best_genes, fitness, checker)

        pose = StickPose.from_genes(result.best_genes)
        # Keep the GA's internal objective in best_fitness (consistent
        # with its history); expose the raw Eq. 3 value separately.
        result.raw_fitness = float(fitness.evaluate(result.best_genes))
        return pose, result

    def _rescue_limbs(
        self,
        genes: np.ndarray,
        fitness: SilhouetteFitness,
        checker: ContainmentChecker,
    ) -> np.ndarray:
        """Grid-sweep the arm group and the foot angle (see config)."""
        from ..model.chromosome import angle_gene
        from ..model.sticks import FOOT, FOREARM, UPPER_ARM

        best = genes.copy()
        arm_gene = angle_gene(UPPER_ARM)
        forearm_gene = angle_gene(FOREARM)

        # Arm group: 18 upper-arm headings x 5 elbow offsets.
        candidates = [best]
        for arm in range(0, 360, 20):
            for rel in (-60.0, -30.0, 0.0, 30.0, 60.0):
                candidate = best.copy()
                candidate[arm_gene] = float(arm)
                candidate[forearm_gene] = float((arm + rel) % 360.0)
                candidates.append(candidate)
        best = self._pick_rescue(np.asarray(candidates), fitness, checker)

        # Foot: 12 headings.
        foot_gene = angle_gene(FOOT)
        candidates = [best]
        for foot in range(0, 360, 30):
            candidate = best.copy()
            candidate[foot_gene] = float(foot)
            candidates.append(candidate)
        return self._pick_rescue(np.asarray(candidates), fitness, checker)

    def _polish(
        self,
        genes: np.ndarray,
        fitness: SilhouetteFitness,
        checker: ContainmentChecker,
    ) -> np.ndarray:
        """Coordinate descent with shrinking steps, feasibility-checked."""
        from .refine import local_polish

        cfg = self.config
        return local_polish(
            genes,
            fitness.evaluate,
            validity_fn=checker.check,
            angle_steps=cfg.polish_angle_steps,
            center_steps=cfg.polish_center_steps,
        )

    def _pick_rescue(
        self,
        candidates: np.ndarray,
        fitness: SilhouetteFitness,
        checker: ContainmentChecker,
    ) -> np.ndarray:
        """Best feasible candidate, if clearly better than candidates[0]."""
        incumbent = candidates[0]
        feasible = checker.check(candidates)
        feasible[0] = True  # the incumbent always competes
        pool = candidates[feasible]
        scores = np.atleast_1d(fitness.evaluate(pool))
        incumbent_score = scores[0]
        best_idx = int(scores.argmin())
        if scores[best_idx] < incumbent_score - self.config.rescue_margin:
            return pool[best_idx].copy()
        return incumbent.copy()

    # ------------------------------------------------------------------
    # Recovery ladder
    # ------------------------------------------------------------------
    def _reanchor_seed(self, mask: np.ndarray) -> StickPose | None:
        """A fresh seed pose from auto-annotation, or None if impossible."""
        from ..model.annotation import auto_annotate

        try:
            return auto_annotate(mask, dims=self.dims).pose
        except (ModelError, ImageError):
            return None

    def _collapse_threshold(
        self, accepted_fitness: list[float]
    ) -> float | None:
        """Fitness above which a tracked frame counts as lost."""
        rec = self.config.recovery
        if len(accepted_fitness) < 3:
            return None  # not enough healthy history to judge against
        median = float(np.median(accepted_fitness))
        return max(rec.collapse_min_fitness, rec.collapse_factor * median)

    def _recover(
        self,
        index: int,
        prev: StickPose,
        prev_prev: StickPose | None,
        loss_run: int,
        reason: str,
    ) -> tuple[StickPose, None, FrameHealth]:
        """Bridge one lost frame: extrapolate, carry forward, or fail."""
        rec = self.config.recovery
        if loss_run >= rec.max_extrapolated:
            health = FrameHealth(index, "failed", reason, "carry_forward")
            return prev, None, health
        if prev_prev is not None:
            pose = extrapolate_pose(
                prev_prev,
                prev,
                damping=self.config.extrapolation_damping,
                max_angle_step=self.config.max_extrapolation_step,
            )
            recovery = "extrapolate"
        else:
            pose, recovery = prev, "carry_forward"
        return pose, None, FrameHealth(index, "extrapolated", reason, recovery)

    def _track_frame(
        self,
        mask: np.ndarray,
        index: int,
        prev: StickPose,
        prev_prev: StickPose | None,
        rng: np.random.Generator,
        loss_run: int,
        accepted_fitness: list[float],
        accepted_areas: list[int],
    ) -> tuple[StickPose, FrameTrackingRecord | None, FrameHealth]:
        """One frame of the recovery ladder (recovery enabled)."""
        rec = self.config.recovery
        try:
            mask = ensure_mask(mask)
        except ImageError as exc:
            return self._recover(
                index, prev, prev_prev, loss_run, f"unusable mask: {exc}"
            )
        pixels = int(mask.sum())
        area_floor = rec.min_silhouette_pixels
        if len(accepted_areas) >= 3:
            adaptive = rec.min_area_fraction * float(
                np.median(accepted_areas)
            )
            area_floor = max(area_floor, int(adaptive))
        if pixels < area_floor:
            return self._recover(
                index,
                prev,
                prev_prev,
                loss_run,
                f"silhouette too small ({pixels} px, need {area_floor})",
            )

        status, recovery, reason = "tracked", None, ""
        seed, seed_prev = prev, prev_prev
        if loss_run >= rec.reanchor_after:
            anchor = self._reanchor_seed(mask)
            if anchor is not None:
                seed, seed_prev = anchor, None
                status, recovery = "reanchored", "auto_annotate"
                reason = f"re-anchored after {loss_run} consecutive losses"
                self.instrumentation.count("tracking.reanchors", 1)
        try:
            pose, search = self.estimate_frame(
                mask, seed, rng, prev_prev_pose=seed_prev
            )
        except (TrackingError, ModelError) as exc:
            return self._recover(index, prev, prev_prev, loss_run, str(exc))
        fitness = (
            search.raw_fitness
            if search.raw_fitness is not None
            else search.best_fitness
        )
        threshold = self._collapse_threshold(accepted_fitness)
        if threshold is not None and fitness > threshold:
            return self._recover(
                index,
                prev,
                prev_prev,
                loss_run,
                f"fitness collapse ({fitness:.3f} > {threshold:.3f})",
            )
        record = FrameTrackingRecord(
            frame_index=index, pose=pose, fitness=fitness, search=search
        )
        accepted_areas.append(pixels)
        return pose, record, FrameHealth(index, status, reason, recovery, fitness)

    def start(
        self,
        initial_pose: StickPose,
        rng: np.random.Generator | None = None,
    ) -> "TrackingSession":
        """Open an incremental track anchored on the frame-0 pose.

        The returned :class:`TrackingSession` accepts one silhouette at
        a time via :meth:`TrackingSession.step` and can report its
        accumulated :class:`TrackingResult` at any point — the
        streaming analyzer's per-frame entry point.  :meth:`track` is a
        thin loop over it.
        """
        return TrackingSession(self, initial_pose, rng=rng)

    def track(
        self,
        silhouettes: list[np.ndarray],
        initial_pose: StickPose,
        rng: np.random.Generator | None = None,
    ) -> TrackingResult:
        """Track frames 1..T-1, starting from the annotated frame-0 pose.

        With :attr:`TrackerConfig.recovery` enabled (the default), a
        frame whose silhouette is empty, degenerate, infeasible or
        whose fitness collapses is bridged by the recovery ladder
        instead of raising; the per-frame outcome is recorded in
        :attr:`TrackingResult.health`.  With recovery disabled, any
        such frame raises :class:`~repro.errors.TrackingError` exactly
        as the paper-faithful pipeline does.
        """
        if not silhouettes:
            raise TrackingError("no silhouettes to track")
        session = self.start(initial_pose, rng=rng)
        for index in range(1, len(silhouettes)):
            session.step(silhouettes[index])
        return session.result()


class TrackingSession:
    """Frame-at-a-time view of :meth:`TemporalPoseTracker.track`.

    Holds exactly the loop state the batch tracker threads between
    frames (previous poses, loss run, accepted fitness/areas), so
    stepping a whole sequence through a session is byte-identical to
    one :meth:`~TemporalPoseTracker.track` call — same RNG draws, same
    instrumentation spans, counters and events, same recovery ladder.
    """

    def __init__(
        self,
        tracker: TemporalPoseTracker,
        initial_pose: StickPose,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._tracker = tracker
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._poses: list[StickPose] = [initial_pose]
        self._records: list[FrameTrackingRecord] = []
        self._health: list[FrameHealth] = [
            FrameHealth(0, "tracked", "annotated first frame")
        ]
        self._prev = initial_pose
        self._prev_prev: StickPose | None = None
        self._loss_run = 0
        self._accepted_fitness: list[float] = []
        self._accepted_areas: list[int] = []
        self._index = 0

    @property
    def frames_seen(self) -> int:
        """Number of frames in the track so far (frame 0 included)."""
        return len(self._poses)

    @property
    def poses(self) -> tuple[StickPose, ...]:
        """The track so far, frame 0 first."""
        return tuple(self._poses)

    @property
    def latest_pose(self) -> StickPose:
        """The most recent pose in the track."""
        return self._prev

    @property
    def latest_health(self) -> FrameHealth:
        """Health of the most recent frame."""
        return self._health[-1]

    def step(self, mask: np.ndarray) -> tuple[StickPose, FrameHealth]:
        """Track the next frame's silhouette and return its outcome."""
        tracker = self._tracker
        instrumentation = tracker.instrumentation
        self._index += 1
        index = self._index
        with instrumentation.span("tracking/frame"):
            if tracker.config.recovery.enabled:
                pose, record, frame_health = tracker._track_frame(
                    mask,
                    index,
                    self._prev,
                    self._prev_prev,
                    self._rng,
                    self._loss_run,
                    self._accepted_fitness,
                    self._accepted_areas,
                )
            else:
                pose, search = tracker.estimate_frame(
                    mask, self._prev, self._rng, prev_prev_pose=self._prev_prev
                )
                fitness = (
                    search.raw_fitness
                    if search.raw_fitness is not None
                    else search.best_fitness
                )
                record = FrameTrackingRecord(
                    frame_index=index,
                    pose=pose,
                    fitness=fitness,
                    search=search,
                )
                frame_health = FrameHealth(index, "tracked", fitness=fitness)
        self._poses.append(pose)
        self._health.append(frame_health)
        instrumentation.count("tracking.frames", 1)
        if record is not None:
            self._records.append(record)
            self._accepted_fitness.append(record.fitness)
            self._loss_run = 0
            search = record.search
            instrumentation.event(
                "tracking/frame",
                frame=index,
                fitness=record.fitness,
                generations=search.generations,
                generation_of_best=search.generation_of_best,
                evaluations=search.total_evaluations,
            )
        else:
            self._loss_run += 1
            instrumentation.count("tracking.recovered_frames", 1)
            instrumentation.event(
                "tracking/recovery",
                frame=index,
                status=frame_health.status,
                reason=frame_health.reason,
                recovery=frame_health.recovery,
            )
        self._prev_prev = self._prev
        self._prev = pose
        return pose, frame_health

    def result(self) -> TrackingResult:
        """The accumulated track as an immutable :class:`TrackingResult`."""
        return TrackingResult(
            poses=tuple(self._poses),
            records=tuple(self._records),
            health=tuple(self._health),
        )
