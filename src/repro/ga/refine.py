"""Local pose refinement by coordinate descent.

Shared by the temporal tracker's polish stage and by
:func:`repro.model.annotation` refinement: starting from a chromosome,
each gene is nudged by shrinking steps and a move is kept only when it
improves the raw Eq. 3 fitness while staying feasible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..model.geometry import wrap_angle
from ..model.pose import GENES

BatchFitness = Callable[[np.ndarray], np.ndarray]
BatchValidity = Callable[[np.ndarray], np.ndarray]


def local_polish(
    genes: np.ndarray,
    fitness_fn: BatchFitness,
    validity_fn: BatchValidity | None = None,
    angle_steps: tuple[float, ...] = (12.0, 6.0, 3.0),
    center_steps: tuple[float, ...] = (2.0, 1.0),
) -> np.ndarray:
    """Coordinate descent over all genes with shrinking steps.

    ``angle_steps`` drives the schedule; ``center_steps`` is padded
    with its last value when shorter.  Returns an improved copy.
    """
    best = np.array(genes, dtype=np.float64, copy=True)
    if best.shape != (GENES,):
        raise ValueError(f"expected a ({GENES},) chromosome, got {best.shape}")
    best_score = float(np.atleast_1d(fitness_fn(best[None, :]))[0])

    padded_centers = list(center_steps) + [center_steps[-1]] * len(angle_steps)
    for angle_step, center_step in zip(angle_steps, padded_centers):
        for gene in range(GENES):
            step = center_step if gene < 2 else angle_step
            candidates = []
            for delta in (-step, step):
                candidate = best.copy()
                if gene < 2:
                    candidate[gene] += delta
                else:
                    candidate[gene] = wrap_angle(candidate[gene] + delta)
                candidates.append(candidate)
            batch = np.asarray(candidates)
            if validity_fn is not None:
                feasible = np.asarray(validity_fn(batch), dtype=bool)
                if not feasible.any():
                    continue
                batch = batch[feasible]
            scores = np.atleast_1d(fitness_fn(batch))
            index = int(scores.argmin())
            if scores[index] < best_score - 1e-9:
                best = batch[index].copy()
                best_score = float(scores[index])
    return best
