"""GA-based pose estimation: engine, temporal tracker, and baselines."""

from .baselines import HillClimbConfig, hill_climb, nelder_mead, random_search
from .convergence import GenerationStats, SearchResult
from .engine import GAConfig, GeneticAlgorithm
from .operators import OperatorConfig, grouped_crossover, mutate, singleton_groups
from .population import random_population, silhouette_centroid, temporal_population
from .single_frame import (
    SingleFrameConfig,
    SingleFrameEstimate,
    estimate_single_frame,
)
from .temporal import (
    FrameHealth,
    FrameTrackingRecord,
    RecoveryConfig,
    TemporalPoseTracker,
    TrackerConfig,
    TrackingResult,
    TrackingSession,
)

__all__ = [
    "HillClimbConfig",
    "hill_climb",
    "nelder_mead",
    "random_search",
    "GenerationStats",
    "SearchResult",
    "GAConfig",
    "GeneticAlgorithm",
    "OperatorConfig",
    "singleton_groups",
    "grouped_crossover",
    "mutate",
    "random_population",
    "silhouette_centroid",
    "temporal_population",
    "SingleFrameConfig",
    "SingleFrameEstimate",
    "estimate_single_frame",
    "FrameHealth",
    "FrameTrackingRecord",
    "RecoveryConfig",
    "TemporalPoseTracker",
    "TrackerConfig",
    "TrackingResult",
    "TrackingSession",
]
