"""Registry of pose-search strategies for the temporal tracker.

The tracker's per-frame search is pluggable: every strategy consumes
the same :class:`SearchRequest` (temporally seeded population, window
centre, fitness, containment predicate) and returns the shared
:class:`~repro.ga.convergence.SearchResult`, so they are selectable by
name via ``tracker.strategy`` with no imports changed at call sites:

* ``"ga"`` — the paper's elitist genetic algorithm (default);
* ``"hill_climb"`` — stochastic hill climbing from the window centre;
* ``"random_search"`` — pure random sampling inside the windows;
* ``"nelder_mead"`` — scipy simplex refinement from the window centre.

The classical baselines are budget-matched to the GA: they receive the
same number of fitness evaluations the configured GA would spend at
full term (``population_size × max_generations``), so changing
``tracker.ga.max_generations`` scales every strategy consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from .baselines import HillClimbConfig, hill_climb, nelder_mead, random_search
from .convergence import SearchResult
from .engine import GeneticAlgorithm
from ..registry import Registry
from ..runtime import Instrumentation

if TYPE_CHECKING:
    from .temporal import TrackerConfig


@dataclass(slots=True)
class SearchRequest:
    """Everything one per-frame pose search may use.

    ``population`` is the temporally seeded initial population,
    ``start`` the window-centre chromosome (previous or extrapolated
    pose), ``sampler`` draws fresh window-constrained chromosomes, and
    ``validity_fn`` is the hard-containment predicate (``None`` when
    disabled).  ``config`` is the tracker configuration, whose
    ``ga`` block also sets the shared evaluation budget.
    """

    population: np.ndarray
    start: np.ndarray
    fitness_fn: Callable[[np.ndarray], np.ndarray]
    validity_fn: Callable[[np.ndarray], np.ndarray] | None
    sampler: Callable[[int], np.ndarray]
    config: "TrackerConfig"
    rng: np.random.Generator
    instrumentation: Instrumentation

    @property
    def budget(self) -> int:
        """Fitness evaluations the configured GA would spend at full term."""
        ga = self.config.ga
        return ga.population_size * ga.max_generations


SearchStrategy = Callable[[SearchRequest], SearchResult]

#: Pose-search strategies selectable via ``tracker.strategy``.
SEARCH_STRATEGIES: Registry[SearchStrategy] = Registry("search strategy")


@SEARCH_STRATEGIES.register("ga")
def _ga(request: SearchRequest) -> SearchResult:
    return GeneticAlgorithm(
        request.config.ga, instrumentation=request.instrumentation
    ).run(
        request.population,
        request.fitness_fn,
        validity_fn=request.validity_fn,
        rng=request.rng,
    )


@SEARCH_STRATEGIES.register("hill_climb")
def _hill_climb(request: SearchRequest) -> SearchResult:
    return hill_climb(
        request.start,
        request.fitness_fn,
        config=HillClimbConfig(iterations=request.budget),
        rng=request.rng,
    )


@SEARCH_STRATEGIES.register("random_search")
def _random_search(request: SearchRequest) -> SearchResult:
    return random_search(
        request.sampler,
        request.fitness_fn,
        budget=request.budget,
        batch_size=request.config.ga.population_size,
    )


@SEARCH_STRATEGIES.register("nelder_mead")
def _nelder_mead(request: SearchRequest) -> SearchResult:
    return nelder_mead(
        request.start, request.fitness_fn, max_evaluations=request.budget
    )
