"""Elitist genetic algorithm (paper Section 3, "evolution strategy").

"For the evolution strategy, the elitism is used.  Meaning, in each
generation, only the fittest chromosomes can be left and they have a
higher probability to be picked for generating the next generation."

The engine is generic over the fitness callable (lower is better) and
an optional validity callable used to reject offspring that leave the
silhouette ("the generated chromosomes not in the silhouette are also
removed from the population").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .convergence import GenerationStats, SearchResult
from .operators import OperatorConfig, grouped_crossover, mutate
from ..errors import ConfigurationError
from ..model.pose import GENES
from ..runtime import Instrumentation

FitnessFn = Callable[[np.ndarray], np.ndarray]
ValidityFn = Callable[[np.ndarray], np.ndarray]

#: Draw ranking parents via a precomputed cdf + ``searchsorted`` instead
#: of ``rng.choice(p=...)``, which rebuilds the cdf on every call.  The
#: inline draw consumes the identical RNG stream and returns the
#: identical index (asserted in tests/test_perf_parity.py).  Flipped off
#: only by ``repro.perf.compat.legacy_hot_paths``.
_INLINE_SELECTION = True


@dataclass(frozen=True, slots=True)
class GAConfig:
    """Engine parameters.

    ``elite_fraction`` of the population survives unchanged each
    generation; parents are drawn rank-proportionally so fitter
    chromosomes "have a higher probability to be picked".
    """

    population_size: int = 60
    elite_fraction: float = 0.1
    max_generations: int = 50
    patience: int | None = 15  # stop after this many stale generations
    target_fitness: float | None = None
    offspring_attempts: int = 10  # retries to produce a valid child
    # Carry known fitness values across generations (elites survive
    # unchanged; exhausted-retry fallbacks are parent copies) and score
    # only fresh offspring.  Requires the fitness of a chromosome to be
    # independent of the rest of the batch — true of every fitness in
    # this repo (Eq. 3 is a per-chromosome sum over silhouette points).
    # The search trajectory is identical either way; only the number of
    # `fitness_fn` rows changes.  Off by default: at this repo's
    # population sizes the vectorised fitness batch is so cheap that
    # the split-batch bookkeeping costs more than the skipped rows —
    # BENCH_4 measured 0.817x (a slowdown) with `identical_best` true.
    # Flip on only when a single fitness row is genuinely expensive
    # (e.g. max_points far above the presets').
    incremental: bool = False
    operators: OperatorConfig = field(default_factory=OperatorConfig)
    # "ranking" (default): linear rank-proportional parent choice —
    # "the fittest ... have a higher probability to be picked".
    # "tournament": pick the best of `tournament_size` uniform draws.
    selection: str = "ranking"
    selection_pressure: float = 1.7  # linear-ranking pressure in [1, 2]
    tournament_size: int = 3

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ConfigurationError(
                f"population_size must be >= 4, got {self.population_size}"
            )
        if not 0.0 < self.elite_fraction < 1.0:
            raise ConfigurationError(
                f"elite_fraction must be in (0, 1), got {self.elite_fraction}"
            )
        if self.max_generations < 1:
            raise ConfigurationError(
                f"max_generations must be >= 1, got {self.max_generations}"
            )
        if self.patience is not None and self.patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {self.patience}")
        if not 1.0 <= self.selection_pressure <= 2.0:
            raise ConfigurationError(
                f"selection_pressure must be in [1, 2], got {self.selection_pressure}"
            )
        if self.offspring_attempts < 1:
            raise ConfigurationError(
                f"offspring_attempts must be >= 1, got {self.offspring_attempts}"
            )
        if self.selection not in ("ranking", "tournament"):
            raise ConfigurationError(
                f"selection must be 'ranking' or 'tournament', got {self.selection!r}"
            )
        if self.tournament_size < 2:
            raise ConfigurationError(
                f"tournament_size must be >= 2, got {self.tournament_size}"
            )

    @property
    def elite_count(self) -> int:
        """Number of chromosomes copied unchanged into each generation."""
        return max(1, int(round(self.elite_fraction * self.population_size)))


class GeneticAlgorithm:
    """Run the paper's elitist GA over a chromosome population.

    When an :class:`~repro.runtime.Instrumentation` is given, every run
    accumulates the ``ga.runs``, ``ga.generations``, ``ga.evaluations``
    and ``ga.rejected_offspring`` counters and emits one ``ga/run``
    event with the convergence summary.
    """

    def __init__(
        self,
        config: GAConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.config = config or GAConfig()
        self.instrumentation = instrumentation or Instrumentation()

    def run(
        self,
        initial_population: np.ndarray,
        fitness_fn: FitnessFn,
        validity_fn: ValidityFn | None = None,
        rng: np.random.Generator | None = None,
    ) -> SearchResult:
        """Evolve ``initial_population`` until a stopping criterion.

        Parameters
        ----------
        initial_population:
            Array ``(P, 10)``; ``P`` may differ from the configured
            population size (it is resized by truncation/sampling).
        fitness_fn:
            Batch fitness, lower is better.
        validity_fn:
            Optional batch predicate; offspring failing it are
            regenerated (up to ``offspring_attempts``), then replaced
            by their better parent.
        """
        cfg = self.config
        rng = rng if rng is not None else np.random.default_rng(0)

        population = np.array(initial_population, dtype=np.float64, copy=True)
        if population.ndim != 2 or population.shape[1] != GENES:
            raise ConfigurationError(
                f"initial population must be (P, {GENES}), got {population.shape}"
            )
        if population.shape[0] > cfg.population_size:
            population = population[: cfg.population_size]
        elif population.shape[0] < cfg.population_size:
            extra_idx = rng.integers(
                0, population.shape[0], cfg.population_size - population.shape[0]
            )
            population = np.vstack([population, population[extra_idx]])

        fitness = np.asarray(fitness_fn(population), dtype=np.float64)
        evaluations = population.shape[0]
        rejected = 0

        result = SearchResult(
            best_genes=population[int(fitness.argmin())].copy(),
            best_fitness=float(fitness.min()),
        )
        result.history.append(
            GenerationStats(0, float(fitness.min()), float(fitness.mean()), evaluations)
        )

        stale = 0
        ranks_weights = self._ranking_weights(cfg.population_size)
        # Normalised cdf, built once per run — `rng.choice` recomputes
        # exactly this on every draw.
        ranks_cdf = ranks_weights.cumsum()
        ranks_cdf /= ranks_cdf[-1]

        for generation in range(1, cfg.max_generations + 1):
            if cfg.target_fitness is not None and result.best_fitness <= cfg.target_fitness:
                break
            if cfg.patience is not None and stale >= cfg.patience:
                break

            order = np.argsort(fitness)
            population = population[order]
            fitness = fitness[order]

            next_population = [population[i].copy() for i in range(cfg.elite_count)]
            # Fitness already known for row i, or None for fresh offspring.
            carried: list[float | None] = [
                float(fitness[i]) for i in range(cfg.elite_count)
            ]

            while len(next_population) < cfg.population_size:
                pa, pb = self._pick_parents(rng, ranks_weights, ranks_cdf)
                child = self._make_child(
                    population[pa], population[pb], validity_fn, rng
                )
                if child is None:
                    rejected += 1
                    # Fall back to the better parent, kept as-is.
                    keep = min(pa, pb)
                    child = population[keep].copy()
                    carried.append(float(fitness[keep]))
                else:
                    carried.append(None)
                next_population.append(child)

            population = np.vstack(next_population)
            if cfg.incremental:
                fresh = [i for i, known in enumerate(carried) if known is None]
                scored = np.empty(cfg.population_size, dtype=np.float64)
                for i, known in enumerate(carried):
                    if known is not None:
                        scored[i] = known
                if fresh:
                    scored[fresh] = np.asarray(
                        fitness_fn(population[fresh]), dtype=np.float64
                    ).reshape(-1)
                fitness = scored
                evaluations += len(fresh)
            else:
                fitness = np.asarray(fitness_fn(population), dtype=np.float64)
                evaluations += population.shape[0]

            gen_best = float(fitness.min())
            if gen_best < result.best_fitness - 1e-12:
                result.best_fitness = gen_best
                result.best_genes = population[int(fitness.argmin())].copy()
                stale = 0
            else:
                stale += 1
            result.history.append(
                GenerationStats(
                    generation, result.best_fitness, float(fitness.mean()), evaluations
                )
            )

        result.total_evaluations = evaluations
        result.rejected_offspring = rejected

        instrumentation = self.instrumentation
        instrumentation.count("ga.runs", 1)
        instrumentation.count("ga.generations", len(result.history) - 1)
        instrumentation.count("ga.evaluations", evaluations)
        instrumentation.count("ga.rejected_offspring", rejected)
        instrumentation.event(
            "ga/run",
            generations=len(result.history) - 1,
            generation_of_best=result.generation_of_best,
            best_fitness=result.best_fitness,
            evaluations=evaluations,
            rejected_offspring=rejected,
        )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ranking_weights(self, size: int) -> np.ndarray:
        """Linear ranking selection probabilities (best rank first)."""
        pressure = self.config.selection_pressure
        ranks = np.arange(size, dtype=np.float64)
        weights = pressure - (2.0 * pressure - 2.0) * ranks / max(size - 1, 1)
        return weights / weights.sum()

    def _pick_parents(
        self,
        rng: np.random.Generator,
        weights: np.ndarray,
        cdf: np.ndarray,
    ) -> tuple[int, int]:
        if self.config.selection == "tournament":
            # Population is sorted by fitness, so the tournament winner
            # is simply the smallest sampled index.
            size = self.config.tournament_size
            pa = int(rng.integers(0, weights.size, size).min())
            pb = int(rng.integers(0, weights.size, size).min())
            return pa, pb
        if _INLINE_SELECTION:
            # `Generator.choice(n, p=w)` normalises w into a cdf and
            # searches it with one uniform draw; doing the same against
            # the prebuilt cdf consumes the identical stream.
            pa = int(cdf.searchsorted(rng.random(), side="right"))
            pb = int(cdf.searchsorted(rng.random(), side="right"))
            return pa, pb
        pa = int(rng.choice(weights.size, p=weights))
        pb = int(rng.choice(weights.size, p=weights))
        return pa, pb

    def _make_child(
        self,
        parent_a: np.ndarray,
        parent_b: np.ndarray,
        validity_fn: ValidityFn | None,
        rng: np.random.Generator,
    ) -> np.ndarray | None:
        ops = self.config.operators
        for _ in range(self.config.offspring_attempts):
            child_a, child_b = grouped_crossover(
                parent_a, parent_b, ops.crossover_rate, rng, groups=ops.gene_groups
            )
            child = child_a if rng.random() < 0.5 else child_b
            child = mutate(child, ops, rng)
            if validity_fn is None or bool(validity_fn(child[None, :])[0]):
                return child
        return None
