"""Single-frame GA pose estimation — the Shoji et al. [5] baseline.

The prior method the paper builds on estimates a pose from one
silhouette with no temporal information: random initial angles and on
the order of 200 generations.  Uniformly random articulations are
almost never entirely inside a silhouette, so instead of the paper's
hard containment rejection this baseline uses a penalised fitness
``F_S + λ · (fraction of stick samples outside the silhouette)`` —
the standard soft-constraint formulation.  The comparison bench
measures how many generations it needs to match the quality the
temporal tracker reaches within a couple of generations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .convergence import SearchResult
from .engine import GAConfig, GeneticAlgorithm
from .operators import OperatorConfig
from .population import random_population
from ..errors import TrackingError
from ..imaging.image import ensure_mask
from ..model.containment import ContainmentChecker
from ..model.fitness import FitnessConfig, SilhouetteFitness
from ..model.pose import StickPose
from ..model.sticks import BodyDimensions


@dataclass(frozen=True, slots=True)
class SingleFrameConfig:
    """Configuration of the single-frame baseline.

    200 generations is the budget reported for [5]; mutation is more
    aggressive than in the tracker because random initialisation must
    explore the whole angle space.
    """

    ga: GAConfig = field(
        default_factory=lambda: GAConfig(
            population_size=60,
            max_generations=200,
            patience=None,
            operators=OperatorConfig(
                crossover_rate=0.2,
                mutation_rate=0.15,
                center_sigma=3.0,
                angle_sigma=25.0,
            ),
        )
    )
    fitness: FitnessConfig = field(default_factory=FitnessConfig)
    penalty_weight: float = 3.0
    center_delta: float = 10.0
    containment_margin: int = 2

    def __post_init__(self) -> None:
        if self.penalty_weight < 0:
            raise TrackingError(
                f"penalty_weight must be >= 0, got {self.penalty_weight}"
            )


@dataclass(frozen=True, slots=True)
class SingleFrameEstimate:
    """Result of a single-frame estimation."""

    pose: StickPose
    fitness: float  # raw (unpenalised) Eq. 3 fitness of the best pose
    search: SearchResult


def estimate_single_frame(
    mask: np.ndarray,
    dims: BodyDimensions,
    config: SingleFrameConfig | None = None,
    rng: np.random.Generator | None = None,
) -> SingleFrameEstimate:
    """Estimate a pose from one silhouette with no temporal prior."""
    config = config or SingleFrameConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    mask = ensure_mask(mask)
    if not mask.any():
        raise TrackingError("cannot estimate a pose on an empty silhouette")

    fitness = SilhouetteFitness(mask, dims, config.fitness)
    checker = ContainmentChecker(mask, dims, margin=config.containment_margin)

    def penalised(genes: np.ndarray) -> np.ndarray:
        raw = np.atleast_1d(fitness.evaluate(genes))
        outside = 1.0 - np.atleast_1d(checker.inside_fraction(genes))
        return raw + config.penalty_weight * outside

    population = random_population(
        mask, config.ga.population_size, rng=rng, center_delta=config.center_delta
    )
    result = GeneticAlgorithm(config.ga).run(population, penalised, rng=rng)
    pose = StickPose.from_genes(result.best_genes)
    return SingleFrameEstimate(
        pose=pose,
        fitness=float(fitness.evaluate(result.best_genes)),
        search=result,
    )
