"""Initial populations (paper Section 3).

For frame ``k > 0`` the paper seeds the GA from the previous frame:
centres are "randomly selected from the rectangle
{(xc − Δx, yc − Δy), (xc + Δx, yc + Δy)}" around the silhouette's
geometric centre, and each angle from ``ρ_{l,k−1} ± Δρ_l``.  Any
chromosome not inside the silhouette is rejected.  For the Shoji-style
single-frame baseline there is no previous pose and angles start
uniformly random.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrackingError
from ..imaging.image import ensure_mask
from ..model.containment import ContainmentChecker
from ..model.geometry import mask_points_world, wrap_angle
from ..model.pose import GENES, StickPose
from ..model.sticks import NUM_STICKS, AngleWindows


def silhouette_centroid(mask: np.ndarray) -> tuple[float, float]:
    """Geometric centre of a silhouette in world coordinates."""
    points = mask_points_world(ensure_mask(mask))
    if points.shape[0] == 0:
        raise TrackingError("cannot compute the centroid of an empty silhouette")
    return float(points[:, 0].mean()), float(points[:, 1].mean())


def _sample_window(
    prev_pose: StickPose,
    center: tuple[float, float],
    windows: AngleWindows,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    genes = np.empty((size, GENES), dtype=np.float64)
    cx, cy = center
    genes[:, 0] = rng.uniform(cx - windows.center_delta, cx + windows.center_delta, size)
    genes[:, 1] = rng.uniform(cy - windows.center_delta, cy + windows.center_delta, size)
    prev = np.asarray(prev_pose.angles_deg)
    for stick in range(NUM_STICKS):
        delta = windows.deltas_deg[stick]
        genes[:, 2 + stick] = wrap_angle(
            rng.uniform(prev[stick] - delta, prev[stick] + delta, size)
        )
    return genes


def _reseed_groups(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Randomise one angle gene-group per chromosome, uniformly.

    Recovery mechanism (extension beyond the paper): when the temporal
    prior for one limb is wrong — e.g. the arm whips from behind the
    body to in front between two frames — no chromosome inside the
    ``±Δρ`` window can be correct, and the low mutation rate (0.01)
    cannot recover it.  Reseeding a whole gene group uniformly restores
    the GA's ability to rediscover a lost limb while all other genes
    keep the temporal prior.
    """
    from ..model.chromosome import GENE_GROUPS

    out = batch.copy()
    angle_groups = [g for g in GENE_GROUPS if min(g) >= 2]
    for row in range(out.shape[0]):
        group = angle_groups[int(rng.integers(0, len(angle_groups)))]
        for gene in group:
            out[row, gene] = rng.uniform(0.0, 360.0)
    return out


def temporal_population(
    prev_pose: StickPose,
    mask: np.ndarray,
    windows: AngleWindows,
    size: int,
    checker: ContainmentChecker | None = None,
    rng: np.random.Generator | None = None,
    include_previous: bool = True,
    reseed_fraction: float = 0.0,
    extra_seeds: list[StickPose] | None = None,
    max_batches: int = 20,
) -> np.ndarray:
    """The paper's temporally seeded initial population for one frame.

    Rejection-samples inside the windows until ``size`` chromosomes
    pass the containment check; if feasible samples are too rare the
    remainder is filled with the best-effort (infeasible) samples so
    tracking degrades gracefully instead of dying.

    ``reseed_fraction`` of the population has one angle group
    uniformly randomised (limb-recovery immigrants, see
    :func:`_reseed_groups`); ``extra_seeds`` (e.g. an extrapolated
    pose) are prepended like the previous pose.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if not 0.0 <= reseed_fraction <= 1.0:
        raise TrackingError(
            f"reseed_fraction must be in [0, 1], got {reseed_fraction}"
        )
    center = silhouette_centroid(mask)
    num_reseed = int(round(reseed_fraction * size))

    accepted: list[np.ndarray] = []
    overflow: list[np.ndarray] = []
    for _ in range(max_batches):
        batch = _sample_window(prev_pose, center, windows, size, rng)
        if num_reseed:
            count = max(1, num_reseed * batch.shape[0] // size)
            batch[:count] = _reseed_groups(batch[:count], rng)
        if checker is None:
            accepted.extend(batch)
        else:
            valid = checker.check(batch)
            accepted.extend(batch[valid])
            overflow.extend(batch[~valid])
        if len(accepted) >= size:
            break

    seeds: list[np.ndarray] = []
    if include_previous:
        seeds.append(prev_pose.to_genes())
    for pose in extra_seeds or []:
        seeds.append(pose.to_genes())
    accepted = seeds + accepted

    if len(accepted) < size:
        needed = size - len(accepted)
        accepted.extend(overflow[:needed])
    if len(accepted) < size:  # no overflow either: duplicate what we have
        reps = int(np.ceil(size / max(len(accepted), 1)))
        accepted = (accepted * reps)[:size]
    return np.asarray(accepted[:size], dtype=np.float64)


def random_population(
    mask: np.ndarray,
    size: int,
    rng: np.random.Generator | None = None,
    center_delta: float = 10.0,
) -> np.ndarray:
    """Shoji-style random initial population (no temporal prior).

    Centres are sampled around the silhouette centroid (the paper's [5]
    likewise assumes a known rough location); every angle is uniform in
    [0, 360).  No containment filtering — the single-frame baseline
    relies on a penalised fitness instead, because uniformly random
    articulations are almost never fully inside a silhouette.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    cx, cy = silhouette_centroid(mask)
    genes = np.empty((size, GENES), dtype=np.float64)
    genes[:, 0] = rng.uniform(cx - center_delta, cx + center_delta, size)
    genes[:, 1] = rng.uniform(cy - center_delta, cy + center_delta, size)
    genes[:, 2:] = rng.uniform(0.0, 360.0, (size, NUM_STICKS))
    return genes
