"""Convergence records shared by every search strategy.

The paper's headline pose-estimation claim is about *when* the best
model appears ("the shown best estimated model was generated at the
second generation"), so every optimiser in this package reports a
generation-indexed history, the generation of its best solution, and
its evaluation budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class GenerationStats:
    """Fitness statistics of one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    evaluations: int  # cumulative fitness evaluations so far


@dataclass(slots=True)
class SearchResult:
    """Outcome of one optimisation run (GA or baseline)."""

    best_genes: np.ndarray
    best_fitness: float
    history: list[GenerationStats] = field(default_factory=list)
    total_evaluations: int = 0
    rejected_offspring: int = 0
    # When the optimiser ran on an augmented objective (e.g. Eq. 3 plus
    # a temporal prior), this holds the raw Eq. 3 fitness of the best
    # chromosome; None when the objective was already the raw fitness.
    raw_fitness: float | None = None

    @property
    def generations(self) -> int:
        """Number of generations (or iterations) executed."""
        return len(self.history)

    @property
    def generation_of_best(self) -> int:
        """First generation whose best fitness equals the final best.

        This is the number the paper reports for Fig. 7 ("generated at
        the second generation").  Generation 0 is the initial
        population.
        """
        for stats in self.history:
            if stats.best_fitness <= self.best_fitness + 1e-12:
                return stats.generation
        return self.generations - 1

    def generations_to_reach(self, threshold: float) -> int | None:
        """First generation at or below ``threshold``, or None."""
        for stats in self.history:
            if stats.best_fitness <= threshold:
                return stats.generation
        return None

    def fitness_curve(self) -> np.ndarray:
        """Best-fitness-so-far per generation, as an array."""
        return np.array([stats.best_fitness for stats in self.history])
