"""Video-sequence container.

A :class:`VideoSequence` is an immutable stack of RGB frames of equal
size, stored as one ``(T, H, W, 3)`` float array in ``[0, 1]`` — the
"video sequence" every stage of the paper's pipeline consumes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..errors import VideoError
from ..imaging.image import ensure_rgb


class VideoSequence:
    """An ordered, fixed-size stack of RGB frames."""

    def __init__(self, frames: np.ndarray | Sequence[np.ndarray]) -> None:
        if isinstance(frames, np.ndarray) and frames.ndim == 4:
            stack = [ensure_rgb(frame, f"frame {i}") for i, frame in enumerate(frames)]
        else:
            stack = [ensure_rgb(frame, f"frame {i}") for i, frame in enumerate(frames)]
        if not stack:
            raise VideoError("a video sequence needs at least one frame")
        shape = stack[0].shape
        for index, frame in enumerate(stack):
            if frame.shape != shape:
                raise VideoError(
                    f"frame {index} has shape {frame.shape}, expected {shape}"
                )
        self._frames = np.stack(stack, axis=0)
        self._frames.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._frames.shape[0]

    def __getitem__(self, index: int) -> np.ndarray:
        return self._frames[index]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._frames)

    @property
    def frames(self) -> np.ndarray:
        """The read-only ``(T, H, W, 3)`` frame stack."""
        return self._frames

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return self._frames.shape[1]

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return self._frames.shape[2]

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """``(num_frames, height, width, 3)``."""
        return self._frames.shape  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def clip(self, start: int, stop: int) -> "VideoSequence":
        """Sub-sequence of frames ``start..stop-1``."""
        if not 0 <= start < stop <= len(self):
            raise VideoError(
                f"invalid clip [{start}, {stop}) for a {len(self)}-frame video"
            )
        return VideoSequence(self._frames[start:stop])

    def map_frames(self, func) -> "VideoSequence":
        """Apply ``func`` to every frame, returning a new sequence."""
        return VideoSequence([func(frame.copy()) for frame in self._frames])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save to a compressed ``.npz`` archive."""
        np.savez_compressed(path, frames=self._frames)

    @classmethod
    def load(cls, path: str | Path) -> "VideoSequence":
        """Load a sequence written by :meth:`save`."""
        with np.load(path) as archive:
            if "frames" not in archive.files:
                raise VideoError(f"{path} does not contain a 'frames' array")
            return cls(archive["frames"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VideoSequence({len(self)} frames, "
            f"{self.height}x{self.width})"
        )
