"""Video I/O beyond ``.npz``: frame directories of Netpbm images.

The paper's imagined web system receives videos from CCD cameras; the
portable interchange format this library supports without codecs is a
directory of numbered PPM frames (any tool can produce those from a
real video, e.g. ``ffmpeg -i jump.avi frame_%04d.ppm``).
"""

from __future__ import annotations

import re
from pathlib import Path

from .sequence import VideoSequence
from ..errors import VideoError
from ..imaging.io import read_ppm, write_ppm

_FRAME_RE = re.compile(r"(\d+)\.ppm$")


def save_ppm_dir(video: VideoSequence, directory: str | Path) -> list[Path]:
    """Write every frame as ``frame_%04d.ppm`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, frame in enumerate(video):
        path = directory / f"frame_{index:04d}.ppm"
        write_ppm(path, frame)
        paths.append(path)
    return paths


def load_ppm_dir(directory: str | Path) -> VideoSequence:
    """Load a video from a directory of numbered ``.ppm`` frames.

    Frames are ordered by the last integer in their file name, so both
    ``frame_0001.ppm`` and ``7.ppm`` schemes work.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise VideoError(f"{directory} is not a directory")
    entries = []
    for path in directory.iterdir():
        match = _FRAME_RE.search(path.name)
        if match:
            entries.append((int(match.group(1)), path))
    if not entries:
        raise VideoError(f"no numbered .ppm frames found in {directory}")
    entries.sort()
    return VideoSequence([read_ppm(path) for _, path in entries])
