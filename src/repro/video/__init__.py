"""Video container and synthetic-video substrate."""

from .sequence import VideoSequence

__all__ = ["VideoSequence"]
