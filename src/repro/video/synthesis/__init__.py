"""Synthetic standing-long-jump video generation with ground truth."""

from .body import BodyAppearance
from .dataset import (
    SyntheticJump,
    SyntheticJumpConfig,
    synthesize_dataset,
    synthesize_flawed_jump,
    synthesize_jump,
)
from .flaws import Standard, all_standards, apply_flaws, violate
from .longclip import (
    LongClip,
    LongClipConfig,
    synthesize_idle_clip,
    synthesize_long_clip,
)
from .motion import (
    PHASE_FLIGHT,
    PHASE_INITIATION,
    PHASE_LANDING,
    JumpMotion,
    JumpParameters,
    JumpStyle,
    generate_jump_motion,
    good_style,
)
from .multi import (
    ActorTruth,
    MultiActorJump,
    MultiActorJumpConfig,
    crossing_actor_parameters,
    synthesize_multi_jump,
)
from .noise import NoiseConfig, apply_noise
from .persistence import load_jump, save_jump
from .render import (
    ExtraActor,
    RenderedJumpFrames,
    person_mask_for_pose,
    render_frame,
    render_poses,
)
from .scene import Scene, SceneConfig
from .shadow import ShadowConfig, apply_shadow, project_shadow_mask
from .sit_to_stand import (
    SitToStandClip,
    SitToStandClipConfig,
    generate_sit_to_stand_poses,
    synthesize_sit_to_stand,
)

__all__ = [
    "BodyAppearance",
    "SyntheticJump",
    "SyntheticJumpConfig",
    "synthesize_dataset",
    "synthesize_flawed_jump",
    "synthesize_jump",
    "Standard",
    "all_standards",
    "apply_flaws",
    "violate",
    "LongClip",
    "LongClipConfig",
    "synthesize_idle_clip",
    "synthesize_long_clip",
    "SitToStandClip",
    "SitToStandClipConfig",
    "generate_sit_to_stand_poses",
    "synthesize_sit_to_stand",
    "PHASE_FLIGHT",
    "PHASE_INITIATION",
    "PHASE_LANDING",
    "JumpMotion",
    "JumpParameters",
    "JumpStyle",
    "generate_jump_motion",
    "good_style",
    "ActorTruth",
    "MultiActorJump",
    "MultiActorJumpConfig",
    "crossing_actor_parameters",
    "synthesize_multi_jump",
    "NoiseConfig",
    "apply_noise",
    "load_jump",
    "save_jump",
    "ExtraActor",
    "RenderedJumpFrames",
    "person_mask_for_pose",
    "render_frame",
    "render_poses",
    "Scene",
    "SceneConfig",
    "ShadowConfig",
    "apply_shadow",
    "project_shadow_mask",
]
