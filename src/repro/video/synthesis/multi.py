"""Multi-actor synthetic scenes with per-actor ground truth.

:func:`synthesize_multi_jump` renders *N* articulated jumpers in one
scene, each in its own lane, each with its own stature, style timing
and appearance — and, crucially, with per-actor ground-truth masks and
boxes for every frame.  That labelling is what turns the scene into a
MOT-style benchmark: :func:`repro.evaluation.evaluate_mot` matches the
pipeline's tracks against these actors to count ID switches, track
purity and MOTA-lite.

The default layout is deliberately *non-crossing* (parallel lanes with
clearance between the longest jump and the next lane's start), so a
correct tracker must produce exactly N tracks with zero ID switches —
the acceptance bar the tests pin.  ``crossing=True`` instead renders
the :func:`crossing_actor_parameters` layout: two actors sharing one
lane so the first jumper's flight carries it through the second's
silhouette — the occlusion-merge benchmark, where the pinned
acceptance bar is a *bounded* number of ID switches (≤ 1), not zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .body import BodyAppearance
from .motion import JumpMotion, JumpParameters, generate_jump_motion, good_style
from .noise import NoiseConfig
from .render import ExtraActor, person_mask_for_pose, render_poses
from .scene import Scene, SceneConfig
from .shadow import ShadowConfig
from ..sequence import VideoSequence
from ...errors import ConfigurationError
from ...model.sticks import BodyDimensions, default_body
from ...types import BoundingBox, mask_bounding_box

#: Shirt/trouser palettes cycled over actors (actor 0 keeps the
#: default red shirt so single-actor fixtures look familiar).
_ACTOR_PALETTES = (
    ((0.78, 0.22, 0.18), (0.15, 0.25, 0.60)),  # red / blue
    ((0.20, 0.55, 0.30), (0.35, 0.33, 0.30)),  # green / brown
    ((0.85, 0.70, 0.20), (0.20, 0.20, 0.25)),  # yellow / charcoal
    ((0.55, 0.25, 0.65), (0.25, 0.40, 0.45)),  # purple / teal
)


@dataclass(frozen=True, slots=True)
class MultiActorJumpConfig:
    """Knobs of one N-actor synthetic scene."""

    seed: int = 0
    actors: int = 2
    num_frames: int = 20
    #: Horizontal span allotted to each actor (stand point + jump).
    lane_width: int = 80
    #: Clear pixels kept at both scene edges.
    margin: int = 18
    #: Jump length of actor 0; later actors jump the same distance.
    #: 44 px + the 8 px stand offset stays well inside an 80 px lane.
    jump_distance: float = 44.0
    #: Stature of actor 0; actor i is scaled by (1 - 0.06 i) so
    #: components differ in area (deterministic top-N ordering).
    stature: float = 72.0
    #: Per-actor takeoff stagger (fraction of the clip per actor index)
    #: so the scene exercises unsynchronised motion.
    takeoff_stagger: float = 0.08
    scene_height: int = 120
    ground_level: float = 12.0
    #: Render the :func:`crossing_actor_parameters` layout instead of
    #: parallel lanes: both actors share one lane and the first
    #: jumper's flight passes through the second's silhouette.
    #: Requires exactly two actors.
    crossing: bool = False
    shadow: ShadowConfig = field(default_factory=ShadowConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)

    def __post_init__(self) -> None:
        if not 1 <= self.actors <= 4:
            raise ConfigurationError(
                f"actors must be in 1..4, got {self.actors} (the staggered "
                "takeoff fractions leave the valid (0, landing) range beyond "
                "four actors)"
            )
        if self.crossing and self.actors != 2:
            raise ConfigurationError(
                "crossing=True needs exactly 2 actors (one jumper crossing "
                f"one bystander's lane), got {self.actors}"
            )
        if self.num_frames < 8:
            raise ConfigurationError(
                f"num_frames must be >= 8, got {self.num_frames}"
            )
        if self.lane_width < 60:
            raise ConfigurationError(
                f"lane_width must be >= 60, got {self.lane_width}"
            )

    @property
    def scene_width(self) -> int:
        """Scene width: one lane per actor plus both margins."""
        return 2 * self.margin + self.actors * self.lane_width

    def scene_config(self) -> SceneConfig:
        """The :class:`SceneConfig` this layout implies."""
        return SceneConfig(
            height=self.scene_height,
            width=self.scene_width,
            ground_level=self.ground_level,
        )

    def actor_parameters(self, index: int) -> JumpParameters:
        """Motion parameters of actor ``index`` (its own lane/timing)."""
        return JumpParameters(
            num_frames=self.num_frames,
            stand_x=self.margin + index * self.lane_width + 8.0,
            jump_distance=self.jump_distance,
            takeoff_fraction=0.45 + self.takeoff_stagger * index,
            ground_level=self.ground_level,
        )

    def actor_stature(self, index: int) -> float:
        """Stature of actor ``index`` (monotonically decreasing)."""
        return self.stature * (1.0 - 0.06 * index)


@dataclass(frozen=True, slots=True)
class ActorTruth:
    """Ground truth of one actor: motion, masks and boxes per frame."""

    actor_id: int
    dims: BodyDimensions
    motion: JumpMotion
    masks: tuple[np.ndarray, ...]

    def box(self, frame: int) -> BoundingBox | None:
        """Ground-truth bounding box in frame ``frame`` (None if gone)."""
        return mask_bounding_box(self.masks[frame])


@dataclass(frozen=True, slots=True)
class MultiActorJump:
    """A rendered N-actor scene with complete per-actor ground truth."""

    video: VideoSequence
    actors: tuple[ActorTruth, ...]
    config: MultiActorJumpConfig

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return len(self.video)

    @property
    def num_actors(self) -> int:
        """Number of ground-truth actors."""
        return len(self.actors)

    @property
    def background(self) -> np.ndarray:
        """The true (clean) background image."""
        return Scene(self.config.scene_config()).background

    def gt_boxes(self, frame: int) -> list[BoundingBox | None]:
        """Every actor's ground-truth box in frame ``frame``."""
        return [actor.box(frame) for actor in self.actors]


def synthesize_multi_jump(
    config: MultiActorJumpConfig | None = None,
) -> MultiActorJump:
    """Generate one labelled N-actor scene (parallel lanes, or the
    overlapping :func:`crossing_actor_parameters` layout with
    ``crossing=True``)."""
    config = config or MultiActorJumpConfig()
    rng = np.random.default_rng(config.seed)
    scene = Scene(config.scene_config())
    shape = (config.scene_height, config.scene_width)

    if config.crossing:
        parameters = crossing_actor_parameters(config)
    else:
        parameters = tuple(
            config.actor_parameters(index) for index in range(config.actors)
        )
    motions: list[JumpMotion] = []
    all_dims: list[BodyDimensions] = []
    for index in range(config.actors):
        dims = default_body(stature=config.actor_stature(index))
        all_dims.append(dims)
        motions.append(
            generate_jump_motion(dims, parameters[index], good_style())
        )

    extras = []
    for index in range(1, config.actors):
        shirt, trousers = _ACTOR_PALETTES[index % len(_ACTOR_PALETTES)]
        extras.append(
            ExtraActor(
                poses=tuple(motions[index].poses),
                dims=all_dims[index],
                appearance=BodyAppearance(shirt=shirt, trousers=trousers),
            )
        )
    rendered = render_poses(
        motions[0].poses,
        all_dims[0],
        scene,
        shadow_config=config.shadow,
        noise_config=config.noise,
        rng=rng,
        extras=extras,
    )

    actors = tuple(
        ActorTruth(
            actor_id=index,
            dims=all_dims[index],
            motion=motions[index],
            masks=tuple(
                person_mask_for_pose(pose, all_dims[index], shape)
                for pose in motions[index].poses
            ),
        )
        for index in range(config.actors)
    )
    return MultiActorJump(
        video=rendered.video, actors=actors, config=config
    )


def crossing_actor_parameters(
    config: MultiActorJumpConfig,
) -> tuple[JumpParameters, JumpParameters]:
    """Parameters for a deliberately *overlapping* two-actor layout.

    Both actors share one lane: the second stands where the first
    lands, so the first actor's flight carries it into (and through)
    the second's silhouette — an occlusion merge the tracker must
    survive with a bounded number of ID switches.
    :func:`synthesize_multi_jump` renders this layout when the config
    sets ``crossing=True``; the merge behaviour is additionally
    asserted at the mask level in the edge-case tests.
    """
    first = config.actor_parameters(0)
    second = replace(
        first,
        stand_x=first.stand_x + config.jump_distance,
        takeoff_fraction=min(0.45 + 2 * config.takeoff_stagger, 0.8),
    )
    return first, second
