"""Long clips with dead time and multiple attempts, with window truth.

The localisation subsystem (:mod:`repro.localization`) needs footage
the paper never assumed: leading dead time, several attempts, quiet
gaps between them.  :func:`synthesize_long_clip` builds exactly that
from the existing single-jump motion generator — N jumps laid out left
to right (each attempt starts where the previous one settled), held
poses filling the gaps — and returns the ground-truth attempt windows,
so localisation accuracy is measurable as window IoU.

Dead time is a *held* pose plus the full noise stack (sensor noise,
flicker, transient blobs): quiet, not frozen pixels.  Mid-gap the held
pose snaps from the previous attempt's settle to the next attempt's
stance — a deliberate single-frame discontinuity the segmenter must
reject as too short to be an attempt.

:func:`synthesize_idle_clip` is the degenerate case: one person,
no movement at all — the zero-attempt input of the ``no_attempts``
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .body import BodyAppearance
from .motion import JumpMotion, JumpParameters, generate_jump_motion, good_style
from .noise import NoiseConfig
from .render import render_poses
from .scene import Scene, SceneConfig
from .shadow import ShadowConfig
from ..sequence import VideoSequence
from ...errors import ConfigurationError
from ...model.pose import StickPose
from ...model.sticks import BodyDimensions, default_body


@dataclass(frozen=True, slots=True)
class LongClipConfig:
    """Layout of a multi-attempt clip on one timeline."""

    seed: int = 0
    attempts: int = 2
    attempt_frames: int = 20
    #: Dead time before the first attempt / between attempts / after
    #: the last one (frames of held pose under full noise).
    dead_pre: int = 12
    dead_between: int = 12
    dead_post: int = 12
    #: Per-attempt jump length; kept shorter than the single-jump
    #: default so several attempts fit one scene.
    jump_distance: float = 44.0
    stature: float = 72.0
    stand_x: float = 30.0
    ground_level: float = 12.0
    margin: float = 26.0  # scene space right of the last landing
    appearance: BodyAppearance = field(default_factory=BodyAppearance)
    shadow: ShadowConfig = field(default_factory=ShadowConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.attempt_frames < 4:
            raise ConfigurationError(
                f"attempt_frames must be >= 4, got {self.attempt_frames}"
            )
        if min(self.dead_pre, self.dead_between, self.dead_post) < 0:
            raise ConfigurationError("dead segments must be >= 0 frames")

    @property
    def num_frames(self) -> int:
        """Total clip length in frames."""
        gaps = self.dead_between * max(self.attempts - 1, 0)
        return (
            self.dead_pre
            + self.attempts * self.attempt_frames
            + gaps
            + self.dead_post
        )


@dataclass(frozen=True, slots=True)
class LongClip:
    """A rendered multi-attempt clip with complete ground truth."""

    video: VideoSequence
    person_masks: tuple[np.ndarray, ...]
    shadow_masks: tuple[np.ndarray, ...]
    #: Ground-truth attempt spans, half-open ``(start, end)`` frame
    #: indices into ``video``, temporal order.
    windows: tuple[tuple[int, int], ...]
    #: The per-attempt ground-truth motions (window-relative poses).
    motions: tuple[JumpMotion, ...]
    dims: BodyDimensions
    config: LongClipConfig

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return len(self.video)


def _attempt_parameters(config: LongClipConfig, index: int) -> JumpParameters:
    """Jump parameters of attempt ``index`` (laid out left to right)."""
    base = JumpParameters(
        num_frames=config.attempt_frames,
        jump_distance=config.jump_distance,
        ground_level=config.ground_level,
    )
    # Each attempt starts where the previous one settled: the motion
    # generator advances the centre by jump_distance + settle_advance
    # over one attempt, so consecutive stand positions chain with no
    # positional jump at the attempt boundary.
    advance = config.jump_distance + base.settle_advance
    return replace(base, stand_x=config.stand_x + index * advance)


def long_clip_scene(config: LongClipConfig) -> SceneConfig:
    """A scene wide enough for every attempt plus margin."""
    last = _attempt_parameters(config, config.attempts - 1)
    width = int(
        np.ceil(
            last.stand_x
            + config.jump_distance
            + last.settle_advance
            + config.margin
        )
    )
    return SceneConfig(
        width=max(width, 160), ground_level=config.ground_level
    )


def synthesize_long_clip(config: LongClipConfig | None = None) -> LongClip:
    """Render a multi-attempt clip with ground-truth windows."""
    config = config or LongClipConfig()
    rng = np.random.default_rng(config.seed)
    dims = default_body(stature=config.stature)
    style = good_style()

    motions = [
        generate_jump_motion(dims, _attempt_parameters(config, index), style)
        for index in range(config.attempts)
    ]

    poses: list[StickPose] = []
    windows: list[tuple[int, int]] = []
    # Leading dead time holds the first attempt's stance (sway is zero
    # at t=0, so attempt frame 0 continues the hold seamlessly).
    poses.extend([motions[0].poses[0]] * config.dead_pre)
    for index, motion in enumerate(motions):
        start = len(poses)
        poses.extend(motion.poses)
        windows.append((start, len(poses)))
        if index + 1 < len(motions):
            # Gap: hold the settle, then snap mid-gap to the next
            # stance — one isolated discontinuity frame.
            hold = config.dead_between // 2
            poses.extend([motion.poses[-1]] * hold)
            poses.extend(
                [motions[index + 1].poses[0]] * (config.dead_between - hold)
            )
    poses.extend([motions[-1].poses[-1]] * config.dead_post)

    scene = Scene(long_clip_scene(config))
    rendered = render_poses(
        poses,
        dims,
        scene,
        appearance=config.appearance,
        shadow_config=config.shadow,
        noise_config=config.noise,
        rng=rng,
    )
    return LongClip(
        video=rendered.video,
        person_masks=rendered.person_masks,
        shadow_masks=rendered.shadow_masks,
        windows=tuple(windows),
        motions=tuple(motions),
        dims=dims,
        config=config,
    )


def synthesize_idle_clip(
    num_frames: int = 30,
    seed: int = 0,
    stature: float = 72.0,
) -> LongClip:
    """A clip where nothing happens: one person standing still.

    The full noise stack still runs, so the clip is realistic dead
    time, not frozen pixels — the zero-attempt input the localising
    analyzer must turn into a clean ``no_attempts`` result.
    """
    if num_frames < 2:
        raise ConfigurationError(
            f"an idle clip needs >= 2 frames, got {num_frames}"
        )
    config = LongClipConfig(seed=seed, stature=stature)
    rng = np.random.default_rng(seed)
    dims = default_body(stature=stature)
    motion = generate_jump_motion(
        dims, _attempt_parameters(config, 0), good_style()
    )
    poses = [motion.poses[0]] * num_frames
    scene = Scene(SceneConfig(ground_level=config.ground_level))
    rendered = render_poses(
        poses,
        dims,
        scene,
        appearance=config.appearance,
        shadow_config=config.shadow,
        noise_config=config.noise,
        rng=rng,
    )
    return LongClip(
        video=rendered.video,
        person_masks=rendered.person_masks,
        shadow_masks=rendered.shadow_masks,
        windows=(),
        motions=(),
        dims=dims,
        config=config,
    )
