"""Static scene (background) generation for synthetic jump videos.

The paper films a jumper in a gym: a mostly uniform wall, a floor, and
slow illumination drift.  The generated background is a wall with a
soft vertical gradient and low-amplitude texture, a floor of a
different colour below the ground line, and a few fixed darker panels
— enough spatial structure that background estimation and HSV shadow
analysis are non-trivial, while staying deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...imaging.filters import gaussian_blur
from ...imaging.image import blank_rgb


@dataclass(frozen=True, slots=True)
class SceneConfig:
    """Geometry and appearance of the static scene."""

    height: int = 120
    width: int = 160
    ground_level: float = 12.0  # world y (pixels above the bottom edge)
    wall_color: tuple[float, float, float] = (0.62, 0.66, 0.72)
    floor_color: tuple[float, float, float] = (0.52, 0.44, 0.34)
    gradient_strength: float = 0.10
    texture_strength: float = 0.025
    num_panels: int = 3
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.height < 16 or self.width < 16:
            raise ConfigurationError(
                f"scene must be at least 16x16, got {self.height}x{self.width}"
            )
        if not 0 < self.ground_level < self.height:
            raise ConfigurationError(
                f"ground_level must be inside the frame, got {self.ground_level}"
            )
        if self.texture_strength < 0 or self.gradient_strength < 0:
            raise ConfigurationError("texture/gradient strengths must be >= 0")

    @property
    def ground_row(self) -> int:
        """Image row of the ground line (world y = ground_level)."""
        return int(round((self.height - 1) - self.ground_level))


class Scene:
    """A deterministic static background plus its geometry."""

    def __init__(self, config: SceneConfig | None = None) -> None:
        self.config = config or SceneConfig()
        self._background = self._build_background()

    @property
    def background(self) -> np.ndarray:
        """The clean background image ``(H, W, 3)`` in [0, 1]."""
        return self._background.copy()

    @property
    def ground_row(self) -> int:
        """Image row of the ground line."""
        return self.config.ground_row

    def _build_background(self) -> np.ndarray:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        image = blank_rgb(cfg.height, cfg.width, cfg.wall_color)

        # Soft vertical gradient on the wall (brighter toward the top).
        rows = np.arange(cfg.height, dtype=np.float64) / max(cfg.height - 1, 1)
        gradient = cfg.gradient_strength * (0.5 - rows)
        image += gradient[:, None, None]

        # Fixed darker wall panels (e.g. mats or doors) for structure.
        panel_rng = np.random.default_rng(cfg.seed + 1)
        for _ in range(cfg.num_panels):
            panel_width = int(panel_rng.integers(cfg.width // 10, cfg.width // 5))
            col0 = int(panel_rng.integers(0, max(cfg.width - panel_width, 1)))
            row1 = cfg.ground_row
            row0 = int(panel_rng.integers(0, max(row1 - 8, 1)))
            shade = float(panel_rng.uniform(-0.08, -0.03))
            image[row0:row1, col0 : col0 + panel_width] += shade

        # Floor below the ground line.
        floor = np.asarray(cfg.floor_color, dtype=np.float64)
        image[cfg.ground_row :, :, :] = floor
        floor_rows = cfg.height - cfg.ground_row
        if floor_rows > 1:
            # Slight depth shading: nearer floor (lower rows) is darker.
            depth = np.linspace(0.0, -0.06, floor_rows)
            image[cfg.ground_row :, :, :] += depth[:, None, None]

        # Low-amplitude smooth texture everywhere.
        if cfg.texture_strength > 0:
            noise = rng.normal(0.0, 1.0, size=(cfg.height, cfg.width, 1))
            texture = gaussian_blur(noise, sigma=1.5)
            scale = np.abs(texture).max()
            if scale > 0:
                image += cfg.texture_strength * texture / scale

        return np.clip(image, 0.0, 1.0)
