"""Appearance of the rendered jumper: one colour per stick.

Rendering assigns each stick a solid colour (skin for head and
forearm, shirt for trunk/neck/upper arm, trousers for thigh and shank,
shoe for the foot).  Colours are chosen saturated and distinct from
the background so chroma-based shadow removal is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...model.sticks import (
    FOOT,
    FOREARM,
    HEAD,
    NECK,
    NUM_STICKS,
    SHANK,
    THIGH,
    TRUNK,
    UPPER_ARM,
)

Color = tuple[float, float, float]


def _validate_color(color: Color, name: str) -> None:
    if len(color) != 3 or any(not 0.0 <= channel <= 1.0 for channel in color):
        raise ConfigurationError(f"{name} must be three values in [0, 1], got {color}")


@dataclass(frozen=True, slots=True)
class BodyAppearance:
    """Colours and cloth texture of the jumper's body parts.

    ``texture_amplitude`` modulates each part's brightness along the
    stick axis (folds and shading that move *with* the body).  This is
    essential for the paper's change-detection background estimation:
    a perfectly flat-coloured torso that stays in place for ten frames
    is indistinguishable from static background, whereas real clothing
    texture shifts with every small movement of the body.
    """

    shirt: Color = (0.78, 0.22, 0.18)  # red shirt
    trousers: Color = (0.15, 0.25, 0.60)  # blue trousers
    skin: Color = (0.85, 0.65, 0.48)
    shoes: Color = (0.12, 0.12, 0.14)
    texture_amplitude: float = 0.12
    texture_period: float = 3.5  # pixels along the stick axis
    skin_texture_scale: float = 0.35  # skin is smoother than cloth

    def __post_init__(self) -> None:
        _validate_color(self.shirt, "shirt")
        _validate_color(self.trousers, "trousers")
        _validate_color(self.skin, "skin")
        _validate_color(self.shoes, "shoes")
        if not 0.0 <= self.texture_amplitude <= 0.5:
            raise ConfigurationError(
                f"texture_amplitude must be in [0, 0.5], got {self.texture_amplitude}"
            )
        if self.texture_period <= 0:
            raise ConfigurationError(
                f"texture_period must be positive, got {self.texture_period}"
            )
        if not 0.0 <= self.skin_texture_scale <= 1.0:
            raise ConfigurationError(
                f"skin_texture_scale must be in [0, 1], got {self.skin_texture_scale}"
            )

    def texture_scale_for(self, stick: int) -> float:
        """Per-stick multiplier on the texture amplitude."""
        if stick in (HEAD, FOREARM, NECK):
            return self.skin_texture_scale
        return 1.0

    def stick_colors(self) -> np.ndarray:
        """``(8, 3)`` array: the render colour of each stick."""
        colors = np.zeros((NUM_STICKS, 3), dtype=np.float64)
        colors[TRUNK] = self.shirt
        colors[NECK] = self.skin
        colors[UPPER_ARM] = self.shirt
        colors[THIGH] = self.trousers
        colors[HEAD] = self.skin
        colors[FOREARM] = self.skin
        colors[SHANK] = self.trousers
        colors[FOOT] = self.shoes
        return colors
