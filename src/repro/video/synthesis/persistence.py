"""Save/load labelled synthetic jumps to a single ``.npz`` archive.

A benchmark corpus is expensive to regenerate (rendering plus noise);
these helpers persist a :class:`SyntheticJump` with its full ground
truth so experiment scripts can cache datasets on disk.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .body import BodyAppearance
from .dataset import SyntheticJump, SyntheticJumpConfig
from .motion import JumpMotion, JumpParameters, JumpStyle
from .noise import NoiseConfig
from .scene import SceneConfig
from .shadow import ShadowConfig
from ..sequence import VideoSequence
from ...errors import VideoError
from ...model.pose import StickPose
from ...model.sticks import BodyDimensions
from ...scoring.standards import Standard


def save_jump(path: str | Path, jump: SyntheticJump) -> None:
    """Persist a jump (frames, masks, poses, config) to one ``.npz``."""
    config = jump.config
    meta = {
        "seed": config.seed,
        "stature": config.stature,
        "params": asdict(config.params),
        "scene": asdict(config.scene),
        "appearance": asdict(config.appearance),
        "shadow": asdict(config.shadow),
        "noise": asdict(config.noise),
        "violated": [standard.name for standard in config.violated],
        "bystander": config.bystander,
        "camera_jitter": config.camera_jitter,
        "motion_blur_samples": config.motion_blur_samples,
        "phases": list(jump.motion.phases),
        "times": list(jump.motion.times),
        "style": asdict(jump.motion.style),
        "lengths": list(jump.dims.lengths),
        "thicknesses": list(jump.dims.thicknesses),
    }
    arrays = dict(
        frames=jump.video.frames,
        person_masks=np.stack(jump.person_masks),
        shadow_masks=np.stack(jump.shadow_masks),
        poses=np.stack([pose.to_genes() for pose in jump.motion.poses]),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    if jump.distractor_masks:
        arrays["distractor_masks"] = np.stack(jump.distractor_masks)
    np.savez_compressed(path, **arrays)


def load_jump(path: str | Path) -> SyntheticJump:
    """Load a jump written by :func:`save_jump`."""
    with np.load(path) as archive:
        required = {"frames", "person_masks", "shadow_masks", "poses", "meta"}
        if not required <= set(archive.files):
            raise VideoError(
                f"{path} is not a saved jump (missing {required - set(archive.files)})"
            )
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        frames = archive["frames"]
        person_masks = tuple(mask.astype(bool) for mask in archive["person_masks"])
        shadow_masks = tuple(mask.astype(bool) for mask in archive["shadow_masks"])
        distractor_masks = (
            tuple(mask.astype(bool) for mask in archive["distractor_masks"])
            if "distractor_masks" in archive.files
            else ()
        )
        poses = tuple(StickPose.from_genes(genes) for genes in archive["poses"])

    def _tupled(values):
        return tuple(float(v) for v in values)

    style_raw = dict(meta["style"])
    style = JumpStyle(
        stand=_tupled(style_raw["stand"]),
        crouch=_tupled(style_raw["crouch"]),
        takeoff=_tupled(style_raw["takeoff"]),
        flight=_tupled(style_raw["flight"]),
        landing=_tupled(style_raw["landing"]),
        settle=_tupled(style_raw["settle"]),
        crouch_fraction=float(style_raw["crouch_fraction"]),
    )
    params = JumpParameters(**meta["params"])
    appearance_raw = dict(meta["appearance"])
    for key in ("shirt", "trousers", "skin", "shoes"):
        appearance_raw[key] = tuple(appearance_raw[key])
    noise_raw = dict(meta["noise"])
    noise_raw["blob_radius_range"] = tuple(noise_raw["blob_radius_range"])
    scene_raw = dict(meta["scene"])
    for key in ("wall_color", "floor_color"):
        scene_raw[key] = tuple(scene_raw[key])
    config = SyntheticJumpConfig(
        seed=int(meta["seed"]),
        stature=float(meta["stature"]),
        params=params,
        scene=SceneConfig(**scene_raw),
        appearance=BodyAppearance(**appearance_raw),
        shadow=ShadowConfig(**meta["shadow"]),
        noise=NoiseConfig(**noise_raw),
        violated=tuple(Standard[name] for name in meta["violated"]),
        bystander=bool(meta.get("bystander", False)),
        camera_jitter=float(meta.get("camera_jitter", 0.0)),
        motion_blur_samples=int(meta.get("motion_blur_samples", 1)),
    )
    dims = BodyDimensions(
        lengths=_tupled(meta["lengths"]),
        thicknesses=_tupled(meta["thicknesses"]),
    )
    motion = JumpMotion(
        poses=poses,
        phases=tuple(meta["phases"]),
        times=tuple(float(t) for t in meta["times"]),
        params=params,
        style=style,
        dims=dims,
    )
    return SyntheticJump(
        video=VideoSequence(frames),
        person_masks=person_masks,
        shadow_masks=shadow_masks,
        motion=motion,
        dims=dims,
        config=config,
        distractor_masks=distractor_masks,
    )
