"""Controlled violations of the standing-long-jump standards (Table 1).

Each standard E1–E7 maps to a *flaw*: a modification of the keyframed
:class:`~repro.video.synthesis.motion.JumpStyle` that makes the jumper
fail that standard — and only that standard — so the scoring rules of
Table 2 can be evaluated against labelled ground truth.
"""

from __future__ import annotations

from typing import Iterable

from .motion import JumpStyle
from ...errors import ConfigurationError
from ...model.sticks import FOREARM, HEAD, NECK, SHANK, THIGH, TRUNK, UPPER_ARM
from ...scoring.standards import Standard


def _violate_e1(style: JumpStyle) -> JumpStyle:
    """Jumper barely bends the knees before takeoff (fails R1)."""
    return (
        style.adjusted("crouch", THIGH, 170.0)
        .adjusted("crouch", SHANK, 185.0)
    )


def _violate_e2(style: JumpStyle) -> JumpStyle:
    """Neck stays upright during initiation (fails R2)."""
    return (
        style.adjusted("crouch", NECK, 10.0)
        .adjusted("crouch", HEAD, 10.0)
        .adjusted("takeoff", NECK, 18.0)
        .adjusted("takeoff", HEAD, 18.0)
    )


def _violate_e3(style: JumpStyle) -> JumpStyle:
    """Arms never swing back behind the body (fails R3, keeps R4).

    The arms stay low (upper arm ≈ 200°, i.e. hanging slightly behind)
    but remain clearly bent (elbow angle 60°) so the arms-bended rule
    R4 still passes.
    """
    return (
        style.adjusted("crouch", UPPER_ARM, 200.0)
        .adjusted("crouch", FOREARM, 140.0)
    )


def _violate_e4(style: JumpStyle) -> JumpStyle:
    """Arms swing back but stay straight (fails R4, keeps R3)."""
    return style.adjusted("crouch", FOREARM, 285.0)


def _violate_e5(style: JumpStyle) -> JumpStyle:
    """Legs stay extended in the air (fails R5)."""
    return (
        style.adjusted("flight", THIGH, 165.0)
        .adjusted("flight", SHANK, 185.0)
        .adjusted("landing", THIGH, 150.0)
        .adjusted("landing", SHANK, 175.0)
        .adjusted("settle", THIGH, 155.0)
        .adjusted("settle", SHANK, 190.0)
    )


def _violate_e6(style: JumpStyle) -> JumpStyle:
    """Trunk stays upright in the air (fails R6)."""
    return (
        style.adjusted("takeoff", TRUNK, 30.0)
        .adjusted("flight", TRUNK, 25.0)
        .adjusted("landing", TRUNK, 20.0)
        .adjusted("settle", TRUNK, 15.0)
    )


def _violate_e7(style: JumpStyle) -> JumpStyle:
    """Arms never swing forward after takeoff (fails R7)."""
    return (
        style.adjusted("takeoff", UPPER_ARM, 210.0)
        .adjusted("takeoff", FOREARM, 220.0)
        .adjusted("flight", UPPER_ARM, 200.0)
        .adjusted("flight", FOREARM, 210.0)
        .adjusted("landing", UPPER_ARM, 190.0)
        .adjusted("landing", FOREARM, 200.0)
        .adjusted("settle", UPPER_ARM, 185.0)
        .adjusted("settle", FOREARM, 195.0)
    )


_VIOLATORS = {
    Standard.E1: _violate_e1,
    Standard.E2: _violate_e2,
    Standard.E3: _violate_e3,
    Standard.E4: _violate_e4,
    Standard.E5: _violate_e5,
    Standard.E6: _violate_e6,
    Standard.E7: _violate_e7,
}


def violate(style: JumpStyle, standard: Standard) -> JumpStyle:
    """Return ``style`` modified so the jumper fails ``standard``."""
    try:
        violator = _VIOLATORS[standard]
    except KeyError:
        raise ConfigurationError(f"no flaw defined for {standard!r}") from None
    return violator(style)


def apply_flaws(style: JumpStyle, standards: Iterable[Standard]) -> JumpStyle:
    """Apply several flaws in sequence (later flaws win on conflicts)."""
    for standard in standards:
        style = violate(style, standard)
    return style


def all_standards() -> tuple[Standard, ...]:
    """All seven standards in Table 1 order."""
    return tuple(Standard)
