"""Cast-shadow synthesis with the photometric model Eq. 1 assumes.

A shadow cast on a Lambertian background keeps the background's hue,
changes its saturation only slightly, and scales its value (brightness)
by a factor in ``(0, 1)`` — exactly the conditions the paper's HSV
shadow mask tests.  The geometric model projects the person's
silhouette onto the floor with a shear (light high behind the jumper)
and a strong vertical flattening, which is what a side-view camera sees
of a floor shadow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...imaging.color import hsv_to_rgb, rgb_to_hsv
from ...imaging.image import ensure_mask, ensure_rgb


@dataclass(frozen=True, slots=True)
class ShadowConfig:
    """Geometry and photometry of the cast shadow."""

    enabled: bool = True
    shear: float = 0.45  # columns of shadow offset per pixel of height
    flatten: float = 0.20  # rows of shadow drop per pixel of height
    value_gain: float = 0.55  # V multiplier inside the shadow
    saturation_shift: float = 0.04  # additive S change inside the shadow
    softness: int = 1  # dilation iterations of the shadow footprint

    def __post_init__(self) -> None:
        if not 0.0 < self.value_gain < 1.0:
            raise ConfigurationError(
                f"value_gain must be in (0, 1), got {self.value_gain}"
            )
        if abs(self.saturation_shift) > 0.5:
            raise ConfigurationError(
                f"saturation_shift too large: {self.saturation_shift}"
            )
        if self.flatten < 0 or self.softness < 0:
            raise ConfigurationError("flatten and softness must be >= 0")


def project_shadow_mask(
    person_mask: np.ndarray,
    ground_row: int,
    config: ShadowConfig,
) -> np.ndarray:
    """Project a person silhouette onto the floor plane.

    Every person pixel at height ``h`` above the ground line maps to a
    floor pixel displaced by ``shear * h`` columns (toward +x) and
    ``flatten * h`` rows below the ground line.  The result excludes
    pixels occluded by the person itself.
    """
    person_mask = ensure_mask(person_mask)
    height, width = person_mask.shape
    shadow = np.zeros_like(person_mask)
    if not config.enabled:
        return shadow

    rows, cols = np.nonzero(person_mask)
    if rows.size == 0:
        return shadow
    above = rows <= ground_row
    rows, cols = rows[above], cols[above]
    elevation = ground_row - rows
    target_rows = ground_row + np.rint(config.flatten * elevation).astype(int)
    target_cols = cols + np.rint(config.shear * elevation).astype(int)
    valid = (
        (target_rows >= 0)
        & (target_rows < height)
        & (target_cols >= 0)
        & (target_cols < width)
    )
    shadow[target_rows[valid], target_cols[valid]] = True

    if config.softness > 0:
        from ...imaging.morphology import box_element, dilate

        shadow = dilate(shadow, box_element(3), iterations=config.softness)
        shadow[: ground_row, :] = False  # shadows live on the floor only

    return shadow & ~person_mask


def apply_shadow(
    image: np.ndarray,
    shadow_mask: np.ndarray,
    config: ShadowConfig,
) -> np.ndarray:
    """Darken ``image`` under ``shadow_mask`` with the HSV shadow model.

    Returns a new image; the input is unchanged.
    """
    image = ensure_rgb(image)
    shadow_mask = ensure_mask(shadow_mask)
    if not shadow_mask.any() or not config.enabled:
        return image.copy()

    hsv = rgb_to_hsv(image)
    hsv[..., 2][shadow_mask] *= config.value_gain
    hsv[..., 1][shadow_mask] = np.clip(
        hsv[..., 1][shadow_mask] + config.saturation_shift, 0.0, 1.0
    )
    return hsv_to_rgb(hsv)
