"""Sit-to-stand motion and video synthesis.

The chair-rise clip that exercises the ``sit_to_stand`` movement
profile: a figure holds a deep seated crouch (with the usual idle
sway), leans the trunk forward, then extends knees and trunk to full
stand.  Reuses the keyframe-blending machinery of
:mod:`repro.video.synthesis.motion` and the standard renderer, so the
clip passes through segmentation/annotation/tracking untouched — only
events, rules and measurement differ, which is exactly what the
profile abstraction claims to isolate.

No chair is rendered: the seated keyframe is a self-supporting deep
crouch (feet on the ground), which keeps the silhouette a single
connected person blob for Step-2 annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .body import BodyAppearance
from .motion import Angles, _blend_angles, _grounded_y0, _smoothstep
from .noise import NoiseConfig
from .render import RenderedJumpFrames, render_poses
from .scene import Scene, SceneConfig
from .shadow import ShadowConfig
from ..sequence import VideoSequence
from ...errors import ConfigurationError
from ...model.geometry import wrap_angle
from ...model.pose import StickPose
from ...model.sticks import BodyDimensions, default_body

#: Keyframes (trunk, neck, arm, thigh, head, forearm, shank, foot), in
#: degrees, chosen so the sit-to-stand rules T1-T4 pass with a wide
#: margin: seated knee flexion |rho6 - rho3| = 88 deg > 60, leaning trunk
#: 32 deg > 25, standing knee flexion 0 < 25 and trunk 0 < 15.
SEATED: Angles = (8.0, 10.0, 185.0, 140.0, 10.0, 190.0, 228.0, 90.0)
LEAN: Angles = (35.0, 20.0, 190.0, 135.0, 20.0, 200.0, 230.0, 90.0)
STAND: Angles = (0.0, 0.0, 180.0, 180.0, 0.0, 180.0, 180.0, 90.0)


@dataclass(frozen=True, slots=True)
class SitToStandClipConfig:
    """Timeline and scene layout of a synthetic chair rise."""

    seed: int = 0
    num_frames: int = 32
    #: Timeline fractions: hold seated, blend to forward lean, extend
    #: to stand, hold standing.
    lean_start: float = 0.2
    rise_start: float = 0.5
    stand_at: float = 0.8
    center_x: float = 60.0
    stature: float = 72.0
    ground_level: float = 12.0
    #: Seated idle sway, degrees (same realism/background rationale as
    #: JumpParameters.sway_amplitude).
    sway_amplitude: float = 2.0
    sway_cycles: float = 2.0
    appearance: BodyAppearance = field(default_factory=BodyAppearance)
    shadow: ShadowConfig = field(default_factory=ShadowConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)

    def __post_init__(self) -> None:
        if self.num_frames < 4:
            raise ConfigurationError(
                f"a chair rise needs at least 4 frames, got {self.num_frames}"
            )
        if not 0.0 < self.lean_start < self.rise_start < self.stand_at < 1.0:
            raise ConfigurationError(
                "need 0 < lean_start < rise_start < stand_at < 1, got "
                f"{self.lean_start}, {self.rise_start}, {self.stand_at}"
            )


@dataclass(frozen=True, slots=True)
class SitToStandClip:
    """A rendered chair rise with ground-truth poses."""

    video: VideoSequence
    person_masks: tuple[np.ndarray, ...]
    poses: tuple[StickPose, ...]
    #: First frame of the rise blend — the ground-truth onset.
    rise_frame: int
    dims: BodyDimensions
    config: SitToStandClipConfig


def _sts_angles(config: SitToStandClipConfig, t: float) -> Angles:
    """Keyframe-blended angles at timeline position ``t`` in [0, 1]."""
    if t <= config.lean_start:
        angles = SEATED
    elif t <= config.rise_start:
        local = (t - config.lean_start) / (config.rise_start - config.lean_start)
        angles = _blend_angles(SEATED, LEAN, _smoothstep(local))
    elif t <= config.stand_at:
        local = (t - config.rise_start) / (config.stand_at - config.rise_start)
        angles = _blend_angles(LEAN, STAND, _smoothstep(local))
    else:
        angles = STAND
    if config.sway_amplitude > 0 and t < config.lean_start:
        local = t / config.lean_start
        wave = np.sin(2.0 * np.pi * config.sway_cycles * local)
        sway = config.sway_amplitude * (1.0 - local) * wave
        gains = (0.5, 0.8, 2.0, 0.2, 0.8, 2.5, 0.1, 0.0)
        angles = tuple(
            float(wrap_angle(angle + gain * sway))
            for angle, gain in zip(angles, gains)
        )
    return angles


def generate_sit_to_stand_poses(
    dims: BodyDimensions, config: SitToStandClipConfig
) -> tuple[tuple[StickPose, ...], int]:
    """Ground-truth poses and the rise-onset frame index."""
    times = np.linspace(0.0, 1.0, config.num_frames)
    poses = []
    for t in times:
        angles = _sts_angles(config, float(t))
        # Feet stay planted throughout — the rise is purely vertical
        # extension over the feet, so y0 tracks the grounded height.
        y0 = _grounded_y0(angles, dims, config.ground_level)
        poses.append(
            StickPose(x0=config.center_x, y0=float(y0), angles_deg=angles)
        )
    rise_frame = int(np.searchsorted(times, config.rise_start, side="right"))
    rise_frame = min(max(rise_frame, 1), config.num_frames - 1)
    return tuple(poses), rise_frame


def synthesize_sit_to_stand(
    config: SitToStandClipConfig | None = None,
) -> SitToStandClip:
    """Render one synthetic chair rise with ground truth."""
    config = config or SitToStandClipConfig()
    rng = np.random.default_rng(config.seed)
    dims = default_body(stature=config.stature)
    poses, rise_frame = generate_sit_to_stand_poses(dims, config)
    scene = Scene(SceneConfig(ground_level=config.ground_level))
    rendered: RenderedJumpFrames = render_poses(
        poses,
        dims,
        scene,
        appearance=config.appearance,
        shadow_config=config.shadow,
        noise_config=config.noise,
        rng=rng,
    )
    return SitToStandClip(
        video=rendered.video,
        person_masks=rendered.person_masks,
        poses=poses,
        rise_frame=rise_frame,
        dims=dims,
        config=config,
    )
