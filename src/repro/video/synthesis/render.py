"""Render ground-truth poses into RGB frames.

The renderer draws each stick as a solid capsule (radius = half the
stick's thickness) in its body-part colour, over the static scene,
after compositing the cast shadow.  Because the silhouette is *defined*
as the union of those capsules, the renderer also returns exact
ground-truth person and shadow masks for every frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .body import BodyAppearance
from .noise import NoiseConfig, apply_noise
from .scene import Scene
from .shadow import ShadowConfig, apply_shadow, project_shadow_mask
from ..sequence import VideoSequence
from ...imaging.draw import draw_capsule
from ...imaging.image import blank_mask
from ...model.geometry import world_to_image
from ...model.pose import StickPose
from ...model.sticks import NUM_STICKS, BodyDimensions

# Draw order: torso first, then limbs and head on top so skin/trousers
# colours are not overwritten by the shirt.
_DRAW_ORDER = (0, 2, 5, 3, 6, 7, 1, 4)


@dataclass(frozen=True, slots=True)
class ExtraActor:
    """A secondary person in the scene (e.g. a bystander).

    ``poses`` must have one entry per rendered frame.  Extra actors are
    drawn *under* the main jumper and cast shadows, but are excluded
    from the ground-truth person masks: they are clutter the pipeline
    must reject.
    """

    poses: tuple[StickPose, ...]
    dims: BodyDimensions
    appearance: BodyAppearance


@dataclass(frozen=True, slots=True)
class RenderedJumpFrames:
    """Frames plus exact ground-truth masks."""

    video: VideoSequence
    person_masks: tuple[np.ndarray, ...]
    shadow_masks: tuple[np.ndarray, ...]
    distractor_masks: tuple[np.ndarray, ...] = ()


def person_mask_for_pose(
    pose: StickPose,
    dims: BodyDimensions,
    shape: tuple[int, int],
) -> np.ndarray:
    """Exact silhouette of a pose: the union of all stick capsules."""
    mask = blank_mask(*shape)
    segments = pose.segments(dims)
    for stick in range(NUM_STICKS):
        start = world_to_image(segments[stick, 0], shape[0])
        end = world_to_image(segments[stick, 1], shape[0])
        draw_capsule(mask, tuple(start), tuple(end), dims.thicknesses[stick] / 2.0)
    return mask


def render_frame(
    pose: StickPose,
    dims: BodyDimensions,
    scene: Scene,
    appearance: BodyAppearance,
    shadow_config: ShadowConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Render one clean frame.

    Returns ``(frame, person_mask, shadow_mask)``.  Noise is applied
    separately so ground truth stays exact.
    """
    shape = (scene.config.height, scene.config.width)
    person = person_mask_for_pose(pose, dims, shape)
    shadow = project_shadow_mask(person, scene.ground_row, shadow_config)

    frame = apply_shadow(scene.background, shadow, shadow_config)

    colors = appearance.stick_colors()
    segments = pose.segments(dims)
    for stick in _DRAW_ORDER:
        stick_mask = blank_mask(*shape)
        start = world_to_image(segments[stick, 0], shape[0])
        end = world_to_image(segments[stick, 1], shape[0])
        draw_capsule(
            stick_mask, tuple(start), tuple(end), dims.thicknesses[stick] / 2.0
        )
        _paint_textured_stick(
            frame, stick_mask, tuple(start), tuple(end),
            colors[stick], appearance, stick,
        )

    return frame, person, shadow


def _paint_textured_stick(
    frame: np.ndarray,
    stick_mask: np.ndarray,
    start: tuple[float, float],
    end: tuple[float, float],
    color: np.ndarray,
    appearance: BodyAppearance,
    stick: int,
) -> None:
    """Paint a stick with cloth texture anchored to body coordinates.

    The brightness varies sinusoidally along the stick axis, so the
    pattern translates and rotates *with* the limb — which is what
    makes a moving body part register as "changed" for the paper's
    change-detection background estimator even deep inside a
    homogeneously coloured region.
    """
    rows, cols = np.nonzero(stick_mask)
    if rows.size == 0:
        return
    amplitude = appearance.texture_amplitude * appearance.texture_scale_for(stick)
    if amplitude <= 0:
        frame[rows, cols] = color
        return
    dr = end[0] - start[0]
    dc = end[1] - start[1]
    length = np.hypot(dr, dc)
    if length < 1e-9:
        axial = np.zeros(rows.shape)
    else:
        axial = ((rows - start[0]) * dr + (cols - start[1]) * dc) / length
    phase = 2.0 * np.pi * axial / appearance.texture_period + stick
    brightness = 1.0 + amplitude * np.sin(phase)
    frame[rows, cols] = np.clip(color[None, :] * brightness[:, None], 0.0, 1.0)


def render_poses(
    poses: list[StickPose] | tuple[StickPose, ...],
    dims: BodyDimensions,
    scene: Scene,
    appearance: BodyAppearance | None = None,
    shadow_config: ShadowConfig | None = None,
    noise_config: NoiseConfig | None = None,
    rng: np.random.Generator | None = None,
    extras: list[ExtraActor] | None = None,
) -> RenderedJumpFrames:
    """Render a pose sequence into a noisy video with ground truth.

    ``extras`` are secondary actors (one pose per frame each) drawn
    under the jumper; their masks come back as ``distractor_masks``.
    """
    appearance = appearance or BodyAppearance()
    shadow_config = shadow_config or ShadowConfig()
    noise_config = noise_config or NoiseConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    extras = extras or []
    for actor in extras:
        if len(actor.poses) != len(poses):
            raise ValueError(
                f"extra actor has {len(actor.poses)} poses for "
                f"{len(poses)} frames"
            )

    shape = (scene.config.height, scene.config.width)
    frames: list[np.ndarray] = []
    person_masks: list[np.ndarray] = []
    shadow_masks: list[np.ndarray] = []
    distractor_masks: list[np.ndarray] = []
    for index, pose in enumerate(poses):
        person = person_mask_for_pose(pose, dims, shape)
        distractor = blank_mask(*shape)
        for actor in extras:
            distractor |= person_mask_for_pose(actor.poses[index], actor.dims, shape)
        casting = person | distractor
        shadow = project_shadow_mask(casting, scene.ground_row, shadow_config)
        shadow &= ~casting

        frame = apply_shadow(scene.background, shadow, shadow_config)
        for actor in extras:
            _paint_actor(frame, actor.poses[index], actor.dims, actor.appearance, shape)
        _paint_actor(frame, pose, dims, appearance, shape)

        frames.append(apply_noise(frame, noise_config, rng))
        person_masks.append(person)
        shadow_masks.append(shadow)
        distractor_masks.append(distractor)

    return RenderedJumpFrames(
        video=VideoSequence(frames),
        person_masks=tuple(person_masks),
        shadow_masks=tuple(shadow_masks),
        distractor_masks=tuple(distractor_masks),
    )


def _paint_actor(
    frame: np.ndarray,
    pose: StickPose,
    dims: BodyDimensions,
    appearance: BodyAppearance,
    shape: tuple[int, int],
) -> None:
    colors = appearance.stick_colors()
    segments = pose.segments(dims)
    for stick in _DRAW_ORDER:
        stick_mask = blank_mask(*shape)
        start = world_to_image(segments[stick, 0], shape[0])
        end = world_to_image(segments[stick, 1], shape[0])
        draw_capsule(
            stick_mask, tuple(start), tuple(end), dims.thicknesses[stick] / 2.0
        )
        _paint_textured_stick(
            frame, stick_mask, tuple(start), tuple(end),
            colors[stick], appearance, stick,
        )
