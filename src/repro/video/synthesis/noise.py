"""Sensor and illumination noise for synthetic frames.

Three effects, each matched to a cleanup step of the paper's Section 2:

* per-pixel Gaussian sensor noise — handled by the subtraction
  threshold;
* global multiplicative illumination flicker — the "light change"
  the paper blames for residual noise after subtraction;
* transient light blobs (small bright/dark patches that exist in a
  single frame) — the "noises and small spots caused by the light
  change" removed by Step 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ConfigurationError
from ...imaging.image import ensure_rgb


@dataclass(frozen=True, slots=True)
class NoiseConfig:
    """Strengths of the three noise processes."""

    pixel_sigma: float = 0.012
    flicker_sigma: float = 0.008
    blob_count: int = 10
    blob_radius_range: tuple[int, int] = (1, 3)
    blob_strength: float = 0.18

    def __post_init__(self) -> None:
        if self.pixel_sigma < 0 or self.flicker_sigma < 0:
            raise ConfigurationError("noise sigmas must be >= 0")
        if self.blob_count < 0:
            raise ConfigurationError(f"blob_count must be >= 0, got {self.blob_count}")
        lo, hi = self.blob_radius_range
        if lo < 0 or hi < lo:
            raise ConfigurationError(
                f"invalid blob radius range: {self.blob_radius_range}"
            )

    @classmethod
    def none(cls) -> "NoiseConfig":
        """A configuration that adds no noise at all."""
        return cls(pixel_sigma=0.0, flicker_sigma=0.0, blob_count=0)


def apply_noise(
    frame: np.ndarray,
    config: NoiseConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply flicker, light blobs and sensor noise to one frame.

    Returns a new image in [0, 1]; the input is unchanged.
    """
    image = ensure_rgb(frame).copy()
    height, width = image.shape[:2]

    if config.flicker_sigma > 0:
        image *= 1.0 + float(rng.normal(0.0, config.flicker_sigma))

    lo, hi = config.blob_radius_range
    for _ in range(config.blob_count):
        radius = int(rng.integers(lo, hi + 1))
        row = int(rng.integers(0, height))
        col = int(rng.integers(0, width))
        strength = float(rng.uniform(-config.blob_strength, config.blob_strength))
        r0, r1 = max(row - radius, 0), min(row + radius + 1, height)
        c0, c1 = max(col - radius, 0), min(col + radius + 1, width)
        rr, cc = np.meshgrid(
            np.arange(r0, r1), np.arange(c0, c1), indexing="ij"
        )
        inside = (rr - row) ** 2 + (cc - col) ** 2 <= radius * radius
        patch = image[r0:r1, c0:c1]
        patch[inside] += strength

    if config.pixel_sigma > 0:
        image += rng.normal(0.0, config.pixel_sigma, size=image.shape)

    return np.clip(image, 0.0, 1.0)
