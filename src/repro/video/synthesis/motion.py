"""Standing-long-jump motion synthesis.

Produces the ground-truth pose sequence a real camera would have seen:
a keyframed angle script (stand → crouch → takeoff → flight → landing →
settle) with shortest-arc interpolation, a trunk-centre trajectory that
keeps the feet on the ground during ground phases and follows a
ballistic parabola during flight, and per-frame phase labels matching
the paper's scoring windows (frames 1–10 initiation, 11–20
air/landing for the default 20-frame video).

The default :func:`good_style` satisfies all seven standards E1–E7 of
Table 1; :mod:`repro.video.synthesis.flaws` derives styles that violate
them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...errors import ConfigurationError
from ...model.geometry import wrap_angle
from ...model.pose import StickPose, forward_kinematics
from ...model.sticks import FOOT, NUM_STICKS, BodyDimensions

Angles = tuple[float, float, float, float, float, float, float, float]

#: Phase labels attached to each generated frame.
PHASE_INITIATION = "initiation"
PHASE_FLIGHT = "flight"
PHASE_LANDING = "landing"


@dataclass(frozen=True, slots=True)
class JumpParameters:
    """Spatio-temporal layout of the jump inside the scene."""

    num_frames: int = 20
    stand_x: float = 34.0
    jump_distance: float = 62.0
    flight_height: float = 11.0
    takeoff_fraction: float = 0.5
    landing_fraction: float = 0.9
    lean_advance: float = 5.0
    settle_advance: float = 3.0
    ground_level: float = 12.0
    # Pre-jump sway: a person preparing to jump is never perfectly
    # still — arms and trunk rock slightly.  Besides realism, this is
    # what lets change-detection background estimation see a standing
    # person as "changing" (a frozen body would be saved as
    # background).  Amplitude in degrees, applied to the arm (x2.0),
    # forearm (x2.5), trunk (x0.5) and neck (x0.8) during initiation.
    sway_amplitude: float = 2.5
    sway_cycles: float = 2.0

    def __post_init__(self) -> None:
        if self.num_frames < 4:
            raise ConfigurationError(
                f"a jump needs at least 4 frames, got {self.num_frames}"
            )
        if not 0.0 < self.takeoff_fraction < self.landing_fraction < 1.0:
            raise ConfigurationError(
                "need 0 < takeoff_fraction < landing_fraction < 1, got "
                f"{self.takeoff_fraction} and {self.landing_fraction}"
            )
        if self.jump_distance <= 0:
            raise ConfigurationError(
                f"jump_distance must be positive, got {self.jump_distance}"
            )
        if self.flight_height < 0:
            raise ConfigurationError(
                f"flight_height must be >= 0, got {self.flight_height}"
            )

    @property
    def takeoff_frame(self) -> int:
        """Index of the first airborne frame."""
        times = np.linspace(0.0, 1.0, self.num_frames)
        return int(np.searchsorted(times, self.takeoff_fraction, side="right"))


@dataclass(frozen=True, slots=True)
class JumpStyle:
    """Keyframed stick angles of the jump (all in degrees).

    Angle order per keyframe follows the stick indices:
    trunk, neck, upper arm, thigh, head, forearm, shank, foot.
    """

    stand: Angles = (0.0, 0.0, 180.0, 180.0, 0.0, 180.0, 180.0, 90.0)
    crouch: Angles = (35.0, 45.0, 305.0, 140.0, 40.0, 240.0, 228.0, 90.0)
    takeoff: Angles = (42.0, 30.0, 110.0, 195.0, 30.0, 130.0, 190.0, 135.0)
    flight: Angles = (55.0, 35.0, 100.0, 115.0, 35.0, 120.0, 205.0, 120.0)
    landing: Angles = (40.0, 25.0, 95.0, 130.0, 25.0, 105.0, 185.0, 95.0)
    settle: Angles = (25.0, 15.0, 120.0, 150.0, 15.0, 130.0, 200.0, 90.0)
    crouch_fraction: float = 0.32

    def __post_init__(self) -> None:
        for name in ("stand", "crouch", "takeoff", "flight", "landing", "settle"):
            angles = getattr(self, name)
            if len(angles) != NUM_STICKS:
                raise ConfigurationError(
                    f"keyframe {name!r} needs {NUM_STICKS} angles, got {len(angles)}"
                )
        if not 0.0 < self.crouch_fraction < 1.0:
            raise ConfigurationError(
                f"crouch_fraction must be in (0, 1), got {self.crouch_fraction}"
            )

    def with_keyframe(self, name: str, angles: Angles) -> "JumpStyle":
        """Return a copy with one keyframe replaced."""
        if name not in ("stand", "crouch", "takeoff", "flight", "landing", "settle"):
            raise ConfigurationError(f"unknown keyframe {name!r}")
        return replace(self, **{name: tuple(float(a) for a in angles)})

    def adjusted(self, name: str, stick: int, angle: float) -> "JumpStyle":
        """Return a copy with a single stick angle of one keyframe changed."""
        angles = list(getattr(self, name))
        angles[stick] = float(angle)
        return self.with_keyframe(name, tuple(angles))


def good_style() -> JumpStyle:
    """A technically correct jump: satisfies all standards E1–E7."""
    return JumpStyle()


@dataclass(frozen=True, slots=True)
class JumpMotion:
    """Generated ground-truth motion."""

    poses: tuple[StickPose, ...]
    phases: tuple[str, ...]
    times: tuple[float, ...]
    params: JumpParameters
    style: JumpStyle
    dims: BodyDimensions

    def __len__(self) -> int:
        return len(self.poses)

    @property
    def takeoff_frame(self) -> int:
        """Index of the first airborne frame."""
        return self.params.takeoff_frame

    def angle_track(self, stick: int) -> np.ndarray:
        """Angle of one stick across all frames (degrees)."""
        return np.array([pose.angles_deg[stick] for pose in self.poses])

    def center_track(self) -> np.ndarray:
        """Trunk-centre positions ``(T, 2)`` in world coordinates."""
        return np.array([[pose.x0, pose.y0] for pose in self.poses])


def _smoothstep(t: float) -> float:
    """Cubic ease-in/ease-out on [0, 1]."""
    t = min(max(t, 0.0), 1.0)
    return t * t * (3.0 - 2.0 * t)


def _blend_angles(a: Angles, b: Angles, weight: float) -> Angles:
    """Linear interpolation of two angle tuples on the *raw* values.

    Keyframe angles are authored as continuous tracks, so plain linear
    interpolation follows the physically intended path.  Shortest-arc
    blending would be wrong here: the arm swing from 295° (behind the
    body) to 110° (in front) must pass down through 180° (past the
    legs), which is the long way around the circle.  Results are
    wrapped to [0, 360) at the end.
    """
    return tuple(
        float(wrap_angle(x + weight * (y - x))) for x, y in zip(a, b)
    )


def _interpolate_keyframes(
    style: JumpStyle, params: JumpParameters, t: float
) -> Angles:
    keyframes = [
        (0.0, style.stand),
        (style.crouch_fraction, style.crouch),
        (params.takeoff_fraction, style.takeoff),
        ((params.takeoff_fraction + params.landing_fraction) / 2.0, style.flight),
        (params.landing_fraction, style.landing),
        (1.0, style.settle),
    ]
    if t <= 0.0:
        return style.stand
    for (t0, a0), (t1, a1) in zip(keyframes, keyframes[1:]):
        if t <= t1:
            local = (t - t0) / (t1 - t0) if t1 > t0 else 1.0
            return _blend_angles(a0, a1, _smoothstep(local))
    return style.settle


def _apply_sway(angles: Angles, params: JumpParameters, t: float) -> Angles:
    """Add the pre-jump sway during the initiation phase."""
    if params.sway_amplitude <= 0 or t >= params.takeoff_fraction:
        return angles
    local = t / params.takeoff_fraction
    envelope = 1.0 - local  # sway dies out as the crouch commits
    wave = np.sin(2.0 * np.pi * params.sway_cycles * local)
    sway = params.sway_amplitude * envelope * wave
    # Per-stick sway gains: trunk, neck, arm, thigh, head, forearm,
    # shank, foot.
    gains = (0.5, 0.8, 2.0, 0.3, 0.8, 2.5, 0.2, 0.0)
    return tuple(
        float(wrap_angle(angle + gain * sway))
        for angle, gain in zip(angles, gains)
    )


def _grounded_y0(angles: Angles, dims: BodyDimensions, ground: float) -> float:
    """Trunk-centre height that puts the lowest foot point on the ground."""
    genes = np.array([0.0, 0.0, *angles], dtype=np.float64)[None, :]
    segments = forward_kinematics(genes, dims)[0]
    foot_low = min(segments[FOOT, 0, 1], segments[FOOT, 1, 1])
    # Account for the flesh below the foot axis: half the foot thickness.
    return ground - foot_low + dims.thicknesses[FOOT] / 2.0


def _center_x(params: JumpParameters, t: float) -> float:
    takeoff_x = params.stand_x + params.lean_advance
    landing_x = params.stand_x + params.jump_distance
    if t <= params.takeoff_fraction:
        local = t / params.takeoff_fraction
        return params.stand_x + params.lean_advance * _smoothstep(local)
    if t <= params.landing_fraction:
        local = (t - params.takeoff_fraction) / (
            params.landing_fraction - params.takeoff_fraction
        )
        return takeoff_x + (landing_x - takeoff_x) * local
    local = (t - params.landing_fraction) / (1.0 - params.landing_fraction)
    return landing_x + params.settle_advance * _smoothstep(local)


def generate_jump_motion(
    dims: BodyDimensions,
    params: JumpParameters | None = None,
    style: JumpStyle | None = None,
) -> JumpMotion:
    """Generate the ground-truth pose sequence of one standing long jump."""
    params = params or JumpParameters()
    style = style or good_style()

    times = np.linspace(0.0, 1.0, params.num_frames)
    ground = params.ground_level

    takeoff_angles = _interpolate_keyframes(style, params, params.takeoff_fraction)
    landing_angles = _interpolate_keyframes(style, params, params.landing_fraction)
    y_takeoff = _grounded_y0(takeoff_angles, dims, ground)
    y_landing = _grounded_y0(landing_angles, dims, ground)

    poses: list[StickPose] = []
    phases: list[str] = []
    for t in times:
        angles = _interpolate_keyframes(style, params, float(t))
        angles = _apply_sway(angles, params, float(t))
        x0 = _center_x(params, float(t))
        if t < params.takeoff_fraction:
            y0 = _grounded_y0(angles, dims, ground)
            phase = PHASE_INITIATION
        elif t <= params.landing_fraction:
            s = (t - params.takeoff_fraction) / (
                params.landing_fraction - params.takeoff_fraction
            )
            chord = (1.0 - s) * y_takeoff + s * y_landing
            y0 = chord + 4.0 * params.flight_height * s * (1.0 - s)
            phase = PHASE_FLIGHT
        else:
            y0 = _grounded_y0(angles, dims, ground)
            phase = PHASE_LANDING
        poses.append(StickPose(x0=float(x0), y0=float(y0), angles_deg=angles))
        phases.append(phase)

    return JumpMotion(
        poses=tuple(poses),
        phases=tuple(phases),
        times=tuple(float(t) for t in times),
        params=params,
        style=style,
        dims=dims,
    )
