"""Labelled synthetic jump videos: the library's benchmark workload.

:func:`synthesize_jump` is the one-stop generator: it builds a scene,
synthesizes the ground-truth motion (optionally violating chosen
standards), renders it with shadow and noise, and packs everything into
a :class:`SyntheticJump` carrying the exact ground truth that the
paper's authors never had.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .body import BodyAppearance
from .flaws import Standard, apply_flaws
from .motion import (
    JumpMotion,
    JumpParameters,
    generate_jump_motion,
    good_style,
)
from .noise import NoiseConfig
from .render import RenderedJumpFrames, render_poses
from .scene import Scene, SceneConfig
from .shadow import ShadowConfig
from ..sequence import VideoSequence
from ...errors import ConfigurationError
from ...model.sticks import BodyDimensions, default_body


@dataclass(frozen=True, slots=True)
class SyntheticJumpConfig:
    """All knobs of one synthetic jump video."""

    seed: int = 0
    stature: float = 72.0
    params: JumpParameters = field(default_factory=JumpParameters)
    scene: SceneConfig = field(default_factory=SceneConfig)
    appearance: BodyAppearance = field(default_factory=BodyAppearance)
    shadow: ShadowConfig = field(default_factory=ShadowConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    violated: tuple[Standard, ...] = ()
    # Render a second, non-jumping person at the far side of the scene
    # (a classmate waiting for their turn).  The bystander sways gently
    # — enough that a naive pipeline could mistake them for the moving
    # object — and is excluded from the ground-truth person masks.
    bystander: bool = False
    # Handheld-camera shake: per-frame integer translation of the whole
    # image, drawn from a clipped Gaussian of this sigma (pixels).  The
    # ground-truth masks shake identically.  0 = fixed camera (the
    # paper's assumption).
    camera_jitter: float = 0.0
    # Motion blur: number of sub-exposures averaged per frame (shutter
    # spans half the frame interval).  1 = instantaneous exposure.
    # Ground-truth masks stay sharp (the nominal pose), so blur is a
    # pure degradation for the pipeline to survive.
    motion_blur_samples: int = 1

    def __post_init__(self) -> None:
        if self.stature <= 0:
            raise ConfigurationError(f"stature must be positive, got {self.stature}")
        if self.camera_jitter < 0:
            raise ConfigurationError(
                f"camera_jitter must be >= 0, got {self.camera_jitter}"
            )
        if self.motion_blur_samples < 1:
            raise ConfigurationError(
                f"motion_blur_samples must be >= 1, got {self.motion_blur_samples}"
            )
        if abs(self.params.ground_level - self.scene.ground_level) > 1e-9:
            raise ConfigurationError(
                "jump parameters and scene disagree on ground level: "
                f"{self.params.ground_level} vs {self.scene.ground_level}"
            )


@dataclass(frozen=True, slots=True)
class SyntheticJump:
    """A rendered jump with complete ground truth."""

    video: VideoSequence
    person_masks: tuple[np.ndarray, ...]
    shadow_masks: tuple[np.ndarray, ...]
    motion: JumpMotion
    dims: BodyDimensions
    config: SyntheticJumpConfig
    distractor_masks: tuple[np.ndarray, ...] = ()

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return len(self.video)

    @property
    def violated(self) -> tuple[Standard, ...]:
        """Standards this jump was generated to violate."""
        return self.config.violated

    @property
    def background(self) -> np.ndarray:
        """The true (clean) background image."""
        return Scene(self.config.scene).background

    def foreground_mask(self, index: int) -> np.ndarray:
        """Person + shadow: everything that moves in frame ``index``."""
        return self.person_masks[index] | self.shadow_masks[index]


def _bystander_actor(config: SyntheticJumpConfig, num_frames: int):
    """A gently swaying onlooker at the far edge of the scene."""
    from .motion import _grounded_y0
    from .render import ExtraActor
    from ...model.pose import StickPose

    dims = default_body(stature=0.92 * config.stature)
    x = config.scene.width - 18.0
    base = StickPose.standing(0.0, 0.0)
    poses = []
    for index in range(num_frames):
        wave = np.sin(2.0 * np.pi * index / max(num_frames - 1, 1) * 1.5)
        pose = (
            base.with_angle("upper_arm", 180.0 + 4.0 * wave)
            .with_angle("forearm", 180.0 + 5.0 * wave)
            .with_angle("trunk", 1.5 * wave)
        )
        y0 = _grounded_y0(pose.angles_deg, dims, config.params.ground_level)
        poses.append(StickPose(x0=x, y0=y0, angles_deg=pose.angles_deg))
    appearance = BodyAppearance(
        shirt=(0.20, 0.55, 0.30),  # green shirt
        trousers=(0.35, 0.33, 0.30),
    )
    return ExtraActor(poses=tuple(poses), dims=dims, appearance=appearance)


def synthesize_jump(config: SyntheticJumpConfig | None = None) -> SyntheticJump:
    """Generate one fully labelled synthetic standing-long-jump video."""
    config = config or SyntheticJumpConfig()
    rng = np.random.default_rng(config.seed)

    dims = default_body(stature=config.stature)
    style = apply_flaws(good_style(), config.violated)
    motion = generate_jump_motion(dims, config.params, style)

    extras = (
        [_bystander_actor(config, len(motion.poses))] if config.bystander else []
    )
    scene = Scene(config.scene)
    if config.motion_blur_samples > 1:
        rendered = _render_with_motion_blur(config, motion, dims, scene, extras, rng)
    else:
        rendered = render_poses(
            motion.poses,
            dims,
            scene,
            appearance=config.appearance,
            shadow_config=config.shadow,
            noise_config=config.noise,
            rng=rng,
            extras=extras,
        )
    frames = rendered.video.frames
    person_masks = rendered.person_masks
    shadow_masks = rendered.shadow_masks
    distractor_masks = rendered.distractor_masks if extras else ()
    if config.camera_jitter > 0:
        from ...imaging.registration import shift_image

        jitter_rng = np.random.default_rng(config.seed + 77)
        shaken_frames = []
        shaken_person = []
        shaken_shadow = []
        shaken_distractor = []
        for k in range(len(rendered.video)):
            drow = int(np.clip(round(jitter_rng.normal(0, config.camera_jitter)), -4, 4))
            dcol = int(np.clip(round(jitter_rng.normal(0, config.camera_jitter)), -4, 4))
            shaken_frames.append(shift_image(frames[k], drow, dcol))
            shaken_person.append(shift_image(person_masks[k], drow, dcol))
            shaken_shadow.append(shift_image(shadow_masks[k], drow, dcol))
            if distractor_masks:
                shaken_distractor.append(
                    shift_image(distractor_masks[k], drow, dcol)
                )
        frames = np.stack(shaken_frames)
        person_masks = tuple(shaken_person)
        shadow_masks = tuple(shaken_shadow)
        distractor_masks = tuple(shaken_distractor)

    return SyntheticJump(
        video=VideoSequence(frames),
        person_masks=person_masks,
        shadow_masks=shadow_masks,
        motion=motion,
        dims=dims,
        config=config,
        distractor_masks=distractor_masks,
    )


def _render_with_motion_blur(
    config: SyntheticJumpConfig,
    motion: JumpMotion,
    dims: BodyDimensions,
    scene: Scene,
    extras,
    rng: np.random.Generator,
) -> RenderedJumpFrames:
    """Average sub-exposures toward the next frame's pose.

    Ground truth comes from the sharp nominal render (first
    sub-exposure); noise is applied once, after averaging, like a real
    sensor integrating light before reading out.
    """
    from .noise import apply_noise

    samples = config.motion_blur_samples
    poses = motion.poses
    stacks = []
    nominal: RenderedJumpFrames | None = None
    for sub in range(samples):
        fraction = 0.5 * sub / samples  # shutter covers half the interval
        sub_poses = [
            pose if fraction == 0.0 else pose.blended(
                poses[min(index + 1, len(poses) - 1)], fraction
            )
            for index, pose in enumerate(poses)
        ]
        rendered = render_poses(
            sub_poses,
            dims,
            scene,
            appearance=config.appearance,
            shadow_config=config.shadow,
            noise_config=NoiseConfig.none(),
            rng=rng,
            extras=extras,
        )
        stacks.append(rendered.video.frames)
        if sub == 0:
            nominal = rendered
    assert nominal is not None
    averaged = np.mean(stacks, axis=0)
    noisy = [
        apply_noise(frame, config.noise, rng) for frame in averaged
    ]
    return RenderedJumpFrames(
        video=VideoSequence(noisy),
        person_masks=nominal.person_masks,
        shadow_masks=nominal.shadow_masks,
        distractor_masks=nominal.distractor_masks,
    )


def synthesize_flawed_jump(
    standard: Standard,
    seed: int = 0,
    **overrides,
) -> SyntheticJump:
    """A jump that violates exactly one standard of Table 1."""
    config = SyntheticJumpConfig(seed=seed, violated=(standard,), **overrides)
    return synthesize_jump(config)


def synthesize_dataset(
    seeds: list[int] | None = None,
    include_flawed: bool = True,
) -> list[SyntheticJump]:
    """A small labelled corpus: clean jumps plus one jump per flaw."""
    seeds = seeds if seeds is not None else [0, 1, 2]
    jumps = [synthesize_jump(SyntheticJumpConfig(seed=seed)) for seed in seeds]
    if include_flawed:
        for index, standard in enumerate(Standard):
            jumps.append(synthesize_flawed_jump(standard, seed=100 + index))
    return jumps
