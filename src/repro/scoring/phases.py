"""Frame windows for the two scoring stages (paper Section 4).

"To check R1, the angle difference ... should be examined from the
first frame to the 10th frame"; "to check R6 ... from the 11th frame to
the 20th frame."  For the paper's ~20-frame videos the boundary is the
middle of the sequence — which is where the takeoff falls.  When the
takeoff frame is known (detected or ground truth), it is used directly;
otherwise the midpoint reproduces the paper's fixed split.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScoringError


@dataclass(frozen=True, slots=True)
class StageWindows:
    """Half-open frame ranges of the two scoring stages."""

    initiation: tuple[int, int]
    air_landing: tuple[int, int]

    def __post_init__(self) -> None:
        i0, i1 = self.initiation
        a0, a1 = self.air_landing
        if not (0 <= i0 < i1 <= a0 < a1):
            raise ScoringError(
                f"invalid stage windows: initiation={self.initiation}, "
                f"air_landing={self.air_landing}"
            )

    @classmethod
    def paper_default(cls) -> "StageWindows":
        """Frames 1–10 and 11–20 of the paper, zero-based."""
        return cls(initiation=(0, 10), air_landing=(10, 20))

    @classmethod
    def for_sequence(
        cls, num_frames: int, takeoff_frame: int | None = None
    ) -> "StageWindows":
        """Windows for an arbitrary-length sequence.

        ``takeoff_frame`` is the first airborne frame; it defaults to
        the midpoint (the paper's fixed split for 20 frames).
        """
        if num_frames < 4:
            raise ScoringError(
                f"need at least 4 frames to score a jump, got {num_frames}"
            )
        boundary = takeoff_frame if takeoff_frame is not None else num_frames // 2
        boundary = max(1, min(boundary, num_frames - 1))
        return cls(
            initiation=(0, boundary), air_landing=(boundary, num_frames)
        )

    def window(self, stage: str) -> tuple[int, int]:
        """The frame range of ``"initiation"`` or ``"air_landing"``."""
        if stage == "initiation":
            return self.initiation
        if stage == "air_landing":
            return self.air_landing
        raise ScoringError(f"unknown stage {stage!r}")
