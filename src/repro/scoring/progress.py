"""Progress comparison between two analysed jumps.

The use the paper motivates is coaching children over time: the same
jumper is filmed again after practising, and the coach wants to know
what improved.  :func:`compare_reports` diffs two scoring reports
rule by rule, and :class:`ProgressReport` renders the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import JumpReport
from ..errors import ScoringError

#: Transition labels per rule.
FIXED = "fixed"
REGRESSED = "regressed"
STILL_PASSING = "still passing"
STILL_FAILING = "still failing"


@dataclass(frozen=True, slots=True)
class RuleProgress:
    """One rule's before/after outcome."""

    rule_id: str
    description: str
    transition: str
    value_before: float
    value_after: float
    margin_change: float  # positive = moved the right way


@dataclass(frozen=True, slots=True)
class ProgressReport:
    """Diff of two scoring reports of the same jumper."""

    rules: tuple[RuleProgress, ...]
    score_before: float
    score_after: float

    @property
    def improved(self) -> tuple[RuleProgress, ...]:
        """Rules that flipped from fail to pass."""
        return tuple(r for r in self.rules if r.transition == FIXED)

    @property
    def regressed(self) -> tuple[RuleProgress, ...]:
        """Rules that flipped from pass to fail."""
        return tuple(r for r in self.rules if r.transition == REGRESSED)

    @property
    def outstanding(self) -> tuple[RuleProgress, ...]:
        """Rules still failing after practice."""
        return tuple(r for r in self.rules if r.transition == STILL_FAILING)

    def render_text(self) -> str:
        """Human-readable progress summary."""
        lines = [
            "Standing Long Jump — progress report",
            f"score: {self.score_before * 100:.0f}% -> {self.score_after * 100:.0f}%",
            "",
        ]
        for progress in self.rules:
            lines.append(
                f"  {progress.rule_id} [{progress.transition:>13s}] "
                f"{progress.description:<34s} "
                f"{progress.value_before:7.1f}° -> {progress.value_after:7.1f}°"
            )
        if self.outstanding:
            lines.append("")
            lines.append("keep working on:")
            for progress in self.outstanding:
                lines.append(f"  - {progress.description}")
        return "\n".join(lines)


def compare_reports(before: JumpReport, after: JumpReport) -> ProgressReport:
    """Diff two reports rule by rule (same rule set required)."""
    if len(before.results) != len(after.results):
        raise ScoringError("reports have different rule sets")
    rules: list[RuleProgress] = []
    for result_before, result_after in zip(before.results, after.results):
        if result_before.rule.rule_id != result_after.rule.rule_id:
            raise ScoringError("reports have mismatched rule ordering")
        if result_before.passed and result_after.passed:
            transition = STILL_PASSING
        elif not result_before.passed and result_after.passed:
            transition = FIXED
        elif result_before.passed and not result_after.passed:
            transition = REGRESSED
        else:
            transition = STILL_FAILING
        rules.append(
            RuleProgress(
                rule_id=result_before.rule.rule_id,
                description=result_before.rule.standard.description,
                transition=transition,
                value_before=result_before.value,
                value_after=result_after.value,
                margin_change=result_after.margin - result_before.margin,
            )
        )
    return ProgressReport(
        rules=tuple(rules),
        score_before=before.score,
        score_after=after.score,
    )
