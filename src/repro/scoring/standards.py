"""The physical-education standards of Table 1.

"From the discussion with physical education experts, standards to
evaluate the standing long jump are formulated."  Four initiation-stage
standards (E1–E4) and three air/landing standards (E5–E7).  Each maps
to one measurable rule in Table 2 (:mod:`repro.scoring.rules`).
"""

from __future__ import annotations

from enum import Enum

STAGE_INITIATION = "initiation"
STAGE_AIR_LANDING = "air_landing"


class Standard(Enum):
    """The seven evaluation standards of Table 1."""

    E1 = (STAGE_INITIATION, "Knees bended")
    E2 = (STAGE_INITIATION, "Neck bended forward")
    E3 = (STAGE_INITIATION, "Arms swung back")
    E4 = (STAGE_INITIATION, "Arms bended")
    E5 = (STAGE_AIR_LANDING, "Knees bended")
    E6 = (STAGE_AIR_LANDING, "Trunk bended forward")
    E7 = (STAGE_AIR_LANDING, "Arms swung forward after landing")

    @property
    def stage(self) -> str:
        """``"initiation"`` or ``"air_landing"``."""
        return self.value[0]

    @property
    def description(self) -> str:
        """The standard's wording from Table 1."""
        return self.value[1]


#: Coaching advice issued when a standard is not met, one per standard.
ADVICE: dict[Standard, str] = {
    Standard.E1: (
        "Bend your knees deeply before jumping — crouch until your "
        "shins and thighs form a clear angle, then push off."
    ),
    Standard.E2: (
        "Lean your head and neck forward during the wind-up so your "
        "whole body loads toward the jump direction."
    ),
    Standard.E3: (
        "Swing your arms back behind your body during the crouch; the "
        "backswing powers the jump."
    ),
    Standard.E4: (
        "Keep your elbows bent while swinging the arms back — straight "
        "arms slow the swing down."
    ),
    Standard.E5: (
        "Tuck your knees while in the air; extended legs cut the jump "
        "short."
    ),
    Standard.E6: (
        "Lean your trunk forward over your knees during flight to carry "
        "your momentum into the landing."
    ),
    Standard.E7: (
        "Swing your arms forward for the landing — it moves your centre "
        "of mass past your heels."
    ),
}


def all_standards() -> tuple[Standard, ...]:
    """All seven standards in Table 1 order."""
    return tuple(Standard)
