"""Scoring of the standing long jump (paper Section 4, completed)."""

from .calibration import AGE_NORMS_CM, PixelCalibration, grade_distance
from .distance import JumpMeasurement, best_landing_frame, measure_jump
from .phases import StageWindows
from .progress import ProgressReport, RuleProgress, compare_reports
from .report import JumpReport, JumpScorer
from .rules import RULES, Rule, RuleResult, evaluate_rules, rule_for_standard
from .standards import (
    ADVICE,
    STAGE_AIR_LANDING,
    STAGE_INITIATION,
    Standard,
    all_standards,
)

__all__ = [
    "AGE_NORMS_CM",
    "PixelCalibration",
    "grade_distance",
    "JumpMeasurement",
    "best_landing_frame",
    "measure_jump",
    "StageWindows",
    "ProgressReport",
    "RuleProgress",
    "compare_reports",
    "JumpReport",
    "JumpScorer",
    "RULES",
    "Rule",
    "RuleResult",
    "evaluate_rules",
    "rule_for_standard",
    "ADVICE",
    "STAGE_AIR_LANDING",
    "STAGE_INITIATION",
    "Standard",
    "all_standards",
]
