"""The scoring rules of Table 2, evaluated over stage windows.

=====  ==================  ============  ==========================
Rule   Standard (Table 1)  Stage         Condition
=====  ==================  ============  ==========================
R1     E1 knees bended     initiation    max(ρ6 − ρ3) > 60°
R2     E2 neck forward     initiation    max(ρ1) > 30°
R3     E3 arms swung back  initiation    max(ρ2) > 270°
R4     E4 arms bended      initiation    max(ρ2 − ρ5) > 45°
R5     E5 knees bended     air/landing   max(ρ6 − ρ3) > 60°
R6     E6 trunk forward    air/landing   max(ρ0) > 45°
R7     E7 arms forward     air/landing   min(ρ2) < 160°
=====  ==================  ============  ==========================

Angle differences are taken along the shortest arc (equivalent to the
paper's raw subtraction for every physically reachable jump pose, but
robust to the 0°/360° wrap of tracked angles).  ">" rules aggregate the
per-frame value with ``max`` over the window — the paper: "the maximum
of all the angle differences is then used"; the single "<" rule (R7)
symmetrically uses ``min``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .phases import StageWindows
from .standards import Standard
from ..errors import ScoringError
from ..model.geometry import angle_difference
from ..model.pose import StickPose
from ..model.sticks import FOREARM, NECK, SHANK, THIGH, TRUNK, UPPER_ARM


def _knee_flexion(pose: StickPose) -> float:
    return float(
        angle_difference(pose.angles_deg[SHANK], pose.angles_deg[THIGH])
    )


def _signed(angle_deg: float) -> float:
    """Map an angle to (-180, 180]: forward lean positive, back negative."""
    return float(np.mod(angle_deg + 180.0, 360.0) - 180.0)


def _neck_angle(pose: StickPose) -> float:
    # Signed: a neck wobbling around vertical (e.g. 359° = −1°) must
    # not read as a large forward bend.
    return _signed(pose.angles_deg[NECK])


def _arm_angle(pose: StickPose) -> float:
    # Raw [0, 360): the arm sweeps the full circle and the paper's
    # thresholds (R3 > 270°, R7 < 160°) are written for this range.
    return pose.angles_deg[UPPER_ARM]


def _elbow_flexion(pose: StickPose) -> float:
    return float(
        angle_difference(pose.angles_deg[UPPER_ARM], pose.angles_deg[FOREARM])
    )


def _trunk_angle(pose: StickPose) -> float:
    # Signed, like the neck: the trunk never rotates past horizontal.
    return _signed(pose.angles_deg[TRUNK])


@dataclass(frozen=True, slots=True)
class Rule:
    """One scoring rule of Table 2."""

    rule_id: str
    standard: Standard
    expression: str  # human-readable condition
    measure: Callable[[StickPose], float]
    threshold: float
    greater: bool  # True: aggregate=max, pass if value > threshold

    def evaluate(
        self, poses: Sequence[StickPose], windows: StageWindows
    ) -> "RuleResult":
        """Evaluate the rule over its stage window of ``poses``."""
        start, stop = windows.window(self.standard.stage)
        if stop > len(poses):
            raise ScoringError(
                f"{self.rule_id} needs frames [{start}, {stop}) but only "
                f"{len(poses)} poses were given"
            )
        values = np.array([self.measure(pose) for pose in poses[start:stop]])
        if values.size == 0:
            raise ScoringError(f"{self.rule_id}: empty stage window")
        if self.greater:
            value = float(values.max())
            passed = value > self.threshold
            margin = value - self.threshold
        else:
            value = float(values.min())
            passed = value < self.threshold
            margin = self.threshold - value
        frame = int(start + (values.argmax() if self.greater else values.argmin()))
        return RuleResult(
            rule=self,
            value=value,
            passed=bool(passed),
            margin=float(margin),
            decisive_frame=frame,
        )


@dataclass(frozen=True, slots=True)
class RuleResult:
    """Outcome of one rule on one jump."""

    rule: Rule
    value: float  # the aggregated angle (degrees)
    passed: bool
    margin: float  # how far past the threshold, positive = passed
    decisive_frame: int  # frame where the aggregate was attained


#: The seven rules of Table 2 in order.
RULES: tuple[Rule, ...] = (
    Rule("R1", Standard.E1, "max ρ6 − ρ3 > 60°", _knee_flexion, 60.0, True),
    Rule("R2", Standard.E2, "max ρ1 > 30°", _neck_angle, 30.0, True),
    Rule("R3", Standard.E3, "max ρ2 > 270°", _arm_angle, 270.0, True),
    Rule("R4", Standard.E4, "max ρ2 − ρ5 > 45°", _elbow_flexion, 45.0, True),
    Rule("R5", Standard.E5, "max ρ6 − ρ3 > 60°", _knee_flexion, 60.0, True),
    Rule("R6", Standard.E6, "max ρ0 > 45°", _trunk_angle, 45.0, True),
    Rule("R7", Standard.E7, "min ρ2 < 160°", _arm_angle, 160.0, False),
)


def rule_for_standard(standard: Standard) -> Rule:
    """The Table 2 rule that checks a Table 1 standard."""
    for rule in RULES:
        if rule.standard is standard:
            return rule
    raise ScoringError(f"no rule for {standard!r}")


def evaluate_rules(
    poses: Sequence[StickPose],
    windows: StageWindows | None = None,
) -> list[RuleResult]:
    """Evaluate all seven rules over a pose sequence."""
    if windows is None:
        windows = StageWindows.for_sequence(len(poses))
    return [rule.evaluate(poses, windows) for rule in RULES]
