"""Jump-distance measurement from tracked poses.

The standing long jump is measured from the takeoff line (the toes at
the start) to the rearmost landing contact (the heel).  With tracked
stick poses both endpoints are available directly from the foot
segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ScoringError
from ..model.pose import StickPose
from ..model.sticks import FOOT, BodyDimensions


@dataclass(frozen=True, slots=True)
class JumpMeasurement:
    """Distance result of one jump."""

    distance: float  # pixels, takeoff line to landing heel
    takeoff_line_x: float
    landing_heel_x: float
    landing_frame: int
    relative_to_stature: float  # distance / stature (dimensionless)


def _foot_extent(pose: StickPose, dims: BodyDimensions) -> tuple[float, float]:
    """(min x, max x) of the foot segment endpoints in world coords."""
    segments = pose.segments(dims)
    xs = (segments[FOOT, 0, 0], segments[FOOT, 1, 0])
    return float(min(xs)), float(max(xs))


def measure_jump(
    poses: Sequence[StickPose],
    dims: BodyDimensions,
    landing_frame: int | None = None,
) -> JumpMeasurement:
    """Measure the jump distance of a tracked pose sequence.

    ``landing_frame`` defaults to the last frame (the jumper has
    settled by the end of a standing-long-jump clip).
    """
    if len(poses) < 2:
        raise ScoringError("need at least two poses to measure a jump")
    if landing_frame is None:
        landing_frame = len(poses) - 1
    if not 0 < landing_frame < len(poses):
        raise ScoringError(
            f"landing_frame {landing_frame} out of range for {len(poses)} poses"
        )

    _, takeoff_line = _foot_extent(poses[0], dims)  # toes at the start
    landing_heel, _ = _foot_extent(poses[landing_frame], dims)
    distance = landing_heel - takeoff_line
    return JumpMeasurement(
        distance=float(distance),
        takeoff_line_x=takeoff_line,
        landing_heel_x=landing_heel,
        landing_frame=int(landing_frame),
        relative_to_stature=float(distance / dims.stature),
    )


def best_landing_frame(poses: Sequence[StickPose]) -> int:
    """Heuristic landing frame: first frame after the peak where the
    trunk centre has returned close to its starting height."""
    heights = np.array([pose.y0 for pose in poses])
    peak = int(heights.argmax())
    base = heights[0]
    for index in range(peak + 1, len(poses)):
        if heights[index] <= base + 0.05 * abs(base):
            return index
    return len(poses) - 1
