"""Pixel-to-metric calibration.

The physical test reports the jump in centimetres.  With a single
side-view camera the scale can be calibrated from any known length in
the image plane of the jumper — most conveniently the jumper's own
standing height, which the first-frame annotation already measures in
pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

from .distance import JumpMeasurement
from ..errors import ScoringError


@dataclass(frozen=True, slots=True)
class PixelCalibration:
    """Linear image-to-world scale from one known length."""

    known_pixels: float
    known_centimeters: float

    def __post_init__(self) -> None:
        if self.known_pixels <= 0 or self.known_centimeters <= 0:
            raise ScoringError(
                "calibration lengths must be positive, got "
                f"{self.known_pixels}px = {self.known_centimeters}cm"
            )

    @classmethod
    def from_stature(
        cls, stature_pixels: float, stature_centimeters: float
    ) -> "PixelCalibration":
        """Calibrate from the jumper's standing height."""
        return cls(known_pixels=stature_pixels, known_centimeters=stature_centimeters)

    @property
    def centimeters_per_pixel(self) -> float:
        """The scale factor."""
        return self.known_centimeters / self.known_pixels

    def to_centimeters(self, pixels: float) -> float:
        """Convert an image-plane length to centimetres."""
        return pixels * self.centimeters_per_pixel

    def jump_distance_cm(self, measurement: JumpMeasurement) -> float:
        """The measured jump distance in centimetres."""
        return self.to_centimeters(measurement.distance)


#: Reference jump distances (cm) for the standing long jump by age,
#: from common primary-school fitness norms (boys / girls midpoints).
#: Used by :func:`grade_distance` to put a measured jump in context.
AGE_NORMS_CM: dict[int, tuple[float, float, float]] = {
    # age: (needs work, average, excellent)
    6: (70.0, 95.0, 120.0),
    7: (80.0, 105.0, 130.0),
    8: (90.0, 115.0, 140.0),
    9: (100.0, 125.0, 150.0),
    10: (110.0, 135.0, 160.0),
    11: (120.0, 145.0, 170.0),
    12: (130.0, 155.0, 180.0),
}


def grade_distance(distance_cm: float, age: int) -> str:
    """Grade a jump distance against age norms.

    Returns one of ``"needs work"``, ``"average"``, ``"good"``,
    ``"excellent"``.
    """
    if age not in AGE_NORMS_CM:
        raise ScoringError(
            f"no norms for age {age}; available: {sorted(AGE_NORMS_CM)}"
        )
    low, mid, high = AGE_NORMS_CM[age]
    if distance_cm < low:
        return "needs work"
    if distance_cm < mid:
        return "average"
    if distance_cm < high:
        return "good"
    return "excellent"
