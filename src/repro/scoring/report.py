"""Jump scoring report: rule outcomes, score, and coaching advice.

This completes the system sketched in the paper's Section 4 ("the
scoring part is yet to be implemented"): rules → detected improper
movements → advice to the jumper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .phases import StageWindows
from .rules import RuleResult, evaluate_rules
from .standards import ADVICE, Standard
from ..model.pose import StickPose
from ..runtime import Instrumentation


@dataclass(frozen=True, slots=True)
class JumpReport:
    """Full scoring outcome of one movement attempt.

    ``profile`` names the :class:`~repro.profiles.MovementProfile`
    whose rules produced ``results`` — the default keeps every
    pre-registry report valid.  Title and advice resolve through the
    profile registry lazily (scoring does not import profiles at
    module level; profiles import scoring).
    """

    results: tuple[RuleResult, ...]
    windows: StageWindows
    profile: str = "standing_long_jump"

    def _movement(self):
        """The profile behind this report (registry lookup)."""
        from ..profiles import get_profile

        return get_profile(self.profile)

    @property
    def passed(self) -> tuple[RuleResult, ...]:
        """Rules the jumper satisfied."""
        return tuple(r for r in self.results if r.passed)

    @property
    def failed(self) -> tuple[RuleResult, ...]:
        """Rules the jumper violated."""
        return tuple(r for r in self.results if not r.passed)

    @property
    def violated_standards(self) -> tuple[Standard, ...]:
        """Standards of Table 1 the jumper failed to meet."""
        return tuple(r.rule.standard for r in self.failed)

    @property
    def score(self) -> float:
        """Fraction of the seven rules satisfied, in [0, 1]."""
        return len(self.passed) / len(self.results) if self.results else 0.0

    def advice(self) -> list[str]:
        """Coaching advice for every violated standard."""
        if self.profile == "standing_long_jump":
            return [ADVICE[standard] for standard in self.violated_standards]
        advice_map = self._movement().advice
        return [advice_map[standard] for standard in self.violated_standards]

    def render_text(self) -> str:
        """Human-readable multi-line report."""
        if self.profile == "standing_long_jump":
            title = "Standing Long Jump"
        else:
            title = self._movement().title
        lines = [
            f"{title} — scoring report",
            f"score: {len(self.passed)}/{len(self.results)} rules satisfied",
            "",
        ]
        for result in self.results:
            status = "PASS" if result.passed else "FAIL"
            rule = result.rule
            lines.append(
                f"  {rule.rule_id} [{status}]  {rule.standard.description:<34s}"
                f" {rule.expression:<22s} observed {result.value:7.1f}°"
                f" (frame {result.decisive_frame})"
            )
        if self.failed:
            lines.append("")
            lines.append("advice:")
            for text in self.advice():
                lines.append(f"  - {text}")
        return "\n".join(lines)


class JumpScorer:
    """Score pose sequences against a movement's rule table.

    By default the rules are the paper's Table 2 (the
    ``standing_long_jump`` profile); pass a
    :class:`~repro.profiles.MovementProfile` to score any registered
    movement — the engine (windows, aggregation, report shape) is
    identical, only the table changes.

    An attached :class:`~repro.runtime.Instrumentation` times rule
    evaluation under the ``scoring/rules`` span and accumulates the
    ``scoring.rules_evaluated`` / ``scoring.rules_failed`` counters.
    """

    def __init__(
        self,
        windows: StageWindows | None = None,
        instrumentation: Instrumentation | None = None,
        profile=None,
    ) -> None:
        self._windows = windows
        self._profile = profile
        self.instrumentation = instrumentation or Instrumentation()

    def score(
        self,
        poses: Sequence[StickPose],
        takeoff_frame: int | None = None,
    ) -> JumpReport:
        """Evaluate all rules and return a report.

        When no explicit windows were configured, the stage boundary is
        ``takeoff_frame`` (if given) or the sequence midpoint.
        """
        windows = self._windows or StageWindows.for_sequence(
            len(poses), takeoff_frame=takeoff_frame
        )
        if self._profile is None:
            rules, profile_name = None, "standing_long_jump"
        else:
            rules = self._profile.rules
            profile_name = self._profile.name
        with self.instrumentation.span("scoring/rules"):
            if rules is None:
                results = tuple(evaluate_rules(poses, windows))
            else:
                results = tuple(
                    rule.evaluate(poses, windows) for rule in rules
                )
        report = JumpReport(
            results=results, windows=windows, profile=profile_name
        )
        self.instrumentation.count("scoring.rules_evaluated", len(results))
        self.instrumentation.count("scoring.rules_failed", len(report.failed))
        return report
