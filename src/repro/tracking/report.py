"""Per-track analysis product: one jumper's full report.

The multi-actor pipeline runs the identical post-tracking tail
(smoothing → events → scoring → measurement) once per track, so each
actor gets the same artefacts the single-jumper pipeline produces.
:class:`TrackAnalysis` bundles them with the track's identity and
lifecycle outcome; :class:`~repro.pipeline.JumpAnalysis` carries a
tuple of these in its ``tracks`` field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.events import JumpEvents
from ..ga.temporal import TrackingResult
from ..model.annotation import FirstFrameAnnotation
from ..model.pose import StickPose
from ..scoring.distance import JumpMeasurement
from ..scoring.report import JumpReport


@dataclass(frozen=True, slots=True)
class TrackAnalysis:
    """Everything the pipeline produced for one tracked actor."""

    track_id: str
    state: str  # lifecycle state at end of video (confirmed / retired)
    start_frame: int  # frame index the track spawned on
    annotation: FirstFrameAnnotation
    tracking: TrackingResult  # raw per-frame poses + health
    poses: tuple[StickPose, ...]  # smoothed track actually scored
    events: JumpEvents
    report: JumpReport
    measurement: JumpMeasurement

    @property
    def frames(self) -> int:
        """Frames this track covers (after trailing-miss trimming)."""
        return len(self.poses)

    @property
    def degraded(self) -> bool:
        """True when any of this track's frames needed recovery."""
        return self.tracking.degraded

    def health_summary(self) -> dict[str, Any]:
        """Per-outcome frame counts of this track."""
        return self.tracking.health_summary()
