"""IoU data association between predicted pose boxes and components.

The matching problem is tiny (a handful of tracks against a handful of
silhouette candidates per frame), so both matchers are exact:

* ``greedy`` repeatedly takes the highest-IoU (track, candidate) pair —
  simple, order-independent for distinct scores, and the default
  fallback when SciPy is unavailable;
* ``hungarian`` solves the assignment optimally via
  ``scipy.optimize.linear_sum_assignment`` on the negated IoU matrix.

Both reject pairs below ``iou_threshold``: a track that overlaps no
candidate is a *miss* (the lifecycle carries it forward), and a
candidate that overlaps no track is a *birth* candidate.

Boxes are :class:`~repro.types.BoundingBox` image-coordinate boxes,
the same type segmentation's component stats use, so ground-truth
boxes from synthesis and predicted boxes from poses compare directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import TrackingError
from ..types import BoundingBox

#: Matching strategies accepted by :func:`associate`.
ASSOCIATION_METHODS = ("greedy", "hungarian")


def box_iou(a: BoundingBox | None, b: BoundingBox | None) -> float:
    """Intersection-over-union of two (possibly absent) boxes."""
    if a is None or b is None:
        return 0.0
    overlap = a.intersection(b)
    if overlap is None:
        return 0.0
    union = a.area + b.area - overlap.area
    return overlap.area / union if union else 0.0


def iou_matrix(
    rows: Sequence[BoundingBox | None],
    cols: Sequence[BoundingBox | None],
) -> np.ndarray:
    """Pairwise IoU, ``rows`` (tracks) x ``cols`` (candidates)."""
    matrix = np.zeros((len(rows), len(cols)), dtype=np.float64)
    for i, a in enumerate(rows):
        for j, b in enumerate(cols):
            matrix[i, j] = box_iou(a, b)
    return matrix


@dataclass(frozen=True, slots=True)
class AssociationResult:
    """Outcome of one frame's matching."""

    matches: tuple[tuple[int, int], ...] = ()  # (row, col) index pairs
    unmatched_rows: tuple[int, ...] = ()  # tracks that missed
    unmatched_cols: tuple[int, ...] = ()  # birth candidates

    def __post_init__(self) -> None:
        object.__setattr__(self, "matches", tuple(self.matches))
        object.__setattr__(self, "unmatched_rows", tuple(self.unmatched_rows))
        object.__setattr__(self, "unmatched_cols", tuple(self.unmatched_cols))


def greedy_match(
    matrix: np.ndarray, iou_threshold: float
) -> list[tuple[int, int]]:
    """Repeatedly take the best remaining pair above the threshold.

    Ties on IoU resolve to the lowest (row, col) — deterministic for
    identical inputs.
    """
    matches: list[tuple[int, int]] = []
    if matrix.size == 0:
        return matches
    scores = matrix.copy()
    while True:
        best = float(scores.max())
        if best < iou_threshold or best <= 0.0:
            return matches
        row, col = np.unravel_index(int(scores.argmax()), scores.shape)
        matches.append((int(row), int(col)))
        scores[row, :] = -1.0
        scores[:, col] = -1.0


def hungarian_match(
    matrix: np.ndarray, iou_threshold: float
) -> list[tuple[int, int]]:
    """Optimal assignment on the negated IoU matrix (posepile-style).

    Falls back to :func:`greedy_match` when SciPy is not installed.
    Assignments below the threshold are discarded after solving.
    """
    if matrix.size == 0:
        return []
    try:
        from scipy.optimize import linear_sum_assignment
    except ImportError:  # pragma: no cover - scipy is a soft dependency
        return greedy_match(matrix, iou_threshold)
    rows, cols = linear_sum_assignment(-matrix)
    return [
        (int(r), int(c))
        for r, c in zip(rows, cols)
        if matrix[r, c] >= iou_threshold and matrix[r, c] > 0.0
    ]


def associate(
    track_boxes: Sequence[BoundingBox | None],
    candidate_boxes: Sequence[BoundingBox | None],
    method: str = "hungarian",
    iou_threshold: float = 0.1,
) -> AssociationResult:
    """Match predicted track boxes against new silhouette candidates."""
    if method not in ASSOCIATION_METHODS:
        raise TrackingError(
            f"unknown association method {method!r}; choose from: "
            f"{', '.join(ASSOCIATION_METHODS)}"
        )
    matrix = iou_matrix(track_boxes, candidate_boxes)
    if method == "greedy":
        matches = greedy_match(matrix, iou_threshold)
    else:
        matches = hungarian_match(matrix, iou_threshold)
    matches = sorted(matches)
    matched_rows = {r for r, _ in matches}
    matched_cols = {c for _, c in matches}
    return AssociationResult(
        matches=tuple(matches),
        unmatched_rows=tuple(
            i for i in range(len(track_boxes)) if i not in matched_rows
        ),
        unmatched_cols=tuple(
            j for j in range(len(candidate_boxes)) if j not in matched_cols
        ),
    )
