"""Multi-actor tracking: data association and track lifecycle.

The paper analyses one jumper per video.  This subsystem generalises
the pipeline to *N* actors per scene: segmentation emits per-component
silhouette candidates, :func:`associate` matches them against each
alive track's predicted pose box (greedy or Hungarian IoU), and
:class:`TrackManager` owns the lifecycle — tentative birth, confirm
after ``confirm_hits``, carry-forward on miss via the existing recovery
ladder, retire after ``max_misses``.  One GA pose tracker runs per
track, so every downstream stage (smoothing, events, scoring) applies
per track unchanged.

See ``docs/tracking.md`` for the algorithm, lifecycle states, config
knobs, and the per-track report shape.
"""

from .association import (
    ASSOCIATION_METHODS,
    AssociationResult,
    associate,
    box_iou,
    greedy_match,
    hungarian_match,
    iou_matrix,
)
from .manager import TrackFrameState, TrackManager
from .report import TrackAnalysis
from .track import TRACK_STATES, Track, TrackingConfig, pose_bounding_box

__all__ = [
    "ASSOCIATION_METHODS",
    "AssociationResult",
    "associate",
    "box_iou",
    "greedy_match",
    "hungarian_match",
    "iou_matrix",
    "TrackAnalysis",
    "TrackFrameState",
    "TrackManager",
    "TRACK_STATES",
    "Track",
    "TrackingConfig",
    "pose_bounding_box",
]
