"""Track lifecycle: spawn, confirm, carry on miss, retire.

A :class:`Track` wraps one :class:`~repro.ga.temporal.TrackingSession`
— one GA pose tracker per actor — and adds the posetrack-style
bookkeeping the multi-actor pipeline needs:

* **tentative** on spawn; **confirmed** after ``confirm_hits``
  associated components (so one-frame noise blobs never reach the
  report);
* a **miss** (no associated component this frame) steps the session on
  an empty silhouette, which routes through the existing recovery
  ladder (extrapolate → carry-forward) — occlusion handling reuses the
  degradation machinery instead of inventing a second one;
* **retired** after ``max_misses`` consecutive misses, or immediately
  on the first miss when recovery is disabled (a strict config has no
  carry-forward to offer).

Track ids are deterministic: ``t0``, ``t1``, … in spawn order, and
spawn order is fixed by the candidate ordering (area descending, then
raster order) within each frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .association import ASSOCIATION_METHODS
from ..errors import ConfigurationError
from ..ga.temporal import (
    FrameHealth,
    TemporalPoseTracker,
    TrackerConfig,
    TrackingResult,
)
from ..model.annotation import FirstFrameAnnotation
from ..model.geometry import world_to_image
from ..model.pose import StickPose
from ..model.sticks import BodyDimensions
from ..runtime import Instrumentation
from ..types import BoundingBox

#: Lifecycle states a track moves through (strictly forward).
TRACK_STATES = ("tentative", "confirmed", "retired")


@dataclass(frozen=True, slots=True)
class TrackingConfig:
    """Knobs of the multi-actor association layer.

    ``enabled`` is the master switch: off (the default) keeps the
    paper's one-jumper pipeline byte-identical; on routes analysis
    through the :class:`~repro.tracking.TrackManager`.  All fields
    participate in ``config_hash`` — they change results.
    """

    enabled: bool = False
    #: Hard cap on concurrently alive (non-retired) tracks.
    max_tracks: int = 4
    #: ``greedy`` or ``hungarian`` (optimal assignment; the default).
    method: str = "hungarian"
    #: Minimum IoU between a predicted pose box and a component for an
    #: association (the posepile snippet's 0.1).
    iou_threshold: float = 0.1
    #: Associated components needed before a tentative track is
    #: confirmed (and eligible for the final report).
    confirm_hits: int = 2
    #: Consecutive misses before a track retires.
    max_misses: int = 3
    #: Smallest component area (pixels) that may spawn a new track.
    min_spawn_area: int = 80
    #: Pixels added around a predicted pose box before matching, to
    #: absorb one frame of motion.
    box_margin: int = 3

    def __post_init__(self) -> None:
        if self.max_tracks < 1:
            raise ConfigurationError(
                f"tracking.max_tracks must be >= 1, got {self.max_tracks}"
            )
        if self.method not in ASSOCIATION_METHODS:
            raise ConfigurationError(
                f"tracking.method must be one of {ASSOCIATION_METHODS}, "
                f"got {self.method!r}"
            )
        if not 0.0 < self.iou_threshold <= 1.0:
            raise ConfigurationError(
                "tracking.iou_threshold must be in (0, 1], got "
                f"{self.iou_threshold}"
            )
        if self.confirm_hits < 1:
            raise ConfigurationError(
                f"tracking.confirm_hits must be >= 1, got {self.confirm_hits}"
            )
        if self.max_misses < 1:
            raise ConfigurationError(
                f"tracking.max_misses must be >= 1, got {self.max_misses}"
            )
        if self.min_spawn_area < 1:
            raise ConfigurationError(
                f"tracking.min_spawn_area must be >= 1, got {self.min_spawn_area}"
            )
        if self.box_margin < 0:
            raise ConfigurationError(
                f"tracking.box_margin must be >= 0, got {self.box_margin}"
            )


def pose_bounding_box(
    pose: StickPose,
    dims: BodyDimensions,
    shape: tuple[int, int],
) -> BoundingBox | None:
    """Image-coordinate bounding box of a stick figure.

    Stick endpoints are converted to (row, col), padded by half the
    thickest stick, and clipped to the frame; ``None`` when the pose
    lies entirely outside the image.
    """
    points = world_to_image(pose.segments(dims).reshape(-1, 2), shape[0])
    pad = max(dims.thicknesses) / 2.0
    row_min = int(np.floor(points[:, 0].min() - pad))
    row_max = int(np.ceil(points[:, 0].max() + pad))
    col_min = int(np.floor(points[:, 1].min() - pad))
    col_max = int(np.ceil(points[:, 1].max() + pad))
    row_min, row_max = max(row_min, 0), min(row_max, shape[0] - 1)
    col_min, col_max = max(col_min, 0), min(col_max, shape[1] - 1)
    if row_max < row_min or col_max < col_min:
        return None
    return BoundingBox(row_min, col_min, row_max, col_max)


class Track:
    """One actor's pose track plus its lifecycle state."""

    def __init__(
        self,
        track_id: str,
        annotation: FirstFrameAnnotation,
        tracker_config: TrackerConfig,
        config: TrackingConfig,
        start_frame: int,
        rng: np.random.Generator,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.track_id = track_id
        self.annotation = annotation
        self.start_frame = start_frame
        self.config = config
        self._tracker_config = tracker_config
        tracker = TemporalPoseTracker(
            annotation.dims,
            tracker_config,
            instrumentation=instrumentation or Instrumentation(),
        )
        self.session = tracker.start(annotation.pose, rng=rng)
        self.state = "tentative" if config.confirm_hits > 1 else "confirmed"
        self.hits = 1  # the spawning component counts as the first hit
        self.misses = 0  # consecutive misses
        self.trailing_misses = 0  # carried frames at the tail of the track

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the track still consumes frames."""
        return self.state != "retired"

    @property
    def confirmed(self) -> bool:
        """True once the track has met its hit quota."""
        return self.state == "confirmed"

    @property
    def frames(self) -> int:
        """Frames covered so far (spawn frame included)."""
        return self.session.frames_seen

    @property
    def latest_pose(self) -> StickPose:
        """The most recent pose in the track."""
        return self.session.latest_pose

    @property
    def latest_health(self) -> FrameHealth:
        """Health record of the most recent frame."""
        return self.session.latest_health

    def predicted_box(self, shape: tuple[int, int]) -> BoundingBox | None:
        """Where the actor should be this frame: last pose box, padded."""
        box = pose_bounding_box(self.latest_pose, self.annotation.dims, shape)
        if box is None or self.config.box_margin == 0:
            return box
        return box.expanded(self.config.box_margin, shape)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def step_matched(self, component_mask: np.ndarray) -> FrameHealth:
        """Consume this track's associated component for one frame."""
        _, health = self.session.step(component_mask)
        self.hits += 1
        self.misses = 0
        self.trailing_misses = 0
        if self.state == "tentative" and self.hits >= self.config.confirm_hits:
            self.state = "confirmed"
        return health

    def step_missed(self, shape: tuple[int, int]) -> FrameHealth | None:
        """No component this frame: carry forward, or retire.

        With recovery enabled the session steps on an empty silhouette
        and the ladder extrapolates/carries the pose; without it there
        is no carry-forward, so the track retires immediately.  Returns
        the frame's health, or ``None`` when the track retired without
        consuming the frame.
        """
        self.misses += 1
        if not self._tracker_config.recovery.enabled:
            self.state = "retired"
            return None
        empty = np.zeros(shape, dtype=bool)
        _, health = self.session.step(empty)
        self.trailing_misses += 1
        if self.misses >= self.config.max_misses:
            self.state = "retired"
        return health

    def result(self, trim_trailing_misses: bool = True) -> TrackingResult:
        """The accumulated track as a :class:`TrackingResult`.

        By default the carried frames at the tail (misses that never
        saw another component — an actor that left the frame, or the
        run-out before retirement) are trimmed: they are extrapolated
        ghosts, not observations, and would otherwise distort event
        detection and scoring.
        """
        full = self.session.result()
        if not trim_trailing_misses or not self.trailing_misses:
            return full
        keep = len(full.poses) - self.trailing_misses
        return TrackingResult(
            poses=full.poses[:keep],
            records=full.records,
            health=full.health[:keep],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Track({self.track_id!r}, {self.state}, "
            f"start={self.start_frame}, frames={self.frames})"
        )
