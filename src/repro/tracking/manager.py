"""The data-association owner: components in, tracks out.

:class:`TrackManager` is frame-at-a-time by construction — the batch
analyzer and the live streaming path drive the identical code.  Per
frame it:

1. splits the frame's silhouette into per-component candidates (using
   the segmentation layer's own candidates when present, else
   :func:`~repro.imaging.components.top_n_components` on the person
   mask — the fallback keeps chaos faults from killing association);
2. predicts one box per alive track from its latest pose and matches
   predictions against candidates (greedy or Hungarian IoU);
3. steps matched tracks on their component, steps missed tracks
   through the recovery ladder, and spawns tentative tracks from
   unmatched candidates (deterministic ids, ``max_tracks`` capped).

All stepping happens in a fixed order — matched tracks in spawn
order, then missed tracks, then births in candidate order — so the
shared RNG's draw sequence, and therefore every pose, is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .association import associate
from .track import Track, TrackingConfig
from ..errors import ModelError, TrackingError
from ..ga.temporal import FrameHealth, TrackerConfig, TrackingResult
from ..imaging.components import top_n_components
from ..model.annotation import FirstFrameAnnotation, auto_annotate
from ..model.pose import StickPose
from ..runtime import Instrumentation
from ..types import BoundingBox, mask_bounding_box


@dataclass(frozen=True, slots=True)
class TrackFrameState:
    """One track's outcome for one frame (the streaming update row)."""

    track_id: str
    state: str  # tentative / confirmed / retired
    matched: bool
    pose: StickPose | None = None
    box: BoundingBox | None = None
    health: FrameHealth | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (job progress / client printing)."""
        return {
            "track_id": self.track_id,
            "state": self.state,
            "matched": self.matched,
            "pose": (
                [self.pose.x0, self.pose.y0, *self.pose.angles_deg]
                if self.pose is not None
                else None
            ),
            "box": (
                [
                    self.box.col_min,
                    self.box.row_min,
                    self.box.width,
                    self.box.height,
                ]
                if self.box is not None
                else None
            ),
            "health": self.health.to_dict() if self.health else None,
        }


class TrackManager:
    """Owns every track of one video and the matching between frames."""

    def __init__(
        self,
        tracker_config: TrackerConfig,
        config: TrackingConfig,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        seed_annotation: FirstFrameAnnotation | None = None,
    ) -> None:
        self.config = config
        self._tracker_config = tracker_config
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._instrumentation = instrumentation or Instrumentation()
        # A caller-supplied first-frame annotation seeds the first
        # spawned track (the paper's human-drawn stick model); every
        # later birth is auto-annotated from its component.
        self._seed_annotation = seed_annotation
        self._tracks: list[Track] = []
        self._frames_seen = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def tracks(self) -> tuple[Track, ...]:
        """Every track ever spawned, in id order (retired included)."""
        return tuple(self._tracks)

    @property
    def frames_seen(self) -> int:
        """Frames stepped so far."""
        return self._frames_seen

    def alive_tracks(self) -> tuple[Track, ...]:
        """Tracks still consuming frames."""
        return tuple(t for t in self._tracks if t.alive)

    def confirmed_tracks(self) -> tuple[Track, ...]:
        """Tracks that met their hit quota (reportable)."""
        return tuple(t for t in self._tracks if t.confirmed)

    def primary_track(self) -> Track:
        """The track that stands in for the legacy single-jumper slots.

        Deterministic: the confirmed track covering the most frames,
        ties broken by spawn order; tentative tracks are considered
        only when nothing confirmed exists.
        """
        pool = [t for t in self._tracks if t.confirmed] or list(self._tracks)
        if not pool:
            raise TrackingError(
                "no tracks were spawned; every frame's components were "
                "below tracking.min_spawn_area or the scene was empty"
            )
        return max(pool, key=lambda t: (t.frames, -self._tracks.index(t)))

    def primary_result(self) -> TrackingResult:
        """The primary track's poses/health (trailing misses trimmed)."""
        return self.primary_track().result()

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(
        self, person_mask: np.ndarray, candidates: Sequence[np.ndarray] = ()
    ) -> tuple[TrackFrameState, ...]:
        """Fold one frame's silhouette(s) into the track set.

        ``candidates`` are the segmentation layer's per-component masks
        (largest first); when empty they are recomputed from
        ``person_mask`` so the manager keeps working even if an
        upstream fault dropped them.
        """
        shape = person_mask.shape
        frame_index = self._frames_seen
        self._frames_seen += 1
        candidates = list(candidates)
        if not candidates and person_mask.any():
            candidates = top_n_components(
                person_mask,
                self.config.max_tracks,
                min_area=1,
            )
        boxes = [mask_bounding_box(mask) for mask in candidates]

        active = [t for t in self._tracks if t.alive]
        with self._instrumentation.span("tracking/associate"):
            result = associate(
                [t.predicted_box(shape) for t in active],
                boxes,
                method=self.config.method,
                iou_threshold=self.config.iou_threshold,
            )
        matched_of = {row: col for row, col in result.matches}

        states: list[TrackFrameState] = []
        # Matched and missed tracks step in spawn order, so the shared
        # RNG draw sequence never depends on association internals.
        for index, track in enumerate(active):
            if index in matched_of:
                col = matched_of[index]
                health = track.step_matched(candidates[col])
                self._instrumentation.count("tracking.associations", 1)
                states.append(
                    TrackFrameState(
                        track_id=track.track_id,
                        state=track.state,
                        matched=True,
                        pose=track.latest_pose,
                        box=boxes[col],
                        health=health,
                    )
                )
            else:
                health = track.step_missed(shape)
                self._instrumentation.count("tracking.misses", 1)
                if not track.alive:
                    self._instrumentation.count("tracking.retired", 1)
                states.append(
                    TrackFrameState(
                        track_id=track.track_id,
                        state=track.state,
                        matched=False,
                        pose=track.latest_pose if health is not None else None,
                        box=None,
                        health=health,
                    )
                )

        for col in result.unmatched_cols:
            state = self._maybe_spawn(candidates[col], boxes[col], frame_index)
            if state is not None:
                states.append(state)
        return tuple(states)

    def _maybe_spawn(
        self,
        mask: np.ndarray,
        box: BoundingBox | None,
        frame_index: int,
    ) -> TrackFrameState | None:
        """Spawn a tentative track from an unmatched component."""
        if box is None or int(mask.sum()) < self.config.min_spawn_area:
            return None
        if len([t for t in self._tracks if t.alive]) >= self.config.max_tracks:
            self._instrumentation.count("tracking.births_suppressed", 1)
            return None
        if self._seed_annotation is not None:
            annotation = self._seed_annotation
            self._seed_annotation = None
        else:
            try:
                annotation = auto_annotate(mask)
            except ModelError:
                # Degenerate component (too thin/small to moment-fit):
                # not a spawnable actor.
                self._instrumentation.count("tracking.spawn_failures", 1)
                return None
        track = Track(
            track_id=f"t{len(self._tracks)}",
            annotation=annotation,
            tracker_config=self._tracker_config,
            config=self.config,
            start_frame=frame_index,
            rng=self._rng,
            instrumentation=self._instrumentation,
        )
        self._tracks.append(track)
        self._instrumentation.count("tracking.births", 1)
        self._instrumentation.event(
            "tracking/birth", track_id=track.track_id, frame=frame_index
        )
        return TrackFrameState(
            track_id=track.track_id,
            state=track.state,
            matched=True,
            pose=track.latest_pose,
            box=box,
            health=track.latest_health,
        )
