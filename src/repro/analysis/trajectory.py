"""Pose trajectories: time-series view of a tracked jump.

Wraps a pose sequence as dense arrays (angles unwrapped over time,
trunk-centre track), with smoothing and angular-velocity estimation.
Smoothing operates on the unwrapped angle tracks so a limb crossing
0°/360° is handled correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ScoringError
from ..model.geometry import wrap_angle
from ..model.pose import StickPose
from ..model.sticks import NUM_STICKS


def unwrap_degrees(angles: np.ndarray, axis: int = 0) -> np.ndarray:
    """``np.unwrap`` for degree-valued tracks."""
    return np.degrees(np.unwrap(np.radians(angles), axis=axis))


@dataclass(frozen=True, slots=True)
class PoseTrajectory:
    """Dense representation of a pose sequence.

    ``angles`` is ``(T, 8)`` in degrees, **unwrapped** along time so
    consecutive frames never jump by more than 180°; ``centers`` is
    ``(T, 2)`` world coordinates.
    """

    angles: np.ndarray
    centers: np.ndarray

    def __post_init__(self) -> None:
        if self.angles.ndim != 2 or self.angles.shape[1] != NUM_STICKS:
            raise ScoringError(
                f"angles must be (T, {NUM_STICKS}), got {self.angles.shape}"
            )
        if self.centers.shape != (self.angles.shape[0], 2):
            raise ScoringError(
                f"centers must be (T, 2) matching angles, got {self.centers.shape}"
            )

    @classmethod
    def from_poses(cls, poses: Sequence[StickPose]) -> "PoseTrajectory":
        """Build a trajectory from poses (angles are unwrapped)."""
        if not poses:
            raise ScoringError("cannot build a trajectory from no poses")
        raw = np.array([pose.angles_deg for pose in poses], dtype=np.float64)
        centers = np.array([[pose.x0, pose.y0] for pose in poses])
        return cls(angles=unwrap_degrees(raw, axis=0), centers=centers)

    def __len__(self) -> int:
        return self.angles.shape[0]

    def to_poses(self) -> list[StickPose]:
        """Convert back to poses (angles re-wrapped to [0, 360))."""
        return [
            StickPose(
                x0=float(self.centers[t, 0]),
                y0=float(self.centers[t, 1]),
                angles_deg=tuple(float(wrap_angle(a)) for a in self.angles[t]),
            )
            for t in range(len(self))
        ]

    def smoothed(self, window: int = 3) -> "PoseTrajectory":
        """Centered moving-average smoothing of angles and centres.

        ``window`` must be odd; endpoints use a shrunken window.
        """
        if window < 1 or window % 2 == 0:
            raise ScoringError(f"window must be odd and >= 1, got {window}")
        if window == 1 or len(self) < 3:
            return self
        half = window // 2
        angles = np.empty_like(self.angles)
        centers = np.empty_like(self.centers)
        for t in range(len(self)):
            lo = max(0, t - half)
            hi = min(len(self), t + half + 1)
            angles[t] = self.angles[lo:hi].mean(axis=0)
            centers[t] = self.centers[lo:hi].mean(axis=0)
        return PoseTrajectory(angles=angles, centers=centers)

    def median_filtered(self, window: int = 3) -> "PoseTrajectory":
        """Sliding-median filter on angles and centres.

        Unlike the moving average, a median filter removes single-frame
        tracking spikes *without* shaving multi-frame extremes — which
        matters for the scoring rules, all of which take the max/min
        over a stage window.
        """
        if window < 1 or window % 2 == 0:
            raise ScoringError(f"window must be odd and >= 1, got {window}")
        if window == 1 or len(self) < 3:
            return self
        half = window // 2
        angles = np.empty_like(self.angles)
        centers = np.empty_like(self.centers)
        for t in range(len(self)):
            lo = max(0, t - half)
            hi = min(len(self), t + half + 1)
            angles[t] = np.median(self.angles[lo:hi], axis=0)
            centers[t] = np.median(self.centers[lo:hi], axis=0)
        return PoseTrajectory(angles=angles, centers=centers)

    def angular_velocity(self) -> np.ndarray:
        """Per-frame angular velocity ``(T-1, 8)`` in degrees/frame."""
        return np.diff(self.angles, axis=0)

    def center_velocity(self) -> np.ndarray:
        """Per-frame trunk-centre velocity ``(T-1, 2)`` in px/frame."""
        return np.diff(self.centers, axis=0)
