"""Whole-body kinematics: centre of mass and flight ballistics.

Extensions that the paper's future-work section implies: with the pose
track available, the centre of mass can be estimated from standard
segment mass fractions and the flight phase fitted with a parabola,
giving physically interpretable measures (apex height, horizontal
velocity, effective gravity of the fit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ScoringError
from ..model.pose import StickPose
from ..model.sticks import (
    FOOT,
    FOREARM,
    HEAD,
    NECK,
    NUM_STICKS,
    SHANK,
    THIGH,
    TRUNK,
    UPPER_ARM,
    BodyDimensions,
)

# Segment mass fractions (Winter's anthropometric tables, side-view
# merged limbs: both arms/legs collapsed into one stick each).
_MASS_FRACTIONS = np.zeros(NUM_STICKS)
_MASS_FRACTIONS[TRUNK] = 0.497
_MASS_FRACTIONS[NECK] = 0.02
_MASS_FRACTIONS[HEAD] = 0.061
_MASS_FRACTIONS[UPPER_ARM] = 0.056  # both upper arms
_MASS_FRACTIONS[FOREARM] = 0.044  # both forearms + hands
_MASS_FRACTIONS[THIGH] = 0.20  # both thighs
_MASS_FRACTIONS[SHANK] = 0.093  # both shanks
_MASS_FRACTIONS[FOOT] = 0.029  # both feet
_MASS_FRACTIONS = _MASS_FRACTIONS / _MASS_FRACTIONS.sum()


def center_of_mass(pose: StickPose, dims: BodyDimensions) -> np.ndarray:
    """Whole-body centre of mass (world coords) of one pose."""
    segments = pose.segments(dims)
    midpoints = segments.mean(axis=1)  # (8, 2)
    return (midpoints * _MASS_FRACTIONS[:, None]).sum(axis=0)


def center_of_mass_track(
    poses: Sequence[StickPose], dims: BodyDimensions
) -> np.ndarray:
    """Centre-of-mass positions ``(T, 2)`` over a pose sequence."""
    if not poses:
        raise ScoringError("cannot compute a CoM track of no poses")
    return np.array([center_of_mass(pose, dims) for pose in poses])


@dataclass(frozen=True, slots=True)
class FlightFit:
    """Least-squares parabola fit of the flight phase."""

    apex_height: float  # peak CoM height above takeoff CoM (pixels)
    apex_frame: float  # fractional frame index of the apex
    horizontal_velocity: float  # px / frame, mean over flight
    gravity: float  # px / frame², the fitted downward acceleration
    residual_rms: float  # fit quality (pixels)


def fit_flight_parabola(
    poses: Sequence[StickPose],
    dims: BodyDimensions,
    takeoff_frame: int,
    landing_frame: int,
) -> FlightFit:
    """Fit ``y(t) = a t² + b t + c`` to the CoM during flight."""
    if not 0 <= takeoff_frame < landing_frame < len(poses):
        raise ScoringError(
            f"invalid flight window [{takeoff_frame}, {landing_frame}] "
            f"for {len(poses)} poses"
        )
    if landing_frame - takeoff_frame < 2:
        raise ScoringError("need at least 3 flight frames to fit a parabola")

    com = center_of_mass_track(poses[takeoff_frame : landing_frame + 1], dims)
    t = np.arange(com.shape[0], dtype=np.float64)
    coeffs = np.polyfit(t, com[:, 1], deg=2)
    a, b, c = coeffs
    fitted = np.polyval(coeffs, t)
    residual = float(np.sqrt(np.mean((fitted - com[:, 1]) ** 2)))

    apex_t = -b / (2.0 * a) if a < 0 else 0.0
    apex_y = np.polyval(coeffs, apex_t)
    vx = float((com[-1, 0] - com[0, 0]) / max(com.shape[0] - 1, 1))
    return FlightFit(
        apex_height=float(apex_y - com[0, 1]),
        apex_frame=float(takeoff_frame + apex_t),
        horizontal_velocity=vx,
        gravity=float(-2.0 * a),
        residual_rms=residual,
    )
