"""Takeoff / landing detection from tracked poses.

The scoring windows of Section 4 split the sequence at the takeoff.
With tracked stick poses the takeoff is observable: the foot's lowest
point leaves the ground plane.  The ground height itself is estimated
from the first frames (the jumper starts standing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ScoringError
from ..model.pose import StickPose
from ..model.sticks import FOOT, BodyDimensions


@dataclass(frozen=True, slots=True)
class JumpEvents:
    """Detected temporal structure of one jump."""

    takeoff_frame: int  # first airborne frame
    landing_frame: int  # first grounded frame after flight
    peak_frame: int  # frame of maximum trunk-centre height
    ground_height: float  # estimated ground plane (world y)


def foot_clearance(
    poses: Sequence[StickPose], dims: BodyDimensions
) -> np.ndarray:
    """Lowest foot-endpoint height per frame (world y)."""
    heights = np.empty(len(poses))
    for index, pose in enumerate(poses):
        segments = pose.segments(dims)
        heights[index] = min(segments[FOOT, 0, 1], segments[FOOT, 1, 1])
    return heights


def detect_events(
    poses: Sequence[StickPose],
    dims: BodyDimensions,
    clearance_threshold: float = 2.5,
    baseline_frames: int = 3,
) -> JumpEvents:
    """Detect takeoff, landing and peak from a pose sequence.

    ``clearance_threshold`` (pixels) is how far the foot must rise
    above the standing baseline to count as airborne.
    """
    if len(poses) < 4:
        raise ScoringError(f"need at least 4 poses, got {len(poses)}")
    clearance = foot_clearance(poses, dims)
    ground = float(np.median(clearance[: max(baseline_frames, 1)]))
    airborne = clearance > ground + clearance_threshold

    takeoff = None
    for index in range(1, len(poses)):
        if airborne[index] and not airborne[index - 1]:
            takeoff = index
            break
    if takeoff is None:
        # Never clearly airborne: fall back to the midpoint split the
        # paper uses for its fixed windows.
        takeoff = len(poses) // 2

    landing = None
    for index in range(takeoff + 1, len(poses)):
        if not airborne[index]:
            landing = index
            break
    if landing is None:
        landing = len(poses) - 1

    heights = np.array([pose.y0 for pose in poses])
    peak = int(heights[takeoff:landing + 1].argmax()) + takeoff if landing > takeoff else takeoff

    return JumpEvents(
        takeoff_frame=int(takeoff),
        landing_frame=int(landing),
        peak_frame=int(peak),
        ground_height=ground,
    )
