"""Constant-velocity Kalman smoothing of pose tracks.

An alternative to the sliding median/mean filters of
:class:`~repro.analysis.trajectory.PoseTrajectory`: each unwrapped
angle track (and each centre coordinate) is modelled as position +
velocity with white acceleration noise, filtered forward (Kalman
filter) and smoothed backward (Rauch–Tung–Striebel), giving a
statistically grounded trade-off between tracker noise and real
motion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trajectory import PoseTrajectory
from ..errors import ScoringError


@dataclass(frozen=True, slots=True)
class KalmanConfig:
    """Noise model of the constant-velocity smoother.

    ``process_sigma`` is the white-acceleration standard deviation
    (units per frame²) — how fast the true signal may turn;
    ``measurement_sigma`` is the tracker's noise floor (units).
    """

    process_sigma: float = 4.0
    measurement_sigma: float = 5.0

    def __post_init__(self) -> None:
        if self.process_sigma <= 0 or self.measurement_sigma <= 0:
            raise ScoringError("Kalman sigmas must be positive")


def _smooth_track(observations: np.ndarray, config: KalmanConfig) -> np.ndarray:
    """RTS-smoothed positions for one scalar track."""
    n = observations.shape[0]
    if n < 3:
        return observations.copy()

    transition = np.array([[1.0, 1.0], [0.0, 1.0]])
    process = config.process_sigma ** 2 * np.array(
        [[0.25, 0.5], [0.5, 1.0]]
    )
    meas_var = config.measurement_sigma ** 2
    observe = np.array([1.0, 0.0])

    # Forward Kalman filter.
    means = np.zeros((n, 2))
    covs = np.zeros((n, 2, 2))
    pred_means = np.zeros((n, 2))
    pred_covs = np.zeros((n, 2, 2))

    mean = np.array([observations[0], 0.0])
    cov = np.diag([meas_var, 25.0])
    means[0], covs[0] = mean, cov
    pred_means[0], pred_covs[0] = mean, cov

    for t in range(1, n):
        mean_pred = transition @ mean
        cov_pred = transition @ cov @ transition.T + process
        pred_means[t], pred_covs[t] = mean_pred, cov_pred

        innovation = observations[t] - observe @ mean_pred
        s = observe @ cov_pred @ observe + meas_var
        gain = cov_pred @ observe / s
        mean = mean_pred + gain * innovation
        cov = cov_pred - np.outer(gain, observe @ cov_pred)
        means[t], covs[t] = mean, cov

    # Backward RTS smoother.
    smoothed = means.copy()
    smooth_cov = covs[-1]
    for t in range(n - 2, -1, -1):
        gain = covs[t] @ transition.T @ np.linalg.inv(pred_covs[t + 1])
        smoothed[t] = means[t] + gain @ (smoothed[t + 1] - pred_means[t + 1])
        smooth_cov = covs[t] + gain @ (smooth_cov - pred_covs[t + 1]) @ gain.T

    return smoothed[:, 0]


def kalman_smooth(
    trajectory: PoseTrajectory,
    config: KalmanConfig | None = None,
) -> PoseTrajectory:
    """Smooth every angle and centre track of a trajectory."""
    config = config or KalmanConfig()
    angles = np.column_stack(
        [
            _smooth_track(trajectory.angles[:, stick], config)
            for stick in range(trajectory.angles.shape[1])
        ]
    )
    centers = np.column_stack(
        [
            _smooth_track(trajectory.centers[:, axis], config)
            for axis in range(2)
        ]
    )
    return PoseTrajectory(angles=angles, centers=centers)
