"""Trajectory analysis: smoothing, events, kinematics."""

from .events import JumpEvents, detect_events, foot_clearance
from .kalman import KalmanConfig, kalman_smooth
from .kinematics import (
    FlightFit,
    center_of_mass,
    center_of_mass_track,
    fit_flight_parabola,
)
from .trajectory import PoseTrajectory, unwrap_degrees

__all__ = [
    "KalmanConfig",
    "kalman_smooth",
    "JumpEvents",
    "detect_events",
    "foot_clearance",
    "FlightFit",
    "center_of_mass",
    "center_of_mass_track",
    "fit_flight_parabola",
    "PoseTrajectory",
    "unwrap_degrees",
]
