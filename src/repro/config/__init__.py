"""Unified typed configuration layer.

The paper's system is parameter-dense — GA rates, tracker windows,
shadow thresholds, scoring windows — and every knob lives in a frozen
dataclass somewhere in the tree.  This package gives all of them one
wire format and one resolution chain:

* :func:`config_to_dict` / :func:`config_from_dict` — recursive typed
  dataclass ↔ dict conversion with unknown-key errors and coercion;
* :func:`resolve_config` — presets (``paper`` / ``fast`` /
  ``accurate``) ← JSON/TOML file ← dotted ``key=value`` overrides;
* :func:`config_hash` — stable content hash embedded into every
  serialized report for provenance.

See ``docs/configuration.md`` for the schema and override grammar.
"""

from .hashing import config_hash
from .loader import load_config_data, resolve_config
from .overrides import apply_overrides, deep_merge, parse_override
from .presets import PRESETS, get_preset, preset_dict, preset_names
from .schema import config_from_dict, config_to_dict

__all__ = [
    "PRESETS",
    "apply_overrides",
    "config_from_dict",
    "config_hash",
    "config_to_dict",
    "deep_merge",
    "get_preset",
    "load_config_data",
    "parse_override",
    "preset_dict",
    "preset_names",
    "resolve_config",
]
