"""Dotted-key overrides: ``tracker.ga.max_generations=5``.

The override grammar is deliberately tiny — ``dotted.key=value`` — and
is shared by the CLI's repeatable ``--set`` flag and the service's
per-request config block.  Values are parsed as JSON when possible
(numbers, booleans, ``null``, quoted strings, lists) and fall back to
the raw string otherwise, so ``tracker.strategy=hill_climb`` works
without quoting; final type checking happens against the dataclass
schema in :mod:`repro.config.schema`.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..errors import ConfigurationError


def parse_override(spec: str) -> tuple[tuple[str, ...], Any]:
    """Split one ``dotted.key=value`` spec into key path and value."""
    key, sep, raw = spec.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ConfigurationError(
            f"override {spec!r} is not of the form 'dotted.key=value'"
        )
    parts = tuple(part.strip() for part in key.split("."))
    if any(not part for part in parts):
        raise ConfigurationError(f"override {spec!r} has an empty key segment")
    raw = raw.strip()
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare strings: strategy names, modes, …
    return parts, value


def set_dotted(data: dict[str, Any], parts: tuple[str, ...], value: Any) -> None:
    """Set ``data[a][b][...] = value``, creating nested dicts as needed."""
    node = data
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = node[part] = {}
        elif not isinstance(child, dict):
            raise ConfigurationError(
                f"override key {'.'.join(parts)!r}: {part!r} is not a "
                "config section"
            )
        node = child
    node[parts[-1]] = value


def apply_overrides(data: dict[str, Any], specs: Iterable[str]) -> dict[str, Any]:
    """Apply ``key=value`` specs to a config dict, in order."""
    for spec in specs:
        parts, value = parse_override(spec)
        set_dotted(data, parts, value)
    return data


def deep_merge(base: dict[str, Any], overlay: dict[str, Any]) -> dict[str, Any]:
    """Recursively merge ``overlay`` into a copy of ``base``.

    Dicts merge key-wise; every other value in the overlay replaces the
    base value outright (lists are treated as atoms — a partial config
    file can shrink ``segmentation.steps``, not splice it).
    """
    merged = dict(base)
    for key, value in overlay.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged
