"""Stable content hashing of resolved configurations.

Every serialized report embeds the hash of the exact configuration
that produced it, so two runs can be compared ("same parameters?") at
a glance and a report is reproducible from its own output.  The hash
is computed over the *canonical* JSON form — sorted keys, compact
separators — so it is invariant to key order and to how the config was
assembled (presets, files, ``--set`` overrides).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from .schema import config_to_dict

#: Hex digits kept from the sha256 digest — enough to never collide in
#: practice while staying readable in logs and filenames.
HASH_LENGTH = 16

#: Top-level keys that describe *how* the pipeline executes, not *what*
#: it computes.  The `parallel` block (see repro.perf) cannot change a
#: numeric result — tests/test_perf_parity.py proves byte-identical
#: analyses across backends — so two runs differing only in it must
#: compare as "same parameters".
EXECUTION_ONLY_KEYS = ("parallel",)


def config_hash(config: Any) -> str:
    """Stable hash of a config dataclass or its dict form.

    Execution-only blocks (:data:`EXECUTION_ONLY_KEYS`) are excluded:
    the hash identifies the *science* of a run, and a serial rerun of a
    threaded analysis must reproduce its report hash-for-hash.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = config_to_dict(config)
    if isinstance(config, dict) and any(k in config for k in EXECUTION_ONLY_KEYS):
        config = {
            k: v for k, v in config.items() if k not in EXECUTION_ONLY_KEYS
        }
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:HASH_LENGTH]
