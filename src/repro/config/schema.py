"""Typed dataclass ↔ dict conversion with validation.

Every configuration object in this codebase is a (possibly nested)
frozen dataclass.  This module gives all of them a uniform wire form:

* :func:`config_to_dict` — recursive dataclass → plain JSON-ready dict
  (tuples become lists, nested configs become nested dicts);
* :func:`config_from_dict` — the inverse, driven by the dataclass's
  type hints.  Unknown keys are *errors* (they are almost always
  typos), values are coerced to the annotated type where that is
  unambiguous (``int`` → ``float``, ``list`` → ``tuple``, numeric
  strings from ``--set`` overrides → numbers), and every failure names
  the full dotted path of the offending key.

The dataclasses' own ``__post_init__`` validators still run on
construction, so range checks (``crossover_rate`` in ``[0, 1]``, …)
are enforced on loaded configs exactly as on hand-built ones.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from typing import Any, TypeVar

from ..errors import ConfigurationError

C = TypeVar("C")

_MISSING = object()


def config_to_dict(config: Any) -> Any:
    """Recursively convert a config dataclass to JSON-ready data."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: config_to_dict(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    if isinstance(config, (list, tuple)):
        return [config_to_dict(item) for item in config]
    if isinstance(config, (bool, int, float, str)) or config is None:
        return config
    raise ConfigurationError(
        f"cannot serialise {type(config).__name__} in a config "
        f"(only dataclasses, tuples and scalars): {config!r}"
    )


def config_from_dict(cls: type[C], data: Any, path: str = "") -> C:
    """Build ``cls`` from ``data``, validating keys and coercing types.

    ``path`` is the dotted prefix used in error messages (empty at the
    top level).  Raises :class:`~repro.errors.ConfigurationError` on
    unknown keys, uncoercible values, or dataclass validator failures.
    """
    coerced = _coerce(data, cls, path or cls.__name__)
    return typing.cast(C, coerced)


def _type_name(tp: Any) -> str:
    if tp is type(None):
        return "None"
    origin = typing.get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        return " | ".join(_type_name(a) for a in typing.get_args(tp))
    name = getattr(tp, "__name__", None)
    return name if name else str(tp)


def _fail(path: str, expected: Any, value: Any) -> ConfigurationError:
    return ConfigurationError(
        f"config key {path!r}: expected {_type_name(expected)}, "
        f"got {value!r} ({type(value).__name__})"
    )


def _coerce(value: Any, tp: Any, path: str) -> Any:
    """Coerce ``value`` to the annotated type ``tp`` or raise."""
    if tp is Any:
        return value

    origin = typing.get_origin(tp)

    # Optional / unions: try each arm, preferring an exact-type match.
    if origin in (typing.Union, types.UnionType):
        args = typing.get_args(tp)
        if value is None:
            if type(None) in args:
                return None
            raise _fail(path, tp, value)
        errors: list[str] = []
        for arm in args:
            if arm is type(None):
                continue
            try:
                return _coerce(value, arm, path)
            except ConfigurationError as exc:
                errors.append(str(exc))
        raise ConfigurationError(errors[0] if errors else str(_fail(path, tp, value)))

    # Nested dataclass.
    if dataclasses.is_dataclass(tp) and isinstance(tp, type):
        if dataclasses.is_dataclass(value) and isinstance(value, tp):
            return value
        if not isinstance(value, dict):
            raise _fail(path, tp, value)
        hints = typing.get_type_hints(tp)
        field_names = {f.name for f in dataclasses.fields(tp)}
        unknown = set(value) - field_names
        if unknown:
            known = ", ".join(sorted(field_names))
            raise ConfigurationError(
                f"unknown config key(s) {sorted(unknown)} under {path!r}; "
                f"valid keys: {known}"
            )
        kwargs = {
            name: _coerce(value[name], hints[name], f"{path}.{name}")
            for name in value
        }
        try:
            return tp(**kwargs)
        except ConfigurationError:
            raise
        except Exception as exc:  # dataclass validators (ModelError, …)
            raise ConfigurationError(f"config key {path!r}: {exc}") from exc

    # Tuples (the only sequence type configs use).
    if origin is tuple:
        if isinstance(value, str) or not isinstance(value, (list, tuple)):
            raise _fail(path, tp, value)
        args = typing.get_args(tp)
        if len(args) == 2 and args[1] is Ellipsis:
            element = args[0]
            return tuple(
                _coerce(item, element, f"{path}[{i}]")
                for i, item in enumerate(value)
            )
        if args and len(args) != len(value):
            raise ConfigurationError(
                f"config key {path!r}: expected {len(args)} elements, "
                f"got {len(value)}"
            )
        if not args:
            return tuple(value)
        return tuple(
            _coerce(item, arm, f"{path}[{i}]")
            for i, (item, arm) in enumerate(zip(value, args))
        )

    # Scalars, with the unambiguous coercions only.
    if tp is bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise _fail(path, tp, value)
    if tp is int:
        if isinstance(value, bool):
            raise _fail(path, tp, value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                raise _fail(path, tp, value) from None
        raise _fail(path, tp, value)
    if tp is float:
        if isinstance(value, bool):
            raise _fail(path, tp, value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise _fail(path, tp, value) from None
        raise _fail(path, tp, value)
    if tp is str:
        if isinstance(value, str):
            return value
        raise _fail(path, tp, value)

    raise ConfigurationError(
        f"config key {path!r}: unsupported annotation {_type_name(tp)}"
    )
