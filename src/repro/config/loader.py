"""Config file loading (JSON and TOML) and full resolution.

:func:`resolve_config` is the one entry point every layer shares —
CLI flags, service request blocks and library callers all funnel
through the same precedence chain::

    preset (or library defaults)
      ← config file (JSON / TOML, may be partial)
        ← dotted-key overrides ("tracker.ga.max_generations=5")

A config file may also be a *full analysis JSON* written by
``slj analyze --json`` / :func:`repro.serialization.write_analysis_json`
— the embedded ``"config"`` block is extracted automatically, so any
report reproduces itself: ``slj analyze --config report.json video.npz``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from .overrides import apply_overrides, deep_merge
from .presets import get_preset
from .schema import config_from_dict, config_to_dict
from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..pipeline import AnalyzerConfig

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]


def load_config_data(path: str | Path) -> dict[str, Any]:
    """Read a JSON or TOML config file into a plain dict.

    The format is chosen by suffix (``.toml`` → TOML, anything else →
    JSON).  A full analysis JSON is recognised by its embedded
    ``"config"`` block, which is returned instead of the whole payload.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"config file not found: {path}")
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise ConfigurationError(
                "TOML config files need Python >= 3.11 (tomllib); "
                "use JSON on this interpreter"
            )
        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML in {path}: {exc}") from exc
    else:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"config file {path} must hold an object, got {type(data).__name__}"
        )
    if "config" in data and isinstance(data["config"], dict) and (
        "config_hash" in data or "report" in data
    ):
        return data["config"]  # an analysis JSON reproducing itself
    return data


def resolve_config(
    preset: str | None = None,
    config_file: str | Path | None = None,
    overrides: Iterable[str] = (),
    base: "AnalyzerConfig | None" = None,
) -> "AnalyzerConfig":
    """Resolve preset + file + overrides into an :class:`AnalyzerConfig`.

    ``base`` (when given) replaces the library defaults as the starting
    point; ``preset`` replaces ``base``; the config file deep-merges
    over that; dotted overrides apply last.  Every layer is validated
    against the typed schema, so a typo anywhere raises a
    :class:`~repro.errors.ConfigurationError` naming the bad key.
    """
    from ..pipeline import AnalyzerConfig

    if preset is not None:
        resolved = config_to_dict(get_preset(preset))
    elif base is not None:
        resolved = config_to_dict(base)
    else:
        resolved = config_to_dict(AnalyzerConfig())
    if config_file is not None:
        resolved = deep_merge(resolved, load_config_data(config_file))
    resolved = apply_overrides(resolved, overrides)
    return config_from_dict(AnalyzerConfig, resolved)
