"""Named configuration presets.

Three ready-made operating points for the full analyzer:

* ``paper`` — the library defaults, which follow the paper's reported
  parameters (GA crossover 0.2 / mutation 0.01, elitist selection,
  shadow thresholds of Eq. 1) plus the tracking extensions that are on
  by default;
* ``fast`` — reduced GA budget and silhouette subsampling for smoke
  tests and interactive use (quicker, noisier) — this is what the
  CLI's ``--fast`` flag resolves to;
* ``accurate`` — enlarged GA budget and denser silhouette sampling for
  offline, quality-first runs.

Presets are *factories* (a fresh config per call) registered in
:data:`PRESETS`, so downstream code can add deployment-specific ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..registry import Registry

if TYPE_CHECKING:  # avoid a circular import at runtime
    from ..pipeline import AnalyzerConfig

#: Registry of named preset factories: ``name -> () -> AnalyzerConfig``.
PRESETS: Registry[Callable[[], "AnalyzerConfig"]] = Registry("config preset")


@PRESETS.register("paper")
def _paper() -> "AnalyzerConfig":
    from ..ga.temporal import RecoveryConfig, TrackerConfig
    from ..pipeline import AnalyzerConfig, RobustnessConfig

    # Strict fail-fast: no recovery ladder, no stage retries or
    # fallbacks — a degraded frame raises exactly as the paper's
    # pipeline would.  Everything else keeps the library defaults.
    return AnalyzerConfig(
        tracker=TrackerConfig(recovery=RecoveryConfig(enabled=False)),
        robustness=RobustnessConfig(enabled=False),
    )


@PRESETS.register("fast")
def _fast() -> "AnalyzerConfig":
    from ..ga.engine import GAConfig
    from ..ga.temporal import TrackerConfig
    from ..model.fitness import FitnessConfig
    from ..perf.executors import ParallelConfig
    from ..pipeline import AnalyzerConfig

    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=30, max_generations=10, patience=5),
            fitness=FitnessConfig(max_points=600),
        ),
        # Threaded frame fan-out: numerically identical to serial (the
        # backend is excluded from the config hash), just quicker on
        # multi-core hosts.  `paper` deliberately stays serial/float64.
        parallel=ParallelConfig(backend="threads", workers=4),
    )


@PRESETS.register("accurate")
def _accurate() -> "AnalyzerConfig":
    from ..ga.engine import GAConfig
    from ..ga.temporal import TrackerConfig
    from ..model.fitness import FitnessConfig
    from ..pipeline import AnalyzerConfig

    return AnalyzerConfig(
        tracker=TrackerConfig(
            ga=GAConfig(population_size=90, max_generations=60, patience=20),
            fitness=FitnessConfig(max_points=3000),
        ),
        smoothing_window=5,
    )


def preset_names() -> tuple[str, ...]:
    """Names of every registered preset."""
    return PRESETS.names()


def get_preset(name: str) -> "AnalyzerConfig":
    """Build a fresh :class:`AnalyzerConfig` for a named preset."""
    return PRESETS.get(name)()


def preset_dict(name: str) -> dict[str, Any]:
    """The resolved dict form of a named preset."""
    from .schema import config_to_dict

    return config_to_dict(get_preset(name))
