"""Stick-model topology of the paper (Fig. 4) and body dimensions.

The model has eight sticks.  Because the jump is filmed from the side,
the paper merges both arms into one arm and both legs into one leg:

====  ==========  =====================================
Name  Index       Attached to
====  ==========  =====================================
S0    0 trunk     free (its centre is ``(x0, y0)``)
S1    1 neck      upper end of trunk
S2    2 upper arm upper end of trunk (shoulder)
S3    3 thigh     lower end of trunk (hip)
S4    4 head      distal end of neck
S5    5 forearm   distal end of upper arm (elbow)
S6    6 shank     distal end of thigh (knee)
S7    7 foot      distal end of shank (ankle)
====  ==========  =====================================

Each stick ``Sl`` carries an angle ``ρl`` measured from the +y (vertical)
axis rotating toward +x (the jump direction), so the stick's unit
direction is ``(sin ρ, cos ρ)`` in world coordinates (y up).  This
convention makes the paper's scoring thresholds come out directly:
arms hanging straight down are at ``ρ2 = 180°``, arms swung back behind
the body satisfy ``ρ2 > 270°`` (rule R3), and an upright trunk has
``ρ0 = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..errors import ModelError

NUM_STICKS = 8

STICK_NAMES = (
    "trunk",
    "neck",
    "upper_arm",
    "thigh",
    "head",
    "forearm",
    "shank",
    "foot",
)

TRUNK = 0
NECK = 1
UPPER_ARM = 2
THIGH = 3
HEAD = 4
FOREARM = 5
SHANK = 6
FOOT = 7

# Parent stick for each non-trunk stick.  "upper"/"lower" refer to the
# two ends of the trunk; every other stick attaches at its parent's
# distal end.
PARENT: dict[int, tuple[int, str]] = {
    NECK: (TRUNK, "upper"),
    UPPER_ARM: (TRUNK, "upper"),
    THIGH: (TRUNK, "lower"),
    HEAD: (NECK, "distal"),
    FOREARM: (UPPER_ARM, "distal"),
    SHANK: (THIGH, "distal"),
    FOOT: (SHANK, "distal"),
}

# Kinematic evaluation order: parents before children.
EVALUATION_ORDER = (TRUNK, NECK, UPPER_ARM, THIGH, HEAD, FOREARM, SHANK, FOOT)


def stick_index(name: str) -> int:
    """Map a stick name (e.g. ``"thigh"``) to its index."""
    try:
        return STICK_NAMES.index(name)
    except ValueError:
        raise ModelError(
            f"unknown stick name {name!r}; expected one of {STICK_NAMES}"
        ) from None


@dataclass(frozen=True, slots=True)
class BodyDimensions:
    """Lengths and thicknesses (both in pixels) of the eight sticks.

    ``lengths[l]`` is the length of stick ``Sl``; ``thicknesses[l]`` is
    the full width ``t_l`` of the body part around the stick — the
    denominator of the paper's fitness (Eq. 3) and twice the capsule
    radius used by the synthetic renderer.
    """

    lengths: tuple[float, ...]
    thicknesses: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lengths) != NUM_STICKS:
            raise ModelError(
                f"need {NUM_STICKS} stick lengths, got {len(self.lengths)}"
            )
        if len(self.thicknesses) != NUM_STICKS:
            raise ModelError(
                f"need {NUM_STICKS} stick thicknesses, got {len(self.thicknesses)}"
            )
        if any(length <= 0 for length in self.lengths):
            raise ModelError(f"stick lengths must be positive: {self.lengths}")
        if any(thickness <= 0 for thickness in self.thicknesses):
            raise ModelError(
                f"stick thicknesses must be positive: {self.thicknesses}"
            )

    @property
    def stature(self) -> float:
        """Standing height: foot-to-crown along a straight body."""
        return (
            self.lengths[THIGH]
            + self.lengths[SHANK]
            + self.lengths[TRUNK]
            + self.lengths[NECK]
            + self.lengths[HEAD]
        )

    def length_of(self, name: str) -> float:
        """Length of the stick called ``name``."""
        return self.lengths[stick_index(name)]

    def thickness_of(self, name: str) -> float:
        """Thickness of the stick called ``name``."""
        return self.thicknesses[stick_index(name)]

    def scaled(self, factor: float) -> "BodyDimensions":
        """Return dimensions uniformly scaled by ``factor``."""
        if factor <= 0:
            raise ModelError(f"scale factor must be positive, got {factor}")
        return BodyDimensions(
            lengths=tuple(length * factor for length in self.lengths),
            thicknesses=tuple(t * factor for t in self.thicknesses),
        )

    def with_thicknesses(self, thicknesses) -> "BodyDimensions":
        """Return a copy with replaced thicknesses."""
        return BodyDimensions(
            lengths=self.lengths,
            thicknesses=tuple(float(t) for t in thicknesses),
        )


# Segment lengths as fractions of stature, from standard anthropometric
# tables (Winter, *Biomechanics and Motor Control of Human Movement*),
# adjusted so the five vertical segments sum to 1.
_LENGTH_FRACTIONS = {
    TRUNK: 0.310,
    NECK: 0.075,
    UPPER_ARM: 0.186,
    THIGH: 0.245,
    HEAD: 0.125,
    FOREARM: 0.190,  # forearm + hand
    SHANK: 0.245,
    FOOT: 0.120,
}

_THICKNESS_FRACTIONS = {
    TRUNK: 0.160,
    NECK: 0.055,
    UPPER_ARM: 0.055,
    THIGH: 0.085,
    HEAD: 0.110,
    FOREARM: 0.045,
    SHANK: 0.060,
    FOOT: 0.040,
}


def default_body(stature: float = 60.0) -> BodyDimensions:
    """Anthropometric body dimensions for a person of ``stature`` pixels.

    ``stature`` is the standing height of the rendered figure.  The
    default (60 px) sits comfortably inside the library's default
    160x120 frames.
    """
    if stature <= 0:
        raise ModelError(f"stature must be positive, got {stature}")
    lengths = tuple(
        _LENGTH_FRACTIONS[index] * stature for index in range(NUM_STICKS)
    )
    thicknesses = tuple(
        _THICKNESS_FRACTIONS[index] * stature for index in range(NUM_STICKS)
    )
    return BodyDimensions(lengths=lengths, thicknesses=thicknesses)


@dataclass(frozen=True, slots=True)
class AngleWindows:
    """Per-stick search windows ``Δρ_l`` for temporal GA seeding.

    The paper: "the initial angles can be randomly chosen from the
    range ``ρ_{l,k-1} ± Δρ_l``, where ``Δρ_l`` is different for
    different sticks [and] determined by the nature of connected joints".
    The arm swings fastest in a standing long jump (back to front in a
    few frames, ≈ 45°/frame at 20 frames per jump), so the upper-arm
    and forearm windows are widest; the trunk barely rotates between
    frames.
    """

    deltas_deg: tuple[float, ...] = field(
        default=(15.0, 20.0, 60.0, 30.0, 20.0, 65.0, 35.0, 40.0)
    )
    center_delta: float = 6.0  # Δx = Δy rectangle half-width around centroid

    def __post_init__(self) -> None:
        if len(self.deltas_deg) != NUM_STICKS:
            raise ModelError(
                f"need {NUM_STICKS} angle windows, got {len(self.deltas_deg)}"
            )
        if any(delta <= 0 for delta in self.deltas_deg):
            raise ModelError(f"angle windows must be positive: {self.deltas_deg}")
        if self.center_delta <= 0:
            raise ModelError(
                f"center window must be positive, got {self.center_delta}"
            )
