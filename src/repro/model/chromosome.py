"""Chromosome layout and gene groups for the GA (paper Section 3).

A chromosome is the 10-vector ``(x0, y0, ρ0, ρ1, ..., ρ7)``.  The
paper's "multiple crossover" exchanges whole **gene groups** between
parents; the groups keep kinematically related sticks together:

* ``(x0, y0)`` — the trunk centre,
* ``(ρ0)`` — the trunk angle,
* ``(ρ1, ρ4)`` — neck and head,
* ``(ρ2, ρ5)`` — upper arm and forearm,
* ``(ρ3, ρ6, ρ7)`` — thigh, shank and foot.
"""

from __future__ import annotations

import numpy as np

from .geometry import wrap_angle
from .pose import GENES
from ..errors import ModelError

#: Gene indices: 0=x0, 1=y0, 2+l = rho_l.
GENE_X0 = 0
GENE_Y0 = 1


def angle_gene(stick: int) -> int:
    """Chromosome index of stick ``Sl``'s angle gene."""
    if not 0 <= stick < GENES - 2:
        raise ModelError(f"stick index out of range: {stick}")
    return 2 + stick

#: The paper's crossover groups (Section 3): (x0,y0) (ρ0) (ρ1,ρ4)
#: (ρ2,ρ5) (ρ3,ρ6,ρ7).
GENE_GROUPS: tuple[tuple[int, ...], ...] = (
    (GENE_X0, GENE_Y0),
    (angle_gene(0),),
    (angle_gene(1), angle_gene(4)),
    (angle_gene(2), angle_gene(5)),
    (angle_gene(3), angle_gene(6), angle_gene(7)),
)


def validate_chromosomes(genes: np.ndarray) -> np.ndarray:
    """Validate a batch of chromosomes and normalise its angles.

    Returns a float copy with angle genes wrapped into ``[0, 360)``.
    """
    arr = np.asarray(genes, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != GENES:
        raise ModelError(
            f"chromosomes must have shape (P, {GENES}), got {np.shape(genes)}"
        )
    out = arr.copy()
    out[:, 2:] = wrap_angle(out[:, 2:])
    return out


def group_spans() -> list[np.ndarray]:
    """Gene groups as index arrays, for vectorised crossover."""
    return [np.asarray(group, dtype=np.intp) for group in GENE_GROUPS]


def chromosome_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Distance between two chromosomes: centre offset + mean angle gap.

    Useful as a diversity measure.  Angle differences are taken along
    the shortest arc so 359 and 1 are two degrees apart.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (GENES,) or b.shape != (GENES,):
        raise ModelError("chromosome_distance expects two 10-gene vectors")
    center = float(np.hypot(a[0] - b[0], a[1] - b[1]))
    diff = np.mod(a[2:] - b[2:] + 180.0, 360.0) - 180.0
    return center + float(np.abs(diff).mean())
