"""Geometry kernels: angles, directions, point–segment distance.

World coordinates are y-up with +x the jump direction.  A stick with
angle ``ρ`` (degrees from the +y axis, rotating toward +x) has unit
direction ``(sin ρ, cos ρ)``.  Images are row-major y-down; the
conversion helpers at the bottom translate between the two frames.
"""

from __future__ import annotations

import numpy as np


def direction(angle_deg: float | np.ndarray) -> np.ndarray:
    """Unit direction ``(sin ρ, cos ρ)`` for angle(s) in degrees.

    For scalar input returns shape ``(2,)``; for an array of shape
    ``(...,)`` returns ``(..., 2)``.
    """
    rad = np.deg2rad(np.asarray(angle_deg, dtype=np.float64))
    return np.stack([np.sin(rad), np.cos(rad)], axis=-1)


def wrap_angle(angle_deg: float | np.ndarray) -> np.ndarray | float:
    """Wrap angle(s) into ``[0, 360)`` degrees."""
    wrapped = np.mod(np.asarray(angle_deg, dtype=np.float64), 360.0)
    # np.mod(-1e-14, 360) rounds to exactly 360.0; keep the interval
    # half-open.
    wrapped = np.where(wrapped >= 360.0, 0.0, wrapped)
    if np.ndim(angle_deg) == 0:
        return float(wrapped)
    return wrapped


def angle_difference(a_deg: float | np.ndarray, b_deg: float | np.ndarray) -> np.ndarray | float:
    """Signed smallest difference ``a - b`` in ``(-180, 180]`` degrees."""
    diff = np.mod(
        np.asarray(a_deg, dtype=np.float64) - np.asarray(b_deg, dtype=np.float64) + 180.0,
        360.0,
    ) - 180.0
    # Map the wrap artefact -180 to +180 so the interval is (-180, 180].
    diff = np.where(diff == -180.0, 180.0, diff)
    if np.ndim(a_deg) == 0 and np.ndim(b_deg) == 0:
        return float(diff)
    return diff


def points_to_segments_distance(points: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Distance from each point to each segment.

    Parameters
    ----------
    points:
        Array of shape ``(N, 2)``.
    segments:
        Array of shape ``(S, 2, 2)``: ``segments[s, 0]`` is the start
        point and ``segments[s, 1]`` the end point.

    Returns
    -------
    Array of shape ``(N, S)`` of Euclidean distances.
    """
    points = np.asarray(points, dtype=np.float64)
    segments = np.asarray(segments, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must have shape (N, 2), got {points.shape}")
    if segments.ndim != 3 or segments.shape[1:] != (2, 2):
        raise ValueError(
            f"segments must have shape (S, 2, 2), got {segments.shape}"
        )
    return _DISTANCE_IMPL(points, segments)


def _segment_distances_fast(points: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Coordinate-split form of the reference kernel.

    Works on (N, S) planes per coordinate instead of stacked (N, S, 2)
    blocks, which drops the einsum dispatches and halves the size of
    every temporary.  Each output element goes through the *same*
    floating-point operations in the same association order as
    :func:`_segment_distances_reference`, so the results are bitwise
    identical (asserted in ``tests/test_perf_parity.py``).  dtype
    follows the inputs: float32 in, float32 out.
    """
    px = points[:, 0:1]  # (N, 1)
    py = points[:, 1:2]
    sx = segments[:, 0, 0]  # (S,)
    sy = segments[:, 0, 1]
    dx = segments[:, 1, 0] - sx
    dy = segments[:, 1, 1] - sy
    length_sq = dx * dx + dy * dy

    relx = px - sx  # (N, S)
    rely = py - sy
    dot = relx * dx + rely * dy
    if length_sq.size and length_sq.min() > 0.0:
        t = dot / length_sq
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(length_sq > 0.0, dot / length_sq, 0.0)
    np.clip(t, 0.0, 1.0, out=t)
    ex = px - (sx + t * dx)
    ey = py - (sy + t * dy)
    return np.sqrt(ex * ex + ey * ey)


def _segment_distances_reference(
    points: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """The original einsum kernel, kept as the bitwise ground truth."""
    starts = segments[:, 0, :]  # (S, 2)
    deltas = segments[:, 1, :] - starts  # (S, 2)
    length_sq = np.einsum("sd,sd->s", deltas, deltas)  # (S,)

    # Vector from each start to each point: (N, S, 2)
    rel = points[:, None, :] - starts[None, :, :]
    dot = np.einsum("nsd,sd->ns", rel, deltas)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(length_sq > 0.0, dot / length_sq, 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = starts[None, :, :] + t[..., None] * deltas[None, :, :]
    diff = points[:, None, :] - closest
    return np.sqrt(np.einsum("nsd,nsd->ns", diff, diff))


def segment_distances_squared(
    points: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """Squared point-to-segment distances, dtype-preserving.

    The float32 fitness fast path minimises over *squared* normalised
    distances and takes one square root per (point, chromosome) instead
    of per (point, stick) — see ``SilhouetteFitness``.  No validation:
    callers own the shapes.
    """
    px = points[:, 0:1]
    py = points[:, 1:2]
    sx = segments[:, 0, 0]
    sy = segments[:, 0, 1]
    dx = segments[:, 1, 0] - sx
    dy = segments[:, 1, 1] - sy
    length_sq = dx * dx + dy * dy

    relx = px - sx
    rely = py - sy
    dot = relx * dx + rely * dy
    if length_sq.size and length_sq.min() > 0.0:
        t = dot / length_sq
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(length_sq > 0.0, dot / length_sq, 0.0)
    np.clip(t, 0.0, 1.0, out=t)
    ex = px - (sx + t * dx)
    ey = py - (sy + t * dy)
    return ex * ex + ey * ey


#: Active distance kernel.  ``repro.perf.compat.legacy_hot_paths`` swaps
#: in the reference implementation for benchmarking and parity tests.
_DISTANCE_IMPL = _segment_distances_fast


def sample_segment_points(segments: np.ndarray, samples_per_segment: int) -> np.ndarray:
    """Evenly sample points along each segment.

    Parameters
    ----------
    segments:
        Array ``(S, 2, 2)``.
    samples_per_segment:
        Number of sample points per segment (including both endpoints
        when >= 2).

    Returns
    -------
    Array ``(S * samples_per_segment, 2)``.
    """
    segments = np.asarray(segments, dtype=np.float64)
    if samples_per_segment < 1:
        raise ValueError(
            f"samples_per_segment must be >= 1, got {samples_per_segment}"
        )
    if samples_per_segment == 1:
        ts = np.array([0.5])
    else:
        ts = np.linspace(0.0, 1.0, samples_per_segment)
    starts = segments[:, 0, :][:, None, :]  # (S, 1, 2)
    deltas = (segments[:, 1, :] - segments[:, 0, :])[:, None, :]
    pts = starts + ts[None, :, None] * deltas  # (S, T, 2)
    return pts.reshape(-1, 2)


def world_to_image(points_xy: np.ndarray, image_height: int) -> np.ndarray:
    """Convert world ``(x, y)`` points (y up) to image ``(row, col)``.

    ``row = (H - 1) - y`` and ``col = x``.
    """
    pts = np.asarray(points_xy, dtype=np.float64)
    out = np.empty_like(pts)
    out[..., 0] = (image_height - 1) - pts[..., 1]
    out[..., 1] = pts[..., 0]
    return out


def image_to_world(points_rc: np.ndarray, image_height: int) -> np.ndarray:
    """Convert image ``(row, col)`` points to world ``(x, y)`` (y up)."""
    pts = np.asarray(points_rc, dtype=np.float64)
    out = np.empty_like(pts)
    out[..., 0] = pts[..., 1]
    out[..., 1] = (image_height - 1) - pts[..., 0]
    return out


def mask_points_world(mask: np.ndarray) -> np.ndarray:
    """World ``(x, y)`` coordinates of the True pixels of ``mask``."""
    rows, cols = np.nonzero(mask)
    height = mask.shape[0]
    return np.stack(
        [cols.astype(np.float64), (height - 1) - rows.astype(np.float64)],
        axis=-1,
    )
