"""Stick pose: the paper's 10-value state and its forward kinematics.

A pose is ``(x0, y0, ρ0, ρ1, ..., ρ7)``: the trunk-centre position and
the eight stick angles (degrees from vertical, Section 3 / Fig. 5).
Forward kinematics turns a pose plus :class:`~repro.model.sticks.BodyDimensions`
into the eight world-space segments of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from .geometry import wrap_angle
from .sticks import (
    FOOT,
    FOREARM,
    HEAD,
    NECK,
    NUM_STICKS,
    PARENT,
    SHANK,
    STICK_NAMES,
    THIGH,
    TRUNK,
    UPPER_ARM,
    BodyDimensions,
    stick_index,
)
from ..errors import ModelError

GENES = NUM_STICKS + 2  # x0, y0, rho0..rho7


@lru_cache(maxsize=32)
def _cached_lengths(dims: BodyDimensions) -> np.ndarray:
    """Stick lengths as a read-only array, converted once per dims."""
    lengths = np.asarray(dims.lengths, dtype=np.float64)
    lengths.setflags(write=False)
    return lengths


#: The kinematic chain of :data:`PARENT` resolved once into
#: ``(stick, parent, parent_end_index)`` tuples — the trunk's "upper"
#: end and every distal attachment are segment end 1, "lower" is end 0.
_CHAIN: tuple[tuple[int, int, int], ...] = tuple(
    (stick, parent, 0 if end == "lower" else 1)
    for stick, (parent, end) in PARENT.items()
)

#: Human-readable joint names produced by :meth:`StickPose.joints`.
JOINT_NAMES = (
    "trunk_center",
    "hip",
    "shoulder",
    "neck_top",
    "head_top",
    "elbow",
    "wrist",
    "knee",
    "ankle",
    "toe",
)


@dataclass(frozen=True, slots=True)
class StickPose:
    """One frame's pose: trunk centre plus eight stick angles (degrees)."""

    x0: float
    y0: float
    angles_deg: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.angles_deg) != NUM_STICKS:
            raise ModelError(
                f"need {NUM_STICKS} stick angles, got {len(self.angles_deg)}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def standing(cls, x0: float, y0: float) -> "StickPose":
        """An upright standing pose at trunk centre ``(x0, y0)``.

        Trunk, neck and head vertical; arm hanging down; leg straight
        down; foot pointing forward.
        """
        angles = [0.0] * NUM_STICKS
        angles[UPPER_ARM] = 180.0
        angles[FOREARM] = 180.0
        angles[THIGH] = 180.0
        angles[SHANK] = 180.0
        angles[FOOT] = 90.0
        return cls(x0=x0, y0=y0, angles_deg=tuple(angles))

    @classmethod
    def from_genes(cls, genes: np.ndarray) -> "StickPose":
        """Build a pose from a 10-gene chromosome vector."""
        genes = np.asarray(genes, dtype=np.float64)
        if genes.shape != (GENES,):
            raise ModelError(f"chromosome must have shape ({GENES},), got {genes.shape}")
        return cls(
            x0=float(genes[0]),
            y0=float(genes[1]),
            angles_deg=tuple(float(wrap_angle(a)) for a in genes[2:]),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def to_genes(self) -> np.ndarray:
        """Return the 10-gene chromosome ``[x0, y0, ρ0..ρ7]``."""
        return np.array([self.x0, self.y0, *self.angles_deg], dtype=np.float64)

    def angle(self, stick: int | str) -> float:
        """Angle (degrees) of a stick given by index or name."""
        index = stick if isinstance(stick, int) else stick_index(stick)
        if not 0 <= index < NUM_STICKS:
            raise ModelError(f"stick index out of range: {index}")
        return self.angles_deg[index]

    def with_angle(self, stick: int | str, angle_deg: float) -> "StickPose":
        """Return a copy with one stick angle replaced."""
        index = stick if isinstance(stick, int) else stick_index(stick)
        angles = list(self.angles_deg)
        angles[index] = float(wrap_angle(angle_deg))
        return replace(self, angles_deg=tuple(angles))

    def translated(self, dx: float, dy: float) -> "StickPose":
        """Return a copy with the trunk centre moved by ``(dx, dy)``."""
        return replace(self, x0=self.x0 + dx, y0=self.y0 + dy)

    # ------------------------------------------------------------------
    # Kinematics
    # ------------------------------------------------------------------
    def segments(self, dims: BodyDimensions) -> np.ndarray:
        """World-space segments ``(8, 2, 2)``; ``[l, 0]`` is proximal."""
        return forward_kinematics(self.to_genes()[None, :], dims)[0]

    def joints(self, dims: BodyDimensions) -> dict[str, np.ndarray]:
        """Named joint positions in world coordinates."""
        segs = self.segments(dims)
        return {
            "trunk_center": np.array([self.x0, self.y0]),
            "hip": segs[TRUNK, 0],
            "shoulder": segs[TRUNK, 1],
            "neck_top": segs[NECK, 1],
            "head_top": segs[HEAD, 1],
            "elbow": segs[UPPER_ARM, 1],
            "wrist": segs[FOREARM, 1],
            "knee": segs[THIGH, 1],
            "ankle": segs[SHANK, 1],
            "toe": segs[FOOT, 1],
        }

    def blended(self, other: "StickPose", weight: float) -> "StickPose":
        """Interpolate toward ``other``: 0 → self, 1 → other.

        Angles interpolate along the shortest arc so a blend never
        swings a limb the long way around the circle.
        """
        from .geometry import angle_difference

        if not 0.0 <= weight <= 1.0:
            raise ModelError(f"blend weight must be in [0, 1], got {weight}")
        angles = tuple(
            float(
                wrap_angle(
                    a + weight * angle_difference(b, a)
                )
            )
            for a, b in zip(self.angles_deg, other.angles_deg)
        )
        return StickPose(
            x0=self.x0 + weight * (other.x0 - self.x0),
            y0=self.y0 + weight * (other.y0 - self.y0),
            angles_deg=angles,
        )


def forward_kinematics(genes: np.ndarray, dims: BodyDimensions) -> np.ndarray:
    """Vectorised forward kinematics for a batch of chromosomes.

    Parameters
    ----------
    genes:
        Array ``(P, 10)`` of chromosomes ``[x0, y0, ρ0..ρ7]``.
    dims:
        Stick lengths and thicknesses.

    Returns
    -------
    Array ``(P, 8, 2, 2)`` of world-space segments; ``[p, l, 0]`` is the
    proximal end of stick ``l`` (trunk: its lower end) and ``[p, l, 1]``
    the distal end (trunk: its upper end).
    """
    genes = np.asarray(genes, dtype=np.float64)
    if genes.ndim != 2 or genes.shape[1] != GENES:
        raise ModelError(f"genes must have shape (P, {GENES}), got {genes.shape}")
    population = genes.shape[0]
    lengths = _cached_lengths(dims)

    centers = genes[:, :2]  # (P, 2)
    # Inlined `direction`: write sin/cos straight into the output
    # layout instead of stacking — this runs once per offspring
    # containment check, mostly with P == 1, where the fixed overhead
    # of extra allocations dominates.
    rad = np.deg2rad(genes[:, 2:])
    dirs = np.empty((population, NUM_STICKS, 2), dtype=np.float64)
    np.sin(rad, out=dirs[:, :, 0])
    np.cos(rad, out=dirs[:, :, 1])

    segments = np.empty((population, NUM_STICKS, 2, 2), dtype=np.float64)

    # One multiply covers every stick's distal offset; the chain loop
    # below then only anchors and adds.  Elementwise identical to the
    # per-stick `lengths[stick] * dirs[:, stick]` products.
    offsets = lengths[None, :, None] * dirs

    # Trunk: centre +/- half length along its direction.
    half_trunk = 0.5 * lengths[TRUNK]
    segments[:, TRUNK, 0] = centers - half_trunk * dirs[:, TRUNK]  # lower/hip
    segments[:, TRUNK, 1] = centers + half_trunk * dirs[:, TRUNK]  # upper

    # Children in evaluation order (parents first).
    for stick, parent, end in _CHAIN:
        anchor = segments[:, parent, end]
        segments[:, stick, 0] = anchor
        segments[:, stick, 1] = anchor + offsets[:, stick]

    return segments


def pose_angle_errors(estimated: StickPose, truth: StickPose) -> np.ndarray:
    """Absolute per-stick angle errors in degrees (shortest arc)."""
    from .geometry import angle_difference

    return np.abs(
        np.asarray(
            [
                angle_difference(a, b)
                for a, b in zip(estimated.angles_deg, truth.angles_deg)
            ]
        )
    )


def mean_joint_error(
    estimated: StickPose, truth: StickPose, dims: BodyDimensions
) -> float:
    """Mean Euclidean distance between corresponding joints (pixels)."""
    est = estimated.joints(dims)
    ref = truth.joints(dims)
    dists = [np.linalg.norm(est[name] - ref[name]) for name in est]
    return float(np.mean(dists))


def describe_pose(pose: StickPose) -> str:
    """One-line human-readable description of a pose."""
    angles = ", ".join(
        f"{name}={angle:.1f}" for name, angle in zip(STICK_NAMES, pose.angles_deg)
    )
    return f"StickPose(center=({pose.x0:.1f}, {pose.y0:.1f}), {angles})"
