"""First-frame stick-model annotation.

The paper bootstraps tracking from a stick figure "drawn by a trained
person" on the first frame, which fixes the model's size (stick lengths
and thicknesses) and the frame-0 pose.  Real human annotation is not
available here, so two substitutes are provided:

* :func:`simulate_human_annotation` — the ground-truth pose perturbed by
  a configurable jitter (a trained annotator is accurate to a few
  degrees and pixels, not perfect);
* :func:`auto_annotate` — a moment-based automatic initialiser
  (extension beyond the paper) that derives the trunk placement from
  the silhouette's centroid and principal axis and starts the limbs
  from a standing prior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fitness import estimate_thicknesses
from .geometry import mask_points_world, wrap_angle
from .pose import StickPose, forward_kinematics
from .sticks import FOOT, NUM_STICKS, SHANK, THIGH, UPPER_ARM, FOREARM, BodyDimensions, default_body
from ..errors import ModelError
from ..imaging.image import ensure_mask


@dataclass(frozen=True, slots=True)
class AnnotationJitter:
    """How imprecise the simulated human annotator is."""

    center_sigma: float = 1.5  # pixels
    angle_sigma: float = 4.0  # degrees

    def __post_init__(self) -> None:
        if self.center_sigma < 0 or self.angle_sigma < 0:
            raise ModelError("annotation jitter sigmas must be >= 0")


@dataclass(frozen=True, slots=True)
class FirstFrameAnnotation:
    """Result of annotating the first frame: pose + calibrated body."""

    pose: StickPose
    dims: BodyDimensions


def simulate_human_annotation(
    true_pose: StickPose,
    dims: BodyDimensions,
    mask: np.ndarray | None = None,
    jitter: AnnotationJitter | None = None,
    rng: np.random.Generator | None = None,
) -> FirstFrameAnnotation:
    """Simulate the trained person drawing the first-frame stick figure.

    The annotated pose is the ground truth plus Gaussian jitter.  When
    ``mask`` is given, per-stick thicknesses are re-estimated from the
    silhouette around the annotated model, exactly the calibration the
    paper performs.
    """
    jitter = jitter or AnnotationJitter()
    rng = rng if rng is not None else np.random.default_rng(0)

    pose = StickPose(
        x0=true_pose.x0 + float(rng.normal(0.0, jitter.center_sigma)),
        y0=true_pose.y0 + float(rng.normal(0.0, jitter.center_sigma)),
        angles_deg=tuple(
            float(wrap_angle(angle + rng.normal(0.0, jitter.angle_sigma)))
            for angle in true_pose.angles_deg
        ),
    )
    if mask is not None:
        thickness = estimate_thicknesses(mask, pose, dims)
        dims = dims.with_thicknesses(thickness)
    return FirstFrameAnnotation(pose=pose, dims=dims)


def auto_annotate(
    mask: np.ndarray,
    dims: BodyDimensions | None = None,
    prior_angles: "tuple[float, ...] | None" = None,
) -> FirstFrameAnnotation:
    """Derive a rough first-frame pose from silhouette moments (extension).

    The trunk centre is placed at the silhouette centroid, the trunk
    angle follows the principal axis of the point cloud, limbs start at
    a standing prior, and the body is scaled so its stature matches the
    silhouette height.  Intended for frames where the person is roughly
    upright (the first frame of a standing long jump).

    ``prior_angles`` substitutes a different start posture (a movement
    profile's :attr:`~repro.profiles.MovementProfile.start_angles`,
    e.g. seated for sit-to-stand).  The body is then scaled so the
    *posed model's* vertical extent matches the silhouette height —
    scaling by stature would shrink the model to the crouched height —
    and the model is centred on the silhouette via the posed model's
    own point centroid instead of the standing-body nudge.
    """
    mask = ensure_mask(mask)
    points = mask_points_world(mask)
    if points.shape[0] < 10:
        raise ModelError("silhouette too small to auto-annotate")

    centroid = points.mean(axis=0)
    height = points[:, 1].max() - points[:, 1].min()

    if prior_angles is not None:
        if len(prior_angles) != NUM_STICKS:
            raise ModelError(
                f"prior_angles needs {NUM_STICKS} angles, got {len(prior_angles)}"
            )
        base = dims or default_body(stature=max(height, 1.0))
        genes = np.array([0.0, 0.0, *prior_angles], dtype=np.float64)[None, :]
        segments = forward_kinematics(genes, base)[0]
        endpoints = segments.reshape(-1, 2)
        extent = float(endpoints[:, 1].max() - endpoints[:, 1].min())
        scale = max(height, 1.0) / max(extent, 1.0)
        scaled = base.scaled(scale)
        # Align the posed model's endpoint centroid with the
        # silhouette centroid: the trunk centre offset is the scaled
        # negative of the model centroid at origin.
        model_centroid = endpoints.mean(axis=0) * scale
        pose = StickPose(
            x0=float(centroid[0] - model_centroid[0]),
            y0=float(centroid[1] - model_centroid[1]),
            angles_deg=tuple(float(wrap_angle(a)) for a in prior_angles),
        )
        thickness = estimate_thicknesses(mask, pose, scaled)
        return FirstFrameAnnotation(
            pose=pose, dims=scaled.with_thicknesses(thickness)
        )

    centered = points - centroid
    cov = centered.T @ centered / points.shape[0]
    eigvals, eigvecs = np.linalg.eigh(cov)
    principal = eigvecs[:, int(np.argmax(eigvals))]
    if principal[1] < 0:  # orient the axis upward
        principal = -principal
    trunk_angle = float(wrap_angle(np.degrees(np.arctan2(principal[0], principal[1]))))

    base = dims or default_body(stature=max(height, 1.0))
    scale = max(height, 1.0) / base.stature
    scaled = base.scaled(scale)

    pose = StickPose.standing(float(centroid[0]), float(centroid[1]))
    pose = pose.with_angle(0, trunk_angle)
    # The centroid of a standing body sits slightly below the trunk
    # centre (legs are heavy); nudge the trunk centre up by a fraction
    # of the trunk length.
    pose = pose.translated(0.0, 0.15 * scaled.lengths[0])

    thickness = estimate_thicknesses(mask, pose, scaled)
    return FirstFrameAnnotation(pose=pose, dims=scaled.with_thicknesses(thickness))


def refine_annotation(
    annotation: FirstFrameAnnotation,
    mask: np.ndarray,
    containment_margin: int = 2,
) -> FirstFrameAnnotation:
    """Snap a rough first-frame annotation onto the silhouette.

    A human annotator (or :func:`auto_annotate`) is accurate to a few
    degrees; this polishes the drawn model by coordinate descent on the
    Eq. 3 fitness, keeping the model inside the silhouette, and then
    re-calibrates the per-stick thicknesses.
    """
    from .containment import ContainmentChecker
    from .fitness import SilhouetteFitness
    from ..ga.refine import local_polish

    mask = ensure_mask(mask)
    fitness = SilhouetteFitness(mask, annotation.dims)
    checker = ContainmentChecker(mask, annotation.dims, margin=containment_margin)
    genes = local_polish(
        annotation.pose.to_genes(), fitness.evaluate, validity_fn=checker.check
    )
    pose = StickPose.from_genes(genes)
    thickness = estimate_thicknesses(mask, pose, annotation.dims)
    return FirstFrameAnnotation(
        pose=pose, dims=annotation.dims.with_thicknesses(thickness)
    )


def standing_prior_angles() -> tuple[float, ...]:
    """The limb angles of a relaxed standing pose (degrees)."""
    angles = [0.0] * NUM_STICKS
    angles[UPPER_ARM] = 180.0
    angles[FOREARM] = 180.0
    angles[THIGH] = 180.0
    angles[SHANK] = 180.0
    angles[FOOT] = 90.0
    return tuple(angles)
