"""The paper's silhouette-fitness function (Eq. 3) and thickness fitting.

For a silhouette of ``N`` points and a stick model with segments
``S_0..S_7`` of area thickness ``t_l``::

    F_S = ( Σ_{(xi,yj) ∈ silhouette}  min_l  d((xi,yj), S_l) / t_l ) / N

Smaller is better: a pose whose (thickness-normalised) sticks pass near
every silhouette point scores low.  The thicknesses come from the
human-annotated first frame (:func:`estimate_thicknesses`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import geometry
from .geometry import (
    mask_points_world,
    points_to_segments_distance,
    segment_distances_squared,
)
from .pose import StickPose, forward_kinematics
from .sticks import NUM_STICKS, BodyDimensions
from ..errors import ConfigurationError, ModelError
from ..imaging.image import ensure_mask


@dataclass(frozen=True, slots=True)
class FitnessConfig:
    """Controls for the fitness evaluation.

    ``max_points`` caps the number of silhouette points used (uniform
    subsampling) to bound the cost of one evaluation; 0 disables the
    cap and uses every silhouette pixel like the paper.

    ``precision`` selects the arithmetic of Eq. 3: ``"float64"`` (the
    default, bit-for-bit the paper configuration) or ``"float32"``, a
    fast path that also minimises over *squared* normalised distances —
    scores agree with float64 to ~1e-3 relative (documented and
    enforced in ``tests/test_perf_parity.py``).

    ``chunk_size`` is the number of chromosomes scored per distance
    matrix; 0 picks a cache-friendly size from the silhouette point
    count.  Chunk width only perturbs the summation order of the final
    per-point mean: scores agree across chunkings to a few ulps, and
    the end-to-end analysis output is bit-identical
    (``tests/test_perf_parity.py``).
    """

    max_points: int = 1500
    subsample_seed: int = 7
    precision: str = "float64"
    chunk_size: int = 0

    def __post_init__(self) -> None:
        if self.max_points < 0:
            raise ConfigurationError(
                f"max_points must be >= 0, got {self.max_points}"
            )
        if self.precision not in ("float64", "float32"):
            raise ConfigurationError(
                f"precision must be 'float64' or 'float32', got {self.precision!r}"
            )
        if self.chunk_size < 0:
            raise ConfigurationError(
                f"chunk_size must be >= 0 (0 = adaptive), got {self.chunk_size}"
            )


def _adaptive_chunk(num_points: int) -> int:
    """Chromosomes per block keeping the distance matrix ~4 MB."""
    target_elements = 512 * 1024
    return int(np.clip(target_elements // max(num_points * NUM_STICKS, 1), 8, 256))


class SilhouetteFitness:
    """Evaluate Eq. 3 for chromosomes against one silhouette.

    The silhouette's pixel coordinates are extracted once at
    construction; each call to :meth:`evaluate` then costs one batched
    point-to-segment distance computation.
    """

    def __init__(
        self,
        mask: np.ndarray,
        dims: BodyDimensions,
        config: FitnessConfig | None = None,
    ) -> None:
        mask = ensure_mask(mask)
        self._mask = mask
        self._dims = dims
        self._config = config or FitnessConfig()

        points = mask_points_world(mask)
        if points.shape[0] == 0:
            raise ModelError("cannot build a fitness over an empty silhouette")
        self._total_points = points.shape[0]
        cap = self._config.max_points
        if cap and points.shape[0] > cap:
            rng = np.random.default_rng(self._config.subsample_seed)
            chosen = rng.choice(points.shape[0], size=cap, replace=False)
            chosen.sort()
            points = points[chosen]
        self._points = points
        self._thickness = np.asarray(dims.thicknesses, dtype=np.float64)
        if self._config.precision == "float32":
            self._points32 = self._points.astype(np.float32)
            self._inv_thickness_sq32 = (
                1.0 / (self._thickness * self._thickness)
            ).astype(np.float32)

    @property
    def mask(self) -> np.ndarray:
        """The silhouette this fitness was built over."""
        return self._mask

    @property
    def dims(self) -> BodyDimensions:
        """Body dimensions used for forward kinematics."""
        return self._dims

    @property
    def num_points(self) -> int:
        """Number of silhouette points actually used in the sum."""
        return self._points.shape[0]

    @property
    def total_points(self) -> int:
        """Number of silhouette pixels before subsampling."""
        return self._total_points

    def evaluate(self, genes: np.ndarray) -> np.ndarray:
        """Fitness of each chromosome in a ``(P, 10)`` batch (lower = better)."""
        genes = np.asarray(genes, dtype=np.float64)
        squeeze = genes.ndim == 1
        if squeeze:
            genes = genes[None, :]
        segments = forward_kinematics(genes, self._dims)  # (P, 8, 2, 2)
        population = segments.shape[0]
        num_points = self._points.shape[0]
        # Chunk the population so the (N, C*8) distance matrix stays
        # small enough to be cache-friendly.  Each chromosome's column
        # is reduced independently; only the mean's summation order can
        # shift with the chunk width (a few ulps at most).
        chunk = self._config.chunk_size or _adaptive_chunk(num_points)
        chunk = max(1, min(population, chunk))
        if self._config.precision == "float32":
            scores = self._evaluate_float32(segments, chunk)
            return scores[0] if squeeze else scores
        scores = np.empty(population, dtype=np.float64)
        for start in range(0, population, chunk):
            block = segments[start : start + chunk]  # (C, 8, 2, 2)
            flat = block.reshape(-1, 2, 2)
            dists = geometry._DISTANCE_IMPL(self._points, flat)
            dists = dists.reshape(num_points, block.shape[0], NUM_STICKS)
            normalised = dists / self._thickness[None, None, :]
            scores[start : start + block.shape[0]] = (
                normalised.min(axis=2).mean(axis=0)
            )
        return scores[0] if squeeze else scores

    def _evaluate_float32(self, segments: np.ndarray, chunk: int) -> np.ndarray:
        """Reduced-precision Eq. 3: squared distances, one sqrt per point.

        ``min_l d/t_l == sqrt(min_l d²/t_l²)`` exactly in real
        arithmetic; in floats the reordering plus float32 storage moves
        scores by ~1e-3 relative (see ``docs/performance.md``).  The
        final mean accumulates in float64 so the error does not grow
        with the silhouette size.
        """
        population = segments.shape[0]
        num_points = self._points32.shape[0]
        segments32 = segments.astype(np.float32)
        scores = np.empty(population, dtype=np.float64)
        for start in range(0, population, chunk):
            block = segments32[start : start + chunk]
            flat = block.reshape(-1, 2, 2)
            sq = segment_distances_squared(self._points32, flat)
            sq = sq.reshape(num_points, block.shape[0], NUM_STICKS)
            normalised = sq * self._inv_thickness_sq32[None, None, :]
            best = np.sqrt(normalised.min(axis=2))
            scores[start : start + block.shape[0]] = best.mean(
                axis=0, dtype=np.float64
            )
        return scores

    def evaluate_pose(self, pose: StickPose) -> float:
        """Fitness of a single :class:`StickPose`."""
        return float(self.evaluate(pose.to_genes()))

    def per_stick_coverage(self, pose: StickPose) -> np.ndarray:
        """Fraction of silhouette points nearest to each stick.

        Diagnostic: a well-fit model assigns points to all body parts;
        a collapsed model funnels everything to the trunk.
        """
        segments = pose.segments(self._dims)
        dists = points_to_segments_distance(self._points, segments)
        nearest = (dists / self._thickness[None, :]).argmin(axis=1)
        return np.bincount(nearest, minlength=NUM_STICKS) / self._points.shape[0]


def estimate_thicknesses(
    mask: np.ndarray,
    pose: StickPose,
    dims: BodyDimensions,
    floor: float = 1.0,
) -> np.ndarray:
    """Estimate per-stick thickness ``t_l`` from an annotated frame.

    The paper: "the thickness of all sticks' area can be estimated from
    the stick model drawn by human in the first frame."  Each
    silhouette point is assigned to its nearest stick; for a solid limb
    of half-width ``w`` the mean perpendicular distance of its points
    to the stick axis is ``w / 2``, so the full thickness is four times
    the mean assigned distance.  Sticks that attract no points keep
    their prior thickness from ``dims``.
    """
    mask = ensure_mask(mask)
    points = mask_points_world(mask)
    if points.shape[0] == 0:
        raise ModelError("cannot estimate thickness from an empty silhouette")
    segments = pose.segments(dims)
    dists = points_to_segments_distance(points, segments)
    # Assign by *normalised* distance so thick parts do not swallow
    # points belonging to their thin neighbours.
    prior = np.asarray(dims.thicknesses, dtype=np.float64)
    nearest = (dists / prior[None, :]).argmin(axis=1)

    thickness = prior.copy()
    for stick in range(NUM_STICKS):
        selected = nearest == stick
        if selected.any():
            thickness[stick] = max(4.0 * float(dists[selected, stick].mean()), floor)
    return thickness
