"""Silhouette-containment feasibility test for chromosomes.

The paper rejects any chromosome "not in the boundary of the
silhouette" both when building the initial population and after
crossover/mutation.  A chromosome is *contained* when sample points
along every stick fall inside the silhouette, up to a small dilation
margin that absorbs rasterisation error.
"""

from __future__ import annotations

import numpy as np

from .geometry import sample_segment_points, world_to_image
from .pose import GENES, StickPose, forward_kinematics
from .sticks import BodyDimensions
from ..imaging.image import ensure_mask
from ..imaging.morphology import box_element, dilate


class ContainmentChecker:
    """Tests whether stick models stay inside one silhouette.

    Parameters
    ----------
    mask:
        The silhouette.
    dims:
        Body dimensions for forward kinematics.
    margin:
        Dilation (in pixels) applied to the silhouette before testing.
        The paper's silhouettes are noisy, so a margin of 2–3 px keeps
        correct poses feasible without admitting wild ones.
    samples_per_stick:
        Number of points sampled along each stick.
    min_inside_fraction:
        Fraction of all sampled points that must land inside; 1.0
        reproduces the paper's strict rule, slightly lower values
        tolerate silhouettes with holes.
    """

    def __init__(
        self,
        mask: np.ndarray,
        dims: BodyDimensions,
        margin: int = 2,
        samples_per_stick: int = 5,
        min_inside_fraction: float = 0.9,
    ) -> None:
        mask = ensure_mask(mask)
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        if samples_per_stick < 1:
            raise ValueError(
                f"samples_per_stick must be >= 1, got {samples_per_stick}"
            )
        if not 0.0 < min_inside_fraction <= 1.0:
            raise ValueError(
                f"min_inside_fraction must be in (0, 1], got {min_inside_fraction}"
            )
        self._region = dilate(mask, box_element(3), iterations=margin) if margin else mask
        self._height, self._width = mask.shape
        self._dims = dims
        self._samples = samples_per_stick
        self._min_fraction = min_inside_fraction
        # Cached sampling offsets and a flat region view: `check` runs
        # once per offspring attempt, so per-call setup must be nil.
        if samples_per_stick == 1:
            self._ts = np.array([0.5])
        else:
            self._ts = np.linspace(0.0, 1.0, samples_per_stick)
        self._region_flat = np.ascontiguousarray(self._region).reshape(-1)
        # Coded lookup with a one-cell border: 0 = out of frame, 1 = in
        # frame but outside the region, 2 = inside the region.  Sample
        # coordinates clamp onto the border, so frame-bounds testing,
        # index clipping and the region gather collapse into one take.
        coded = np.zeros((self._height + 2, self._width + 2), dtype=np.int8)
        coded[1:-1, 1:-1] = 1 + self._region.astype(np.int8)
        self._coded_flat = np.ascontiguousarray(coded).reshape(-1)
        # Verdicts memoised by chromosome bytes.  Offspring are often
        # bit-exact parent copies (low crossover/mutation rates, elites
        # recurring as parents), so the GA re-tests identical
        # chromosomes many times per frame.  The checker is rebuilt per
        # silhouette, which bounds the cache's lifetime.
        self._verdicts: dict[bytes, bool] = {}

    #: Class-level switch for the batched fast path.  Flipped off only
    #: by ``repro.perf.compat.legacy_hot_paths`` (bench + parity tests).
    vectorized = True

    def check(self, genes: np.ndarray) -> np.ndarray:
        """Boolean feasibility for each chromosome of a ``(P, 10)`` batch."""
        genes = np.asarray(genes, dtype=np.float64)
        squeeze = genes.ndim == 1
        if squeeze:
            genes = genes[None, :]
        if genes.shape[1] != GENES:
            raise ValueError(f"expected (P, {GENES}) chromosomes, got {genes.shape}")
        if self.vectorized and genes.shape[0] == 1:
            key = genes.tobytes()
            verdict = self._verdicts.get(key)
            if verdict is None:
                segments = forward_kinematics(genes, self._dims)
                verdict = bool(self._check_batch(segments)[0])
                if len(self._verdicts) >= 65536:  # runaway-population guard
                    self._verdicts.clear()
                self._verdicts[key] = verdict
            return verdict if squeeze else np.array([verdict])
        segments = forward_kinematics(genes, self._dims)
        if self.vectorized:
            results = self._check_batch(segments)
        else:
            results = np.empty(genes.shape[0], dtype=bool)
            for p in range(genes.shape[0]):
                results[p] = self._contained(segments[p])
        return bool(results[0]) if squeeze else results

    def _check_batch(self, segments: np.ndarray) -> np.ndarray:
        """One numpy pass over all ``(P, 8, 2, 2)`` segment batches.

        Produces exactly `_contained` applied per chromosome: the same
        sample points (same arithmetic as ``sample_segment_points``),
        the same rounding, the same all-in-frame gate and inside
        fraction.  Parity is asserted in ``tests/test_perf_parity.py``.
        """
        vals = self._sample_codes(segments)
        # Code 0 anywhere means a sample fell out of frame (the strict
        # gate); the inside fraction counts only code-2 samples, exactly
        # as `_region & in_frame` would.
        all_in = vals.min(axis=1) > 0
        return all_in & ((vals == 2).mean(axis=1) >= self._min_fraction)

    def _sample_codes(self, segments: np.ndarray) -> np.ndarray:
        """Per-sample region codes for ``(P, 8, 2, 2)`` segment batches.

        Returns a ``(P, 8 * samples)`` int8 array of lookups into the
        coded silhouette.  Index arithmetic stays in float64 (the
        rounded coordinates are integral and tiny, so it is exact) and
        clamps onto the zero border, so the whole test is a handful of
        ufunc calls — this runs once per offspring attempt.
        """
        population = segments.shape[0]
        starts = segments[:, :, None, 0, :]  # (P, 8, 1, 2)
        deltas = segments[:, :, None, 1, :] - starts
        pts = starts + self._ts[None, None, :, None] * deltas  # (P, 8, T, 2)
        x = pts[..., 0].reshape(population, -1)
        y = pts[..., 1].reshape(population, -1)
        rows = np.rint((self._height - 1) - y)
        cols = np.rint(x)
        # np.minimum/np.maximum directly: the np.clip wrapper costs more
        # than the whole lookup at offspring batch sizes.
        np.minimum(rows, float(self._height), out=rows)
        np.maximum(rows, -1.0, out=rows)
        np.minimum(cols, float(self._width), out=cols)
        np.maximum(cols, -1.0, out=cols)
        index = rows * float(self._width + 2)
        index += cols
        index += float(self._width + 3)  # shift onto the padded grid
        return self._coded_flat[index.astype(np.intp)]

    def check_pose(self, pose: StickPose) -> bool:
        """Feasibility of a single pose."""
        return bool(self.check(pose.to_genes()))

    def inside_fraction(self, genes: np.ndarray) -> np.ndarray:
        """Fraction of sampled stick points inside the silhouette.

        Out-of-frame points count as outside.  Used as a soft penalty
        by the single-frame baseline, where hard rejection would
        discard essentially every random chromosome.
        """
        genes = np.asarray(genes, dtype=np.float64)
        squeeze = genes.ndim == 1
        if squeeze:
            genes = genes[None, :]
        segments = forward_kinematics(genes, self._dims)
        vals = self._sample_codes(segments)
        fractions = (vals == 2).mean(axis=1)
        return float(fractions[0]) if squeeze else fractions

    def _contained(self, segments: np.ndarray) -> bool:
        points = sample_segment_points(segments, self._samples)
        rc = world_to_image(points, self._height)
        rows = np.rint(rc[:, 0]).astype(int)
        cols = np.rint(rc[:, 1]).astype(int)
        in_frame = (
            (rows >= 0)
            & (rows < self._height)
            & (cols >= 0)
            & (cols < self._width)
        )
        if not in_frame.all():
            return False
        inside = self._region[rows, cols]
        return float(inside.mean()) >= self._min_fraction
