"""Silhouette-containment feasibility test for chromosomes.

The paper rejects any chromosome "not in the boundary of the
silhouette" both when building the initial population and after
crossover/mutation.  A chromosome is *contained* when sample points
along every stick fall inside the silhouette, up to a small dilation
margin that absorbs rasterisation error.
"""

from __future__ import annotations

import numpy as np

from .geometry import sample_segment_points, world_to_image
from .pose import GENES, StickPose, forward_kinematics
from .sticks import BodyDimensions
from ..imaging.image import ensure_mask
from ..imaging.morphology import box_element, dilate


class ContainmentChecker:
    """Tests whether stick models stay inside one silhouette.

    Parameters
    ----------
    mask:
        The silhouette.
    dims:
        Body dimensions for forward kinematics.
    margin:
        Dilation (in pixels) applied to the silhouette before testing.
        The paper's silhouettes are noisy, so a margin of 2–3 px keeps
        correct poses feasible without admitting wild ones.
    samples_per_stick:
        Number of points sampled along each stick.
    min_inside_fraction:
        Fraction of all sampled points that must land inside; 1.0
        reproduces the paper's strict rule, slightly lower values
        tolerate silhouettes with holes.
    """

    def __init__(
        self,
        mask: np.ndarray,
        dims: BodyDimensions,
        margin: int = 2,
        samples_per_stick: int = 5,
        min_inside_fraction: float = 0.9,
    ) -> None:
        mask = ensure_mask(mask)
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        if samples_per_stick < 1:
            raise ValueError(
                f"samples_per_stick must be >= 1, got {samples_per_stick}"
            )
        if not 0.0 < min_inside_fraction <= 1.0:
            raise ValueError(
                f"min_inside_fraction must be in (0, 1], got {min_inside_fraction}"
            )
        self._region = dilate(mask, box_element(3), iterations=margin) if margin else mask
        self._height, self._width = mask.shape
        self._dims = dims
        self._samples = samples_per_stick
        self._min_fraction = min_inside_fraction

    def check(self, genes: np.ndarray) -> np.ndarray:
        """Boolean feasibility for each chromosome of a ``(P, 10)`` batch."""
        genes = np.asarray(genes, dtype=np.float64)
        squeeze = genes.ndim == 1
        if squeeze:
            genes = genes[None, :]
        if genes.shape[1] != GENES:
            raise ValueError(f"expected (P, {GENES}) chromosomes, got {genes.shape}")
        segments = forward_kinematics(genes, self._dims)
        results = np.empty(genes.shape[0], dtype=bool)
        for p in range(genes.shape[0]):
            results[p] = self._contained(segments[p])
        return results[0] if squeeze else results

    def check_pose(self, pose: StickPose) -> bool:
        """Feasibility of a single pose."""
        return bool(self.check(pose.to_genes()))

    def inside_fraction(self, genes: np.ndarray) -> np.ndarray:
        """Fraction of sampled stick points inside the silhouette.

        Out-of-frame points count as outside.  Used as a soft penalty
        by the single-frame baseline, where hard rejection would
        discard essentially every random chromosome.
        """
        genes = np.asarray(genes, dtype=np.float64)
        squeeze = genes.ndim == 1
        if squeeze:
            genes = genes[None, :]
        segments = forward_kinematics(genes, self._dims)
        fractions = np.empty(genes.shape[0], dtype=np.float64)
        for p in range(genes.shape[0]):
            points = sample_segment_points(segments[p], self._samples)
            rc = world_to_image(points, self._height)
            rows = np.rint(rc[:, 0]).astype(int)
            cols = np.rint(rc[:, 1]).astype(int)
            in_frame = (
                (rows >= 0)
                & (rows < self._height)
                & (cols >= 0)
                & (cols < self._width)
            )
            inside = np.zeros(points.shape[0], dtype=bool)
            inside[in_frame] = self._region[rows[in_frame], cols[in_frame]]
            fractions[p] = float(inside.mean())
        return float(fractions[0]) if squeeze else fractions

    def _contained(self, segments: np.ndarray) -> bool:
        points = sample_segment_points(segments, self._samples)
        rc = world_to_image(points, self._height)
        rows = np.rint(rc[:, 0]).astype(int)
        cols = np.rint(rc[:, 1]).astype(int)
        in_frame = (
            (rows >= 0)
            & (rows < self._height)
            & (cols >= 0)
            & (cols < self._width)
        )
        if not in_frame.all():
            return False
        inside = self._region[rows, cols]
        return float(inside.mean()) >= self._min_fraction
