"""Image containers and validation helpers.

The library represents images as plain numpy arrays:

* **RGB image** — float array of shape ``(H, W, 3)`` with values in
  ``[0, 1]``.
* **Grayscale image** — float array of shape ``(H, W)`` in ``[0, 1]``.
* **Binary mask** — boolean array of shape ``(H, W)``.

Every public function in :mod:`repro.imaging` validates its inputs with
the helpers below so shape or dtype mistakes fail loudly at the boundary
instead of deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError

# Per-channel weights of the ITU-R BT.601 luma transform.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def ensure_rgb(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate and return ``image`` as a float RGB array in ``[0, 1]``.

    Accepts float arrays in ``[0, 1]`` or ``uint8`` arrays in
    ``[0, 255]`` (which are converted).  Raises :class:`ImageError`
    otherwise.
    """
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(
            f"{name} must have shape (H, W, 3), got {arr.shape}"
        )
    if arr.dtype == np.uint8:
        return arr.astype(np.float64) / 255.0
    arr = arr.astype(np.float64, copy=False)
    if arr.size and (arr.min() < -1e-9 or arr.max() > 1.0 + 1e-9):
        raise ImageError(
            f"{name} float values must lie in [0, 1]; "
            f"got range [{arr.min():.4g}, {arr.max():.4g}]"
        )
    return np.clip(arr, 0.0, 1.0)


def ensure_gray(image: np.ndarray, name: str = "image") -> np.ndarray:
    """Validate and return ``image`` as a float grayscale array in [0, 1]."""
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ImageError(f"{name} must have shape (H, W), got {arr.shape}")
    if arr.dtype == np.uint8:
        return arr.astype(np.float64) / 255.0
    arr = arr.astype(np.float64, copy=False)
    if arr.size and (arr.min() < -1e-9 or arr.max() > 1.0 + 1e-9):
        raise ImageError(
            f"{name} float values must lie in [0, 1]; "
            f"got range [{arr.min():.4g}, {arr.max():.4g}]"
        )
    return np.clip(arr, 0.0, 1.0)


def ensure_mask(mask: np.ndarray, name: str = "mask") -> np.ndarray:
    """Validate and return ``mask`` as a 2-D boolean array.

    Accepts boolean arrays or integer/float arrays containing only the
    values 0 and 1.
    """
    # Idempotence fast path: validated masks flow through segmentation,
    # fitness construction and thickness estimation on every frame, and
    # re-validating an already-boolean array is pure overhead.
    if type(mask) is np.ndarray and mask.dtype == np.bool_ and mask.ndim == 2:
        return mask
    arr = np.asarray(mask)
    if arr.ndim != 2:
        raise ImageError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.dtype == bool:
        return arr
    # Hot path (every fitness construction): a vectorised 0/1 check is
    # far cheaper than np.unique, which sorts the whole array.
    if not ((arr == 0) | (arr == 1)).all():
        raise ImageError(
            f"{name} must contain only 0/1 values to be used as a mask"
        )
    return arr.astype(bool)


def ensure_same_shape(a: np.ndarray, b: np.ndarray, what: str = "arrays") -> None:
    """Raise :class:`ImageError` unless ``a`` and ``b`` share a shape."""
    if a.shape != b.shape:
        raise ImageError(
            f"{what} must have identical shapes, got {a.shape} vs {b.shape}"
        )


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a float image in [0, 1] to ``uint8`` in [0, 255]."""
    arr = np.asarray(image, dtype=np.float64)
    return np.clip(np.round(arr * 255.0), 0, 255).astype(np.uint8)


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Collapse an RGB image to grayscale with BT.601 luma weights."""
    rgb = ensure_rgb(image)
    return rgb @ _LUMA_WEIGHTS


def blank_rgb(height: int, width: int, color: tuple[float, float, float] = (0.0, 0.0, 0.0)) -> np.ndarray:
    """Create an RGB image filled with ``color``."""
    if height <= 0 or width <= 0:
        raise ImageError(f"image dimensions must be positive, got {height}x{width}")
    image = np.empty((height, width, 3), dtype=np.float64)
    image[...] = np.clip(np.asarray(color, dtype=np.float64), 0.0, 1.0)
    return image


def blank_mask(height: int, width: int) -> np.ndarray:
    """Create an all-False boolean mask."""
    if height <= 0 or width <= 0:
        raise ImageError(f"mask dimensions must be positive, got {height}x{width}")
    return np.zeros((height, width), dtype=bool)
