"""Image resizing (nearest-neighbour and bilinear), from scratch.

Real uploaded videos arrive at arbitrary resolutions; the pipeline's
defaults are tuned around a ~70 px jumper, so callers need a resizer.
Masks resize with nearest-neighbour; frames with bilinear sampling.
"""

from __future__ import annotations

import numpy as np

from .image import ensure_mask
from ..errors import ImageError


def _target_shape(shape: tuple[int, int], height: int, width: int) -> None:
    if height < 1 or width < 1:
        raise ImageError(f"target size must be positive, got {height}x{width}")


def resize_nearest(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize for 2-D or 3-D arrays (masks included)."""
    arr = np.asarray(image)
    if arr.ndim not in (2, 3):
        raise ImageError(f"cannot resize array of shape {arr.shape}")
    _target_shape(arr.shape[:2], height, width)
    rows = np.clip(
        np.round(np.arange(height) * arr.shape[0] / height).astype(int),
        0,
        arr.shape[0] - 1,
    )
    cols = np.clip(
        np.round(np.arange(width) * arr.shape[1] / width).astype(int),
        0,
        arr.shape[1] - 1,
    )
    return arr[np.ix_(rows, cols)]


def resize_bilinear(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize for float images (2-D or 3-D)."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim not in (2, 3):
        raise ImageError(f"cannot resize array of shape {arr.shape}")
    _target_shape(arr.shape[:2], height, width)
    src_h, src_w = arr.shape[:2]

    # Sample positions mapping target pixel centres into source space.
    r = (np.arange(height) + 0.5) * src_h / height - 0.5
    c = (np.arange(width) + 0.5) * src_w / width - 0.5
    r = np.clip(r, 0.0, src_h - 1.0)
    c = np.clip(c, 0.0, src_w - 1.0)

    r0 = np.floor(r).astype(int)
    c0 = np.floor(c).astype(int)
    r1 = np.minimum(r0 + 1, src_h - 1)
    c1 = np.minimum(c0 + 1, src_w - 1)
    fr = (r - r0)[:, None]
    fc = (c - c0)[None, :]
    if arr.ndim == 3:
        fr = fr[..., None]
        fc = fc[..., None]

    top = arr[np.ix_(r0, c0)] * (1 - fc) + arr[np.ix_(r0, c1)] * fc
    bottom = arr[np.ix_(r1, c0)] * (1 - fc) + arr[np.ix_(r1, c1)] * fc
    return top * (1 - fr) + bottom * fr


def resize_mask(mask: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize a boolean mask (nearest-neighbour)."""
    return resize_nearest(ensure_mask(mask), height, width)


def resize_video_frames(frames: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear-resize a ``(T, H, W, 3)`` frame stack."""
    arr = np.asarray(frames, dtype=np.float64)
    if arr.ndim != 4:
        raise ImageError(f"expected (T, H, W, C) frames, got {arr.shape}")
    return np.stack(
        [resize_bilinear(frame, height, width) for frame in arr], axis=0
    )
