"""Neighbour-counting primitives used by the paper's cleanup steps.

Step 3 of the segmentation algorithm keeps a foreground pixel only when
enough of its **eight** neighbours are foreground; Step 4 fills a hole
pixel when all **four** of its edge neighbours are foreground.  Both
reduce to counting set neighbours under a small structuring element,
implemented here with shifted views so no convolution library is
needed.
"""

from __future__ import annotations

import numpy as np

from .image import ensure_mask

# Offsets (drow, dcol) of the 4- and 8-connected neighbourhoods.
OFFSETS_4 = ((-1, 0), (1, 0), (0, -1), (0, 1))
OFFSETS_8 = OFFSETS_4 + ((-1, -1), (-1, 1), (1, -1), (1, 1))


def shift(mask: np.ndarray, drow: int, dcol: int, fill: bool = False) -> np.ndarray:
    """Return ``mask`` translated by ``(drow, dcol)`` with constant fill.

    The pixel at ``(r, c)`` of the result equals
    ``mask[r - drow, c - dcol]`` where that index exists and ``fill``
    elsewhere.
    """
    arr = np.asarray(mask)
    out = np.full_like(arr, fill)
    rows, cols = arr.shape

    src_r = slice(max(0, -drow), rows - max(0, drow))
    src_c = slice(max(0, -dcol), cols - max(0, dcol))
    dst_r = slice(max(0, drow), rows - max(0, -drow))
    dst_c = slice(max(0, dcol), cols - max(0, -dcol))
    if src_r.start < src_r.stop and src_c.start < src_c.stop:
        out[dst_r, dst_c] = arr[src_r, src_c]
    return out


def count_neighbors(
    mask: np.ndarray,
    connectivity: int = 8,
    outside_is_set: bool = False,
) -> np.ndarray:
    """Count set neighbours of every pixel.

    Parameters
    ----------
    mask:
        Binary mask.
    connectivity:
        4 or 8, selecting the neighbourhood.
    outside_is_set:
        How to treat neighbours that fall outside the image.  The
        paper's noise-removal step implicitly treats the border as
        empty (``False``), which is the default.

    Returns
    -------
    Integer array of the same shape with values in ``[0, connectivity]``.
    """
    mask = ensure_mask(mask)
    if connectivity == 4:
        offsets = OFFSETS_4
    elif connectivity == 8:
        offsets = OFFSETS_8
    else:
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")

    counts = np.zeros(mask.shape, dtype=np.int32)
    for drow, dcol in offsets:
        counts += shift(mask, drow, dcol, fill=outside_is_set)
    return counts


def remove_noise_pixels(mask: np.ndarray, min_neighbors: int = 4) -> np.ndarray:
    """Paper Step 3: drop foreground pixels with few 8-neighbours.

    A foreground pixel survives only when the number of its eight
    neighbours that are also foreground is **greater than**
    ``min_neighbors`` (strict, as stated in the paper: "if the number
    of neighbors that are not 0 is greater than the threshold, the
    pixel is kept").
    """
    mask = ensure_mask(mask)
    if not 0 <= min_neighbors <= 8:
        raise ValueError(f"min_neighbors must be in [0, 8], got {min_neighbors}")
    counts = count_neighbors(mask, connectivity=8)
    return mask & (counts > min_neighbors)


def fill_single_pixel_holes(mask: np.ndarray, iterations: int = 1) -> np.ndarray:
    """Paper Step 4: set a background pixel whose 4 edge neighbours are set.

    The rule is applied ``iterations`` times; each pass can close holes
    opened up by the previous pass (a 2x1 hole needs two passes).
    """
    mask = ensure_mask(mask)
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    current = mask.copy()
    for _ in range(iterations):
        counts = count_neighbors(current, connectivity=4)
        holes = ~current & (counts == 4)
        if not holes.any():
            break
        current |= holes
    return current
