"""Rasterisation primitives: capsules, disks, polygons, stick overlays.

Everything the synthetic renderer and the stick-model code needs to
turn geometry into pixels.  Coordinates follow the image convention
``(row, col)`` with row 0 at the top; the world → image flip happens in
the callers (:mod:`repro.video.synthesis.render` and
:mod:`repro.model.pose`).
"""

from __future__ import annotations

import numpy as np

from .image import blank_mask, ensure_mask
from ..errors import ImageError


def _pixel_grid(shape: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    rows = np.arange(shape[0], dtype=np.float64)
    cols = np.arange(shape[1], dtype=np.float64)
    return np.meshgrid(rows, cols, indexing="ij")


def _clip_box(
    shape: tuple[int, int],
    row_lo: float,
    row_hi: float,
    col_lo: float,
    col_hi: float,
) -> tuple[slice, slice] | None:
    r0 = max(int(np.floor(row_lo)), 0)
    r1 = min(int(np.ceil(row_hi)) + 1, shape[0])
    c0 = max(int(np.floor(col_lo)), 0)
    c1 = min(int(np.ceil(col_hi)) + 1, shape[1])
    if r0 >= r1 or c0 >= c1:
        return None
    return slice(r0, r1), slice(c0, c1)


def segment_distance_field(
    shape: tuple[int, int],
    start: tuple[float, float],
    end: tuple[float, float],
) -> np.ndarray:
    """Distance of every pixel centre to the segment ``start``–``end``.

    Points are ``(row, col)`` floats.  Degenerate segments reduce to
    point distance.
    """
    rr, cc = _pixel_grid(shape)
    return _segment_distance(rr, cc, start, end)


def _segment_distance(
    rr: np.ndarray,
    cc: np.ndarray,
    start: tuple[float, float],
    end: tuple[float, float],
) -> np.ndarray:
    r0, c0 = start
    r1, c1 = end
    dr, dc = r1 - r0, c1 - c0
    length_sq = dr * dr + dc * dc
    if length_sq == 0.0:
        return np.hypot(rr - r0, cc - c0)
    t = ((rr - r0) * dr + (cc - c0) * dc) / length_sq
    t = np.clip(t, 0.0, 1.0)
    return np.hypot(rr - (r0 + t * dr), cc - (c0 + t * dc))


def draw_capsule(
    mask: np.ndarray,
    start: tuple[float, float],
    end: tuple[float, float],
    radius: float,
) -> np.ndarray:
    """Set pixels within ``radius`` of the segment (a stadium shape).

    Returns the same array, modified in place, for chaining.
    """
    mask = ensure_mask(mask)
    if radius < 0:
        raise ImageError(f"capsule radius must be >= 0, got {radius}")
    row_lo = min(start[0], end[0]) - radius
    row_hi = max(start[0], end[0]) + radius
    col_lo = min(start[1], end[1]) - radius
    col_hi = max(start[1], end[1]) + radius
    box = _clip_box(mask.shape, row_lo, row_hi, col_lo, col_hi)
    if box is None:
        return mask
    rs, cs = box
    rr, cc = np.meshgrid(
        np.arange(rs.start, rs.stop, dtype=np.float64),
        np.arange(cs.start, cs.stop, dtype=np.float64),
        indexing="ij",
    )
    dist = _segment_distance(rr, cc, start, end)
    mask[rs, cs] |= dist <= radius
    return mask


def draw_disk(mask: np.ndarray, center: tuple[float, float], radius: float) -> np.ndarray:
    """Set pixels within ``radius`` of ``center`` (in place)."""
    return draw_capsule(mask, center, center, radius)


def draw_line(
    mask: np.ndarray,
    start: tuple[float, float],
    end: tuple[float, float],
    thickness: float = 1.0,
) -> np.ndarray:
    """Draw a line of the given total thickness (capsule of radius t/2)."""
    return draw_capsule(mask, start, end, max(thickness, 1.0) / 2.0)


def draw_polygon(mask: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Fill a simple polygon given ``(N, 2)`` vertices in (row, col).

    Uses the even–odd rule on pixel centres.  The polygon is closed
    automatically.  Modifies ``mask`` in place and returns it.
    """
    mask = ensure_mask(mask)
    verts = np.asarray(vertices, dtype=np.float64)
    if verts.ndim != 2 or verts.shape[1] != 2 or verts.shape[0] < 3:
        raise ImageError(
            f"polygon vertices must have shape (N>=3, 2), got {verts.shape}"
        )
    box = _clip_box(
        mask.shape,
        verts[:, 0].min(),
        verts[:, 0].max(),
        verts[:, 1].min(),
        verts[:, 1].max(),
    )
    if box is None:
        return mask
    rs, cs = box
    rr, cc = np.meshgrid(
        np.arange(rs.start, rs.stop, dtype=np.float64),
        np.arange(cs.start, cs.stop, dtype=np.float64),
        indexing="ij",
    )
    inside = np.zeros(rr.shape, dtype=bool)
    n = verts.shape[0]
    for i in range(n):
        r0, c0 = verts[i]
        r1, c1 = verts[(i + 1) % n]
        if r0 == r1:
            continue
        crosses = ((r0 <= rr) & (rr < r1)) | ((r1 <= rr) & (rr < r0))
        with np.errstate(divide="ignore", invalid="ignore"):
            col_at = c0 + (rr - r0) * (c1 - c0) / (r1 - r0)
        inside ^= crosses & (cc < col_at)
    mask[rs, cs] |= inside
    return mask


def paint_mask(
    image: np.ndarray,
    mask: np.ndarray,
    color: tuple[float, float, float],
    opacity: float = 1.0,
) -> np.ndarray:
    """Blend ``color`` over the pixels of ``image`` selected by ``mask``.

    ``image`` is modified in place and returned.
    """
    mask = ensure_mask(mask)
    if image.shape[:2] != mask.shape:
        raise ImageError(
            f"image {image.shape[:2]} and mask {mask.shape} sizes differ"
        )
    if not 0.0 <= opacity <= 1.0:
        raise ImageError(f"opacity must be in [0, 1], got {opacity}")
    color_arr = np.clip(np.asarray(color, dtype=np.float64), 0.0, 1.0)
    image[mask] = (1.0 - opacity) * image[mask] + opacity * color_arr
    return image


def stick_figure_mask(
    shape: tuple[int, int],
    segments: list[tuple[tuple[float, float], tuple[float, float]]],
    thickness: float = 2.0,
) -> np.ndarray:
    """Rasterise a list of (row, col) segments into a fresh mask."""
    mask = blank_mask(*shape)
    for start, end in segments:
        draw_line(mask, start, end, thickness=thickness)
    return mask
