"""Global translation estimation and video stabilisation.

The paper assumes a fixed camera; a handheld camera breaks Step 1
(every pixel "changes" between frames).  Phase correlation recovers
the integer per-frame translation so the sequence can be stabilised
before background estimation.

Implemented from scratch on ``numpy.fft``: the normalised cross-power
spectrum of two frames has its inverse-FFT peak at the translation.
"""

from __future__ import annotations

import numpy as np

from .image import ensure_gray, rgb_to_gray
from ..errors import ImageError


def _as_gray(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image)
    if arr.ndim == 3:
        return rgb_to_gray(arr)
    return ensure_gray(arr)


def estimate_translation(
    reference: np.ndarray,
    moved: np.ndarray,
    max_shift: int | None = 8,
    method: str = "search",
) -> tuple[int, int]:
    """Integer ``(drow, dcol)`` such that shifting ``moved`` by it
    aligns it with ``reference``.

    Two estimators:

    * ``"search"`` (default) — exhaustive integer search over
      ``[-max_shift, max_shift]²`` minimising the mean squared
      difference of the overlapping region.  Robust on low-texture
      scenes (a gym wall) where phase correlation's full spectral
      whitening amplifies noise.
    * ``"phase"`` — classical phase correlation via the FFT.
    """
    ref = _as_gray(reference)
    mov = _as_gray(moved)
    if ref.shape != mov.shape:
        raise ImageError(
            f"frames must share a shape, got {ref.shape} vs {mov.shape}"
        )
    if method == "search":
        if max_shift is None or max_shift < 0:
            raise ImageError("search method needs max_shift >= 0")
        return _search_translation(ref, mov, max_shift)
    if method == "phase":
        return _phase_translation(ref, mov, max_shift)
    raise ImageError(f"method must be 'search' or 'phase', got {method!r}")


def _search_translation(
    ref: np.ndarray, mov: np.ndarray, max_shift: int
) -> tuple[int, int]:
    rows, cols = ref.shape
    if 2 * max_shift >= min(rows, cols):
        raise ImageError(
            f"max_shift {max_shift} too large for {rows}x{cols} frames"
        )
    best = (0, 0)
    best_score = np.inf
    for drow in range(-max_shift, max_shift + 1):
        for dcol in range(-max_shift, max_shift + 1):
            # Shifting mov by (drow, dcol): mov[r - drow, c - dcol]
            # overlaps ref[r, c]; compare the valid windows.
            ref_window = ref[
                max(drow, 0) : rows + min(drow, 0),
                max(dcol, 0) : cols + min(dcol, 0),
            ]
            mov_window = mov[
                max(-drow, 0) : rows + min(-drow, 0),
                max(-dcol, 0) : cols + min(-dcol, 0),
            ]
            diff = ref_window - mov_window
            score = float((diff * diff).mean())
            if score < best_score:
                best_score = score
                best = (drow, dcol)
    return best


def _phase_translation(
    ref: np.ndarray, mov: np.ndarray, max_shift: int | None
) -> tuple[int, int]:
    ref_fft = np.fft.fft2(ref - ref.mean())
    mov_fft = np.fft.fft2(mov - mov.mean())
    cross = ref_fft * np.conj(mov_fft)
    magnitude = np.abs(cross)
    magnitude[magnitude < 1e-12] = 1e-12
    correlation = np.real(np.fft.ifft2(cross / magnitude))

    if max_shift is not None:
        if max_shift < 0:
            raise ImageError(f"max_shift must be >= 0, got {max_shift}")
        mask = np.zeros_like(correlation, dtype=bool)
        mask[: max_shift + 1, : max_shift + 1] = True
        mask[: max_shift + 1, -max_shift:] = max_shift > 0
        mask[-max_shift:, : max_shift + 1] = max_shift > 0
        mask[-max_shift:, -max_shift:] = max_shift > 0
        correlation = np.where(mask, correlation, -np.inf)

    peak = np.unravel_index(int(np.argmax(correlation)), correlation.shape)
    drow = int(peak[0])
    dcol = int(peak[1])
    # FFT indices wrap: large indices mean negative shifts.
    if drow > ref.shape[0] // 2:
        drow -= ref.shape[0]
    if dcol > ref.shape[1] // 2:
        dcol -= ref.shape[1]
    return drow, dcol


def shift_image(image: np.ndarray, drow: int, dcol: int) -> np.ndarray:
    """Translate an image by integer offsets with edge replication."""
    arr = np.asarray(image)
    out = arr
    if drow > 0:
        out = np.concatenate([out[:1].repeat(drow, axis=0), out[:-drow]], axis=0)
    elif drow < 0:
        out = np.concatenate([out[-drow:], out[-1:].repeat(-drow, axis=0)], axis=0)
    if dcol > 0:
        out = np.concatenate(
            [out[:, :1].repeat(dcol, axis=1), out[:, :-dcol]], axis=1
        )
    elif dcol < 0:
        out = np.concatenate(
            [out[:, -dcol:], out[:, -1:].repeat(-dcol, axis=1)], axis=1
        )
    return out.copy()


def stabilize_frames(
    frames: np.ndarray,
    reference_index: int = 0,
    max_shift: int = 8,
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Align every frame of a ``(T, H, W, C)`` stack to one reference.

    Returns ``(stabilised_frames, offsets)`` where ``offsets[k]`` is
    the ``(drow, dcol)`` applied to frame ``k``.
    """
    stack = np.asarray(frames)
    if stack.ndim != 4:
        raise ImageError(f"expected (T, H, W, C) frames, got {stack.shape}")
    if not 0 <= reference_index < stack.shape[0]:
        raise ImageError(f"reference index {reference_index} out of range")

    reference = stack[reference_index]
    aligned = np.empty_like(stack)
    offsets: list[tuple[int, int]] = []
    for index in range(stack.shape[0]):
        drow, dcol = estimate_translation(
            reference, stack[index], max_shift=max_shift
        )
        aligned[index] = shift_image(stack[index], drow, dcol)
        offsets.append((drow, dcol))
    return aligned, offsets
