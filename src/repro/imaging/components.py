"""Connected-component labelling with union–find (from scratch).

Used by Step 3 of the paper's segmentation pipeline ("smaller spots can
be removed from the scene"): after noise removal, connected foreground
regions below an area threshold are discarded because a human object is
necessarily large.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .image import ensure_mask
from ..types import BoundingBox, mask_bounding_box


class _UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._size: list[int] = []

    def make_set(self) -> int:
        index = len(self._parent)
        self._parent.append(index)
        self._size.append(1)
        return index

    def find(self, index: int) -> int:
        root = index
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[index] != root:
            parent[index], index = root, parent[index]
        return root

    def union(self, a: int, b: int) -> int:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a


def label_components(mask: np.ndarray, connectivity: int = 8) -> tuple[np.ndarray, int]:
    """Label connected foreground regions.

    Returns ``(labels, count)`` where ``labels`` is an int array with 0
    for background and ``1..count`` for each component, numbered in
    raster order of their first pixel.
    """
    mask = ensure_mask(mask)
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")

    rows, cols = mask.shape
    labels = np.zeros((rows, cols), dtype=np.int32)
    uf = _UnionFind()
    # Provisional labels start at 1; slot 0 of the forest is a dummy so
    # provisional label L maps to forest index L - 1.
    next_label = 1

    if connectivity == 4:
        prior = ((-1, 0), (0, -1))
    else:
        prior = ((-1, -1), (-1, 0), (-1, 1), (0, -1))

    fg_rows, fg_cols = np.nonzero(mask)
    for r, c in zip(fg_rows.tolist(), fg_cols.tolist()):
        neighbor_labels = []
        for dr, dc in prior:
            rr, cc = r + dr, c + dc
            if 0 <= rr < rows and 0 <= cc < cols and labels[rr, cc]:
                neighbor_labels.append(labels[rr, cc])
        if not neighbor_labels:
            uf.make_set()
            labels[r, c] = next_label
            next_label += 1
        else:
            smallest = min(neighbor_labels)
            labels[r, c] = smallest
            for other in neighbor_labels:
                if other != smallest:
                    uf.union(smallest - 1, other - 1)

    if next_label == 1:
        return labels, 0

    # Second pass: resolve provisional labels to compact final labels.
    roots = np.array([uf.find(i) for i in range(next_label - 1)], dtype=np.int32)
    unique_roots, compact = np.unique(roots, return_inverse=True)
    remap = np.zeros(next_label, dtype=np.int32)
    remap[1:] = compact + 1
    labels = remap[labels]
    return labels, len(unique_roots)


@dataclass(frozen=True, slots=True)
class Component:
    """Summary of one connected component."""

    label: int
    area: int
    bbox: BoundingBox
    centroid: tuple[float, float]  # (row, col)


def component_stats(labels: np.ndarray, count: int) -> list[Component]:
    """Compute area, bounding box and centroid for each component."""
    stats: list[Component] = []
    for label in range(1, count + 1):
        mask = labels == label
        area = int(mask.sum())
        if area == 0:
            continue
        bbox = mask_bounding_box(mask)
        assert bbox is not None
        rows, cols = np.nonzero(mask)
        stats.append(
            Component(
                label=label,
                area=area,
                bbox=bbox,
                centroid=(float(rows.mean()), float(cols.mean())),
            )
        )
    return stats


def remove_small_components(
    mask: np.ndarray,
    min_area: int,
    connectivity: int = 8,
) -> np.ndarray:
    """Drop connected regions smaller than ``min_area`` pixels.

    This is the "smaller spots can be removed" part of the paper's
    Step 3.
    """
    mask = ensure_mask(mask)
    if min_area <= 1:
        return mask.copy()
    labels, count = label_components(mask, connectivity=connectivity)
    if count == 0:
        return mask.copy()
    areas = np.bincount(labels.ravel(), minlength=count + 1)
    keep = areas >= min_area
    keep[0] = False
    return keep[labels]


def largest_component(mask: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """Keep only the largest connected region (empty mask stays empty)."""
    mask = ensure_mask(mask)
    labels, count = label_components(mask, connectivity=connectivity)
    if count == 0:
        return np.zeros_like(mask)
    areas = np.bincount(labels.ravel(), minlength=count + 1)
    areas[0] = 0
    return labels == int(areas.argmax())


def top_n_components(
    mask: np.ndarray,
    n: int,
    min_area: int = 1,
    connectivity: int = 8,
) -> list[np.ndarray]:
    """The ``n`` largest connected regions, one boolean mask each.

    Regions below ``min_area`` pixels are never returned.  Ordering is
    deterministic: area descending, ties broken by label order — and
    labels are assigned in raster order of each region's first pixel
    (see :func:`label_components`), so two equal-area regions always
    come back top-to-bottom, left-to-right.  This is what multi-actor
    segmentation builds its per-actor silhouette candidates from.
    """
    mask = ensure_mask(mask)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    labels, count = label_components(mask, connectivity=connectivity)
    if count == 0:
        return []
    areas = np.bincount(labels.ravel(), minlength=count + 1)
    ranked = sorted(
        (label for label in range(1, count + 1) if areas[label] >= max(min_area, 1)),
        key=lambda label: (-areas[label], label),
    )
    return [labels == label for label in ranked[:n]]


def dominant_components(
    mask: np.ndarray,
    keep_fraction: float = 0.3,
    connectivity: int = 8,
) -> np.ndarray:
    """Keep every region at least ``keep_fraction`` of the largest one.

    A cleanup step can sever one object into a few big parts (e.g. a
    fully extended jumper cut at a thin junction); keeping only the
    single largest region would then drop half the person.  Small
    debris stays excluded because it is far below the fraction.
    """
    mask = ensure_mask(mask)
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    labels, count = label_components(mask, connectivity=connectivity)
    if count == 0:
        return np.zeros_like(mask)
    areas = np.bincount(labels.ravel(), minlength=count + 1)
    areas[0] = 0
    keep = areas >= keep_fraction * areas.max()
    keep[0] = False
    return keep[labels]
