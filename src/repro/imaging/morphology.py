"""Binary morphology implemented from scratch on boolean masks.

The paper's cleanup steps are neighbour-count rules
(:mod:`repro.imaging.neighbors`), but classical morphology is used by
the synthetic-data generator and the evaluation code (e.g. dilating a
silhouette to build a containment margin).  Structuring elements are
boolean arrays with odd side lengths; the default is the 3x3 box.
"""

from __future__ import annotations

import numpy as np

from .image import ensure_mask
from .neighbors import shift
from ..errors import ImageError


def box_element(size: int = 3) -> np.ndarray:
    """A ``size`` x ``size`` all-ones structuring element."""
    if size < 1 or size % 2 == 0:
        raise ImageError(f"structuring element size must be odd and >= 1, got {size}")
    return np.ones((size, size), dtype=bool)


def cross_element(size: int = 3) -> np.ndarray:
    """A plus-shaped (4-connected) structuring element."""
    if size < 1 or size % 2 == 0:
        raise ImageError(f"structuring element size must be odd and >= 1, got {size}")
    element = np.zeros((size, size), dtype=bool)
    mid = size // 2
    element[mid, :] = True
    element[:, mid] = True
    return element


def disk_element(radius: int) -> np.ndarray:
    """A discrete disk of the given radius (Euclidean metric)."""
    if radius < 0:
        raise ImageError(f"disk radius must be >= 0, got {radius}")
    coords = np.arange(-radius, radius + 1)
    rr, cc = np.meshgrid(coords, coords, indexing="ij")
    return rr * rr + cc * cc <= radius * radius


def _element_offsets(element: np.ndarray) -> list[tuple[int, int]]:
    element = ensure_mask(element, name="structuring element")
    if element.shape[0] % 2 == 0 or element.shape[1] % 2 == 0:
        raise ImageError(
            f"structuring element sides must be odd, got {element.shape}"
        )
    center_r = element.shape[0] // 2
    center_c = element.shape[1] // 2
    rows, cols = np.nonzero(element)
    return [(int(r - center_r), int(c - center_c)) for r, c in zip(rows, cols)]


def dilate(mask: np.ndarray, element: np.ndarray | None = None, iterations: int = 1) -> np.ndarray:
    """Binary dilation: union of the mask shifted by each element offset."""
    mask = ensure_mask(mask)
    offsets = _element_offsets(element if element is not None else box_element())
    current = mask
    for _ in range(max(iterations, 0)):
        result = np.zeros_like(current)
        for drow, dcol in offsets:
            result |= shift(current, drow, dcol, fill=False)
        current = result
    return current


def erode(
    mask: np.ndarray,
    element: np.ndarray | None = None,
    iterations: int = 1,
    border_value: bool = False,
) -> np.ndarray:
    """Binary erosion: intersection of the mask shifted by each offset.

    ``border_value`` is how pixels outside the image count; the default
    (False) erodes the border, while True treats the outside as
    foreground — which is what makes :func:`closing` extensive.
    """
    mask = ensure_mask(mask)
    offsets = _element_offsets(element if element is not None else box_element())
    current = mask
    for _ in range(max(iterations, 0)):
        result = np.ones_like(current)
        for drow, dcol in offsets:
            result &= shift(current, drow, dcol, fill=border_value)
        current = result
    return current


def opening(mask: np.ndarray, element: np.ndarray | None = None) -> np.ndarray:
    """Erosion followed by dilation; removes small protrusions."""
    element = element if element is not None else box_element()
    return dilate(erode(mask, element), element)


def closing(mask: np.ndarray, element: np.ndarray | None = None) -> np.ndarray:
    """Dilation followed by erosion; closes small gaps.

    The erosion treats the outside as foreground so closing is
    extensive (never removes a foreground pixel) even at the border.
    """
    element = element if element is not None else box_element()
    return erode(dilate(mask, element), element, border_value=True)


def boundary(mask: np.ndarray, connectivity: int = 4) -> np.ndarray:
    """Inner boundary: mask pixels with at least one background neighbour."""
    mask = ensure_mask(mask)
    element = cross_element() if connectivity == 4 else box_element()
    return mask & ~erode(mask, element)
