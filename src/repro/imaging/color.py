"""RGB ↔ HSV colour-space conversion, implemented from scratch.

The shadow-removal step of the paper (Section 2, Eqs. 1–2) operates in
Hue–Saturation–Value space with hue measured in **degrees** on the
circle ``[0, 360)``.  Saturation and value are in ``[0, 1]``.

The conversion follows the standard hexcone model:

* ``V = max(R, G, B)``
* ``S = (V - min) / V`` (0 when ``V`` is 0)
* ``H`` is a piecewise-linear angle determined by which channel is the
  maximum.
"""

from __future__ import annotations

import numpy as np

from .image import ensure_rgb
from ..errors import ImageError


def rgb_to_hsv(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image in [0, 1] to HSV.

    Returns an array of the same shape where channel 0 is hue in
    degrees ``[0, 360)``, channel 1 is saturation in ``[0, 1]`` and
    channel 2 is value in ``[0, 1]``.
    """
    rgb = ensure_rgb(image)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]

    v = rgb.max(axis=-1)
    c_min = rgb.min(axis=-1)
    chroma = v - c_min

    hue = np.zeros_like(v)
    nonzero = chroma > 0
    # Piecewise hue: 60 degrees per hexcone face.
    with np.errstate(divide="ignore", invalid="ignore"):
        r_max = nonzero & (v == r)
        hue[r_max] = 60.0 * ((g[r_max] - b[r_max]) / chroma[r_max])
        g_max = nonzero & (v == g) & ~r_max
        hue[g_max] = 60.0 * (2.0 + (b[g_max] - r[g_max]) / chroma[g_max])
        b_max = nonzero & ~r_max & ~g_max
        hue[b_max] = 60.0 * (4.0 + (r[b_max] - g[b_max]) / chroma[b_max])
    hue = np.mod(hue, 360.0)

    saturation = np.zeros_like(v)
    v_pos = v > 0
    saturation[v_pos] = chroma[v_pos] / v[v_pos]

    return np.stack([hue, saturation, v], axis=-1)


def hsv_to_rgb(image: np.ndarray) -> np.ndarray:
    """Convert an HSV image (hue in degrees) back to RGB in [0, 1]."""
    hsv = np.asarray(image, dtype=np.float64)
    if hsv.ndim != 3 or hsv.shape[2] != 3:
        raise ImageError(f"HSV image must have shape (H, W, 3), got {hsv.shape}")
    hue = np.mod(hsv[..., 0], 360.0)
    saturation = np.clip(hsv[..., 1], 0.0, 1.0)
    value = np.clip(hsv[..., 2], 0.0, 1.0)

    sector = hue / 60.0
    i = np.floor(sector).astype(int) % 6
    fraction = sector - np.floor(sector)

    p = value * (1.0 - saturation)
    q = value * (1.0 - saturation * fraction)
    t = value * (1.0 - saturation * (1.0 - fraction))

    rgb = np.zeros_like(hsv)
    # Each hexcone sector maps (v, t, p, q) to channels differently.
    lookup = [
        (value, t, p),
        (q, value, p),
        (p, value, t),
        (p, q, value),
        (t, p, value),
        (value, p, q),
    ]
    for sector_index, (red, green, blue) in enumerate(lookup):
        sel = i == sector_index
        rgb[..., 0][sel] = red[sel]
        rgb[..., 1][sel] = green[sel]
        rgb[..., 2][sel] = blue[sel]
    return np.clip(rgb, 0.0, 1.0)


def hue_distance(hue_a: np.ndarray, hue_b: np.ndarray) -> np.ndarray:
    """Angular distance between hues in degrees (Eq. 2 of the paper).

    ``DH = min(|Ha - Hb|, 360 - |Ha - Hb|)`` — the shorter way around
    the hue circle, always in ``[0, 180]``.
    """
    diff = np.abs(np.asarray(hue_a, dtype=np.float64) - np.asarray(hue_b, dtype=np.float64))
    diff = np.mod(diff, 360.0)
    return np.minimum(diff, 360.0 - diff)
