"""Image-processing substrate implemented from scratch on numpy.

Everything the paper's Section 2 pipeline needs — colour conversion,
neighbour counting, morphology, connected components, hole filling,
rasterisation, distance transforms, metrics, and simple file I/O.
"""

from .color import hsv_to_rgb, hue_distance, rgb_to_hsv
from .components import (
    Component,
    component_stats,
    label_components,
    largest_component,
    remove_small_components,
    top_n_components,
)
from .draw import (
    draw_capsule,
    draw_disk,
    draw_line,
    draw_polygon,
    paint_mask,
    segment_distance_field,
    stick_figure_mask,
)
from .filters import box_blur, gaussian_blur, gaussian_kernel, median_filter
from .holes import fill_holes, fill_single_pixel_holes, hole_mask
from .image import (
    blank_mask,
    blank_rgb,
    ensure_gray,
    ensure_mask,
    ensure_rgb,
    ensure_same_shape,
    rgb_to_gray,
    to_uint8,
)
from .metrics import (
    ConfusionCounts,
    confusion,
    f1_score,
    iou,
    mean_absolute_error,
    rmse,
    shadow_detection_rates,
)
from .morphology import (
    boundary,
    box_element,
    closing,
    cross_element,
    dilate,
    disk_element,
    erode,
    opening,
)
from .neighbors import (
    OFFSETS_4,
    OFFSETS_8,
    count_neighbors,
    remove_noise_pixels,
    shift,
)
from .registration import estimate_translation, shift_image, stabilize_frames
from .threshold import otsu_binarize, otsu_threshold
from .resize import (
    resize_bilinear,
    resize_mask,
    resize_nearest,
    resize_video_frames,
)
from .transform import chamfer_distance, euclidean_distance_exact, signed_distance
from .io import (
    load_masks_npz,
    read_pgm,
    read_ppm,
    save_masks_npz,
    write_mask_pgm,
    write_pgm,
    write_ppm,
)

__all__ = [
    "rgb_to_hsv",
    "hsv_to_rgb",
    "hue_distance",
    "Component",
    "component_stats",
    "label_components",
    "largest_component",
    "top_n_components",
    "remove_small_components",
    "draw_capsule",
    "draw_disk",
    "draw_line",
    "draw_polygon",
    "paint_mask",
    "segment_distance_field",
    "stick_figure_mask",
    "box_blur",
    "gaussian_blur",
    "gaussian_kernel",
    "median_filter",
    "fill_holes",
    "fill_single_pixel_holes",
    "hole_mask",
    "blank_mask",
    "blank_rgb",
    "ensure_gray",
    "ensure_mask",
    "ensure_rgb",
    "ensure_same_shape",
    "rgb_to_gray",
    "to_uint8",
    "ConfusionCounts",
    "confusion",
    "f1_score",
    "iou",
    "mean_absolute_error",
    "rmse",
    "shadow_detection_rates",
    "boundary",
    "box_element",
    "closing",
    "cross_element",
    "dilate",
    "disk_element",
    "erode",
    "opening",
    "OFFSETS_4",
    "OFFSETS_8",
    "count_neighbors",
    "remove_noise_pixels",
    "shift",
    "estimate_translation",
    "shift_image",
    "stabilize_frames",
    "otsu_binarize",
    "otsu_threshold",
    "resize_bilinear",
    "resize_mask",
    "resize_nearest",
    "resize_video_frames",
    "chamfer_distance",
    "euclidean_distance_exact",
    "signed_distance",
    "load_masks_npz",
    "read_pgm",
    "read_ppm",
    "save_masks_npz",
    "write_mask_pgm",
    "write_pgm",
    "write_ppm",
]
