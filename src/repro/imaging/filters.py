"""Smoothing filters used by the synthetic scene generator.

Implemented from scratch with separable passes and edge replication, so
the library has no dependency on an image-processing package.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError


def _replicate_pad_1d(array: np.ndarray, pad: int, axis: int) -> np.ndarray:
    return np.pad(
        array,
        [(pad, pad) if ax == axis else (0, 0) for ax in range(array.ndim)],
        mode="edge",
    )


def _convolve_axis(array: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """1-D correlation along ``axis`` with replicated edges."""
    pad = kernel.size // 2
    padded = _replicate_pad_1d(array.astype(np.float64, copy=False), pad, axis)
    out = np.zeros_like(array, dtype=np.float64)
    for offset, weight in enumerate(kernel):
        sl = [slice(None)] * array.ndim
        sl[axis] = slice(offset, offset + array.shape[axis])
        out += weight * padded[tuple(sl)]
    return out


def box_kernel(size: int) -> np.ndarray:
    """Uniform averaging kernel of odd ``size``."""
    if size < 1 or size % 2 == 0:
        raise ImageError(f"kernel size must be odd and >= 1, got {size}")
    return np.full(size, 1.0 / size)


def gaussian_kernel(sigma: float, truncate: float = 3.0) -> np.ndarray:
    """Normalised 1-D Gaussian kernel truncated at ``truncate`` sigmas."""
    if sigma <= 0:
        raise ImageError(f"sigma must be > 0, got {sigma}")
    radius = max(int(np.ceil(truncate * sigma)), 1)
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


def box_blur(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Separable box blur; works on (H, W) or (H, W, C) arrays."""
    kernel = box_kernel(size)
    out = _convolve_axis(np.asarray(image), kernel, axis=0)
    return _convolve_axis(out, kernel, axis=1)


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur; works on (H, W) or (H, W, C) arrays."""
    kernel = gaussian_kernel(sigma)
    out = _convolve_axis(np.asarray(image), kernel, axis=0)
    return _convolve_axis(out, kernel, axis=1)


def median_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Median filter on a 2-D array via stacked shifted views."""
    if size < 1 or size % 2 == 0:
        raise ImageError(f"kernel size must be odd and >= 1, got {size}")
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ImageError(f"median_filter expects a 2-D array, got {arr.shape}")
    pad = size // 2
    padded = np.pad(arr, pad, mode="edge")
    windows = np.empty((size * size,) + arr.shape, dtype=np.float64)
    index = 0
    for dr in range(size):
        for dc in range(size):
            windows[index] = padded[dr : dr + arr.shape[0], dc : dc + arr.shape[1]]
            index += 1
    return np.median(windows, axis=0)
