"""Pixel-level evaluation metrics for segmentation quality.

The paper assesses its figures visually ("the result for human
segmentation is quite successful"); the benchmark harness quantifies
the same comparisons with the standard detection metrics below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .image import ensure_mask, ensure_same_shape


@dataclass(frozen=True, slots=True)
class ConfusionCounts:
    """Pixel confusion counts of a predicted mask against ground truth."""

    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was predicted."""
        denom = self.true_positive + self.false_positive
        return self.true_positive / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there is nothing to find."""
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    @property
    def iou(self) -> float:
        """Intersection over union (Jaccard); 1.0 for two empty masks."""
        union = self.true_positive + self.false_positive + self.false_negative
        return self.true_positive / union if union else 1.0

    @property
    def accuracy(self) -> float:
        """Fraction of pixels classified correctly."""
        total = (
            self.true_positive
            + self.false_positive
            + self.false_negative
            + self.true_negative
        )
        return (self.true_positive + self.true_negative) / total if total else 1.0


def confusion(predicted: np.ndarray, truth: np.ndarray) -> ConfusionCounts:
    """Compute pixel confusion counts between two masks."""
    predicted = ensure_mask(predicted, "predicted")
    truth = ensure_mask(truth, "truth")
    ensure_same_shape(predicted, truth, "masks")
    tp = int(np.count_nonzero(predicted & truth))
    fp = int(np.count_nonzero(predicted & ~truth))
    fn = int(np.count_nonzero(~predicted & truth))
    tn = int(np.count_nonzero(~predicted & ~truth))
    return ConfusionCounts(tp, fp, fn, tn)


def iou(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Intersection-over-union of two masks."""
    return confusion(predicted, truth).iou


def f1_score(predicted: np.ndarray, truth: np.ndarray) -> float:
    """F1 of two masks."""
    return confusion(predicted, truth).f1


def shadow_detection_rates(
    predicted_shadow: np.ndarray,
    true_shadow: np.ndarray,
    true_person: np.ndarray,
) -> tuple[float, float]:
    """Shadow-removal quality: (detection rate, discrimination rate).

    Following Prati et al.'s shadow-benchmark convention:

    * **detection rate** — fraction of true shadow pixels classified as
      shadow (higher is better: shadows get removed);
    * **discrimination rate** — fraction of true person pixels *not*
      classified as shadow (higher is better: the person survives).
    """
    predicted_shadow = ensure_mask(predicted_shadow, "predicted_shadow")
    true_shadow = ensure_mask(true_shadow, "true_shadow")
    true_person = ensure_mask(true_person, "true_person")
    ensure_same_shape(predicted_shadow, true_shadow, "shadow masks")
    ensure_same_shape(predicted_shadow, true_person, "masks")

    shadow_total = int(true_shadow.sum())
    detection = (
        int((predicted_shadow & true_shadow).sum()) / shadow_total
        if shadow_total
        else 1.0
    )
    person_total = int(true_person.sum())
    discrimination = (
        int((~predicted_shadow & true_person).sum()) / person_total
        if person_total
        else 1.0
    )
    return detection, discrimination


def mean_absolute_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute per-pixel difference of two images."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ensure_same_shape(a, b, "images")
    return float(np.abs(a - b).mean())


def rmse(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square per-pixel difference of two images."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ensure_same_shape(a, b, "images")
    return float(np.sqrt(((a - b) ** 2).mean()))
