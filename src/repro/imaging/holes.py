"""Hole filling for binary silhouettes.

The paper's Step 4 uses a local 4-neighbour rule
(:func:`repro.imaging.neighbors.fill_single_pixel_holes`).  That rule
only closes holes of one or two pixels; as an extension this module
also provides complete topological hole filling via background flood
fill, which the full pipeline can optionally enable.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .image import ensure_mask
from .neighbors import fill_single_pixel_holes

__all__ = ["fill_single_pixel_holes", "fill_holes", "hole_mask"]


def _background_reachable_from_border(mask: np.ndarray) -> np.ndarray:
    """Flood-fill background from the image border (4-connectivity)."""
    rows, cols = mask.shape
    reachable = np.zeros((rows, cols), dtype=bool)
    queue: deque[tuple[int, int]] = deque()

    for c in range(cols):
        for r in (0, rows - 1):
            if not mask[r, c] and not reachable[r, c]:
                reachable[r, c] = True
                queue.append((r, c))
    for r in range(rows):
        for c in (0, cols - 1):
            if not mask[r, c] and not reachable[r, c]:
                reachable[r, c] = True
                queue.append((r, c))

    while queue:
        r, c = queue.popleft()
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < rows and 0 <= cc < cols:
                if not mask[rr, cc] and not reachable[rr, cc]:
                    reachable[rr, cc] = True
                    queue.append((rr, cc))
    return reachable


def hole_mask(mask: np.ndarray) -> np.ndarray:
    """Background pixels enclosed by foreground (not border-reachable)."""
    mask = ensure_mask(mask)
    return ~mask & ~_background_reachable_from_border(mask)


def fill_holes(mask: np.ndarray) -> np.ndarray:
    """Fill every enclosed background region, regardless of size."""
    mask = ensure_mask(mask)
    return mask | hole_mask(mask)
