"""Automatic thresholding (Otsu's method), from scratch.

The paper's background-subtraction threshold is a hand-tuned constant.
Otsu's method picks the threshold that maximises between-class variance
of the difference-image histogram, removing one magic number from the
pipeline (offered as an option, ablated in the benches).
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError


def otsu_threshold(values: np.ndarray, bins: int = 256) -> float:
    """Otsu's threshold over a sample of values in [0, 1].

    Returns the bin edge that maximises the between-class variance.
    Degenerate inputs (constant values) return the single value itself.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ImageError("cannot threshold an empty array")
    if bins < 2:
        raise ImageError(f"need at least 2 bins, got {bins}")
    lo = float(arr.min())
    hi = float(arr.max())
    if hi - lo < 1e-12:
        return lo

    histogram, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    histogram = histogram.astype(np.float64)
    total = histogram.sum()

    weights_low = np.cumsum(histogram)
    weights_high = total - weights_low
    centers = 0.5 * (edges[:-1] + edges[1:])
    cumulative_mean = np.cumsum(histogram * centers)
    grand_mean = cumulative_mean[-1]

    with np.errstate(divide="ignore", invalid="ignore"):
        mean_low = cumulative_mean / weights_low
        mean_high = (grand_mean - cumulative_mean) / weights_high
        between = weights_low * weights_high * (mean_low - mean_high) ** 2
    between = np.nan_to_num(between, nan=-1.0)
    # The criterion is flat across any empty gap between the classes;
    # take the midpoint of the maximal plateau (the conventional choice)
    # rather than its first bin.
    peak = between.max()
    plateau = np.nonzero(between >= peak - 1e-12)[0]
    best = int(plateau[len(plateau) // 2])
    return float(edges[best + 1])


def otsu_binarize(image: np.ndarray, bins: int = 256) -> np.ndarray:
    """Binarise a grayscale image at its Otsu threshold."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ImageError(f"otsu_binarize expects a 2-D image, got {arr.shape}")
    return arr > otsu_threshold(arr, bins=bins)
