"""Minimal image and mask I/O: binary PGM/PPM plus numpy archives.

Netpbm formats are chosen because they need no codec: P5 (grayscale)
and P6 (RGB) are header + raw bytes.  They let the examples dump frames
that any external viewer can open.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from .image import ensure_gray, ensure_mask, ensure_rgb, to_uint8
from ..errors import ImageError

_HEADER_RE = re.compile(rb"^(P[56])\s+(?:#[^\n]*\s+)*(\d+)\s+(\d+)\s+(\d+)\s")


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write an RGB image (float [0,1] or uint8) as binary PPM (P6)."""
    rgb = to_uint8(ensure_rgb(image))
    height, width = rgb.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        fh.write(rgb.tobytes())


def write_pgm(path: str | Path, image: np.ndarray) -> None:
    """Write a grayscale image (float [0,1] or uint8) as binary PGM (P5)."""
    gray = to_uint8(ensure_gray(image))
    height, width = gray.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        fh.write(gray.tobytes())


def write_mask_pgm(path: str | Path, mask: np.ndarray) -> None:
    """Write a binary mask as a black/white PGM."""
    mask = ensure_mask(mask)
    write_pgm(path, mask.astype(np.float64))


def _read_netpbm(path: str | Path) -> tuple[bytes, int, int, int, bytes]:
    data = Path(path).read_bytes()
    match = _HEADER_RE.match(data)
    if match is None:
        raise ImageError(f"{path} is not a binary PGM/PPM file")
    magic = match.group(1)
    width = int(match.group(2))
    height = int(match.group(3))
    maxval = int(match.group(4))
    if maxval != 255:
        raise ImageError(f"only maxval 255 is supported, got {maxval}")
    return magic, width, height, maxval, data[match.end():]


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM into a float RGB image in [0, 1]."""
    magic, width, height, _, payload = _read_netpbm(path)
    if magic != b"P6":
        raise ImageError(f"{path} is not a P6 PPM file")
    expected = width * height * 3
    if len(payload) < expected:
        raise ImageError(f"{path} is truncated: {len(payload)} < {expected} bytes")
    arr = np.frombuffer(payload[:expected], dtype=np.uint8)
    return arr.reshape(height, width, 3).astype(np.float64) / 255.0


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a binary PGM into a float grayscale image in [0, 1]."""
    magic, width, height, _, payload = _read_netpbm(path)
    if magic != b"P5":
        raise ImageError(f"{path} is not a P5 PGM file")
    expected = width * height
    if len(payload) < expected:
        raise ImageError(f"{path} is truncated: {len(payload)} < {expected} bytes")
    arr = np.frombuffer(payload[:expected], dtype=np.uint8)
    return arr.reshape(height, width).astype(np.float64) / 255.0


def write_png(path: str | Path, image: np.ndarray) -> None:
    """Write an RGB or grayscale image as PNG (stdlib zlib, no deps).

    Accepts float images in [0, 1] (RGB ``(H, W, 3)`` or gray
    ``(H, W)``) or uint8 equivalents.
    """
    import struct
    import zlib

    arr = np.asarray(image)
    if arr.ndim == 2:
        pixels = to_uint8(ensure_gray(arr))[..., None]
        color_type = 0
    elif arr.ndim == 3 and arr.shape[2] == 3:
        pixels = to_uint8(ensure_rgb(arr))
        color_type = 2
    else:
        raise ImageError(f"cannot write PNG for array of shape {arr.shape}")

    height, width = pixels.shape[:2]
    # Each scanline is prefixed with filter type 0 (None).
    raw = b"".join(
        b"\x00" + pixels[row].tobytes() for row in range(height)
    )

    def chunk(tag: bytes, payload: bytes) -> bytes:
        body = tag + payload
        return (
            struct.pack(">I", len(payload))
            + body
            + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)
        )

    header = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    data = (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", header)
        + chunk(b"IDAT", zlib.compress(raw, 6))
        + chunk(b"IEND", b"")
    )
    Path(path).write_bytes(data)


def save_masks_npz(path: str | Path, masks: list[np.ndarray]) -> None:
    """Save a list of boolean masks into one compressed ``.npz``."""
    arrays = {f"mask_{i:04d}": ensure_mask(m) for i, m in enumerate(masks)}
    np.savez_compressed(path, **arrays)


def load_masks_npz(path: str | Path) -> list[np.ndarray]:
    """Load masks written by :func:`save_masks_npz` in order."""
    with np.load(path) as archive:
        keys = sorted(archive.files)
        return [archive[key].astype(bool) for key in keys]
