"""Distance transforms for binary masks, implemented from scratch.

The GA containment check and several evaluation metrics need, for every
pixel, the distance to the nearest foreground (or background) pixel.
Two implementations are provided:

* :func:`chamfer_distance` — the classical two-pass 3–4 chamfer
  transform, O(pixels), accurate to a few percent of the true
  Euclidean distance.
* :func:`euclidean_distance_exact` — brute force against the set of
  source pixels; exact but O(pixels x sources), used in tests and on
  small inputs.
"""

from __future__ import annotations

import numpy as np

from .image import ensure_mask

# Classical 3-4 chamfer weights, normalised so axial steps cost 1.
_AXIAL = 3.0
_DIAGONAL = 4.0
_INF = np.float64(1e12)


def chamfer_distance(mask: np.ndarray, *, to_foreground: bool = True) -> np.ndarray:
    """Two-pass 3–4 chamfer distance transform.

    Parameters
    ----------
    mask:
        Binary mask.
    to_foreground:
        When True (default) the result holds, for every pixel, the
        approximate distance to the nearest True pixel (zero on the
        mask itself).  When False, distance to the nearest False pixel.

    Returns
    -------
    Float array of distances in pixel units.  If no source pixel
    exists, all entries are a large sentinel (> any image diagonal).
    """
    mask = ensure_mask(mask)
    sources = mask if to_foreground else ~mask
    rows, cols = mask.shape

    dist = np.where(sources, 0.0, _INF)

    # Forward pass: top-left to bottom-right.
    for r in range(rows):
        row = dist[r]
        up = dist[r - 1] if r > 0 else None
        if up is not None:
            np.minimum(row, up + _AXIAL, out=row)
            np.minimum(row[1:], up[:-1] + _DIAGONAL, out=row[1:])
            np.minimum(row[:-1], up[1:] + _DIAGONAL, out=row[:-1])
        for c in range(1, cols):
            left = row[c - 1] + _AXIAL
            if left < row[c]:
                row[c] = left

    # Backward pass: bottom-right to top-left.
    for r in range(rows - 1, -1, -1):
        row = dist[r]
        down = dist[r + 1] if r < rows - 1 else None
        if down is not None:
            np.minimum(row, down + _AXIAL, out=row)
            np.minimum(row[1:], down[:-1] + _DIAGONAL, out=row[1:])
            np.minimum(row[:-1], down[1:] + _DIAGONAL, out=row[:-1])
        for c in range(cols - 2, -1, -1):
            right = row[c + 1] + _AXIAL
            if right < row[c]:
                row[c] = right

    return dist / _AXIAL


def euclidean_distance_exact(mask: np.ndarray, *, to_foreground: bool = True) -> np.ndarray:
    """Exact Euclidean distance by brute force (small inputs only)."""
    mask = ensure_mask(mask)
    sources = mask if to_foreground else ~mask
    src_r, src_c = np.nonzero(sources)
    rows, cols = mask.shape
    if src_r.size == 0:
        return np.full((rows, cols), float(_INF / _AXIAL))
    rr, cc = np.meshgrid(
        np.arange(rows, dtype=np.float64),
        np.arange(cols, dtype=np.float64),
        indexing="ij",
    )
    dr = rr[..., None] - src_r[None, None, :]
    dc = cc[..., None] - src_c[None, None, :]
    return np.sqrt(dr * dr + dc * dc).min(axis=-1)


def signed_distance(mask: np.ndarray) -> np.ndarray:
    """Signed chamfer distance: negative inside the mask, positive outside."""
    mask = ensure_mask(mask)
    outside = chamfer_distance(mask, to_foreground=True)
    inside = chamfer_distance(mask, to_foreground=False)
    return np.where(mask, -inside, outside)
