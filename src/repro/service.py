"""A minimal jump-analysis web service (stdlib only).

The paper's future work: "we would also like to build a web-based
system on the Internet.  The user will be able to upload a video
sequence of a standing long jump ... the system will be able to
respond with advices to the user."  This module implements that
service over the library.

The HTTP surface is versioned: every endpoint lives under ``/v1/``,
and the original unversioned paths are served as deprecated aliases —
same handler, same body, plus a ``Deprecation: true`` response header.
The full route table (:data:`ROUTES`) is part of the public API and
snapshot-tested.

* ``POST /v1/analyze`` — body is a JSON object
  ``{"video_npz_b64": <base64 of a compressed .npz with a 'frames'
  array>, "annotation": <optional annotation dict>, "seed": <int>}``;
  the response is the serialised analysis (report, advice, poses,
  events, measurement).
* ``POST /v1/analyze/batch`` — body is ``{"videos": [<analyze items>],
  "config"/"preset"/"seed": ...}``; all items share one resolved
  analyzer, one concurrency slot and one deadline, and fan out across
  the shared worker pool.
* ``POST /v1/jobs`` — the same body as ``/v1/analyze``, but the
  response is **202 Accepted** with a job id *before* the analysis
  runs.  The job executes on the shared worker pool; its per-stage
  progress is visible while it runs and it can be cancelled
  cooperatively between pipeline stages (:mod:`repro.jobs`).
* ``POST /v1/jobs`` with ``{"mode": "stream"}`` — open a **streaming**
  job that takes no video up front.  Frames are appended while it runs
  with ``POST /v1/jobs/{id}/frames`` (``{"frames_npz_b64": <base64 of
  a compressed .npz chunk with a 'frames' array>}``) and the stream is
  closed with ``POST /v1/jobs/{id}/eof``; ``GET /v1/jobs/{id}``
  meanwhile carries a ``stream`` block with the received-frame count
  and the latest provisional state (current pose box, provisional
  takeoff/landing estimate).  The per-job frame queue is bounded:
  chunks that would overflow it answer **429** + ``Retry-After``, and
  a stream that goes idle without ``eof`` fails after the configured
  timeout instead of pinning a worker.  See ``docs/streaming.md``.
* ``GET /v1/jobs`` / ``GET /v1/jobs/{id}`` /
  ``GET /v1/jobs/{id}/result`` / ``DELETE /v1/jobs/{id}`` — bounded
  listing, status+progress polling, result retrieval (structured 410
  after the result TTL), and cancellation.
* ``GET /v1/health`` — liveness probe, with in-flight request count
  and the last analysis error (if any).
* ``GET /v1/standards`` — the Table 1 standards and Table 2 rules.
* ``GET /v1/config`` — the server's fully-resolved default
  configuration, its stable hash, and the known preset names.
* ``GET /v1/version`` — package version, API version, config hash.
* ``GET /v1/metrics`` — cumulative per-stage timings, pipeline
  counters, request counts, analyzer-cache stats, worker-pool
  utilisation, and job-store counters.

Every non-2xx response carries one envelope::

    {"error": {"type": <machine-readable>, "message": <human-readable>,
               "detail": <structured context or null>}}

Malformed requests map to 400, analysable-but-failing videos to 422,
unexpected faults to 500.  The service is hardened against abuse and
overload (:class:`ServiceConfig`): bodies over ``max_body_bytes`` are
refused with 413 before the payload is read; more than
``max_concurrent`` simultaneous analyses are refused with 503 +
``Retry-After``; an analysis that exceeds ``deadline_seconds`` is
answered with 504 (its worker keeps its concurrency slot until it
actually finishes, so zombies cannot oversubscribe the host).  All
analyses — synchronous, batch and jobs — share one bounded
:class:`~repro.perf.pool.WorkerPool` (``pool_workers``), and
per-request analyzers are served from an LRU cache keyed by config
hash + execution backend (``analyzer_cache_size``).  Analyses that
completed through the degradation machinery still return 200, with a
top-level ``"degraded": true`` and a ``"degradation"`` block.

Start a server with :func:`serve` (blocking) or
:class:`ServiceHandle` (background thread, used by the tests and the
example).  The client side lives in :class:`repro.client.ServiceClient`;
the old :func:`request_analysis` helper survives as a deprecated shim.
"""

from __future__ import annotations

import base64
import io
import json
import os
import signal
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

import numpy as np

from .config import (
    config_hash,
    config_to_dict,
    deep_merge,
    get_preset,
    preset_names,
)
from .errors import CircuitOpen, ConfigurationError, ReproError, StreamError
from .jobs import (
    FrameQueueFull,
    JobManager,
    JobQueueFull,
    JobsConfig,
    JobStore,
)
from .perf import shm
from .perf.cache import AnalyzerCache
from .perf.pool import WorkerPool
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .resilience import ServiceLifecycle
from .runtime import Instrumentation, MetricsRegistry
from .profiles import profile_names
from .serialization import (
    analysis_payload,
    annotation_from_dict,
    profiles_payload,
    standards_payload,
)
from .video.sequence import VideoSequence

#: The one API version this server speaks.
API_VERSION = "v1"

#: The complete HTTP surface, versioned.  Unversioned aliases of every
#: route are also served, answering with a ``Deprecation: true``
#: header.  Snapshot-tested in ``tests/test_api_surface.py``.
ROUTES: tuple[tuple[str, str], ...] = (
    ("GET", "/v1/config"),
    ("GET", "/v1/health"),
    ("GET", "/v1/jobs"),
    ("GET", "/v1/jobs/{id}"),
    ("GET", "/v1/jobs/{id}/result"),
    ("GET", "/v1/metrics"),
    ("GET", "/v1/profiles"),
    ("GET", "/v1/standards"),
    ("GET", "/v1/version"),
    ("POST", "/v1/analyze"),
    ("POST", "/v1/analyze/batch"),
    ("POST", "/v1/jobs"),
    ("POST", "/v1/jobs/{id}/eof"),
    ("POST", "/v1/jobs/{id}/frames"),
    ("DELETE", "/v1/jobs/{id}"),
)


def route_table() -> list[str]:
    """The route surface as sorted ``"METHOD /path"`` strings."""
    return sorted(f"{method} {path}" for method, path in ROUTES)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Abuse/overload limits of the analysis service."""

    # Refuse request bodies larger than this (HTTP 413) before reading.
    max_body_bytes: int = 64 * 1024 * 1024
    # Answer 504 when one analysis takes longer than this.
    deadline_seconds: float = 300.0
    # Refuse analyses beyond this many in flight (HTTP 503).
    max_concurrent: int = 4
    # Advisory Retry-After header on 503 responses.
    retry_after_seconds: int = 5
    # Analyses share a bounded worker pool (no thread-per-request); 0
    # sizes it to ``max_concurrent`` so every admitted request starts
    # immediately.
    pool_workers: int = 0
    # LRU capacity of the per-request analyzer cache (distinct resolved
    # configs kept warm).
    analyzer_cache_size: int = 8
    # Upper bound on videos in one ``POST /analyze/batch`` request.
    max_batch_videos: int = 16
    # How long a graceful stop waits for in-flight work before
    # cancelling what is still queued (``stop(drain=True)`` / SIGTERM).
    drain_timeout_seconds: float = 30.0
    # The asynchronous job subsystem (``/v1/jobs``).
    jobs: JobsConfig = field(default_factory=JobsConfig)

    def __post_init__(self) -> None:
        if self.max_body_bytes < 1:
            raise ConfigurationError("service max_body_bytes must be >= 1")
        if self.deadline_seconds <= 0:
            raise ConfigurationError("service deadline_seconds must be > 0")
        if self.max_concurrent < 1:
            raise ConfigurationError("service max_concurrent must be >= 1")
        if self.retry_after_seconds < 0:
            raise ConfigurationError(
                "service retry_after_seconds must be >= 0"
            )
        if self.pool_workers < 0:
            raise ConfigurationError(
                "service pool_workers must be >= 0 (0 = max_concurrent)"
            )
        if self.analyzer_cache_size < 1:
            raise ConfigurationError("service analyzer_cache_size must be >= 1")
        if self.max_batch_videos < 1:
            raise ConfigurationError("service max_batch_videos must be >= 1")
        if self.drain_timeout_seconds < 0:
            raise ConfigurationError(
                "service drain_timeout_seconds must be >= 0"
            )

    @property
    def effective_pool_workers(self) -> int:
        """The worker-pool size actually used."""
        return self.pool_workers or self.max_concurrent


class _ServiceState:
    """Mutable, lock-guarded liveness info shared by all handlers."""

    __slots__ = ("_lock", "in_flight", "last_error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.in_flight = 0
        self.last_error: dict[str, Any] | None = None

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1

    def leave(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def record_error(self, error_type: str, message: str) -> None:
        with self._lock:
            self.last_error = {"type": error_type, "message": message}

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            last = dict(self.last_error) if self.last_error else None
            return {"in_flight": self.in_flight, "last_error": last}


def encode_video(video: VideoSequence) -> str:
    """Encode a video as base64 of a compressed ``.npz`` payload."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, frames=video.frames)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_video(payload_b64: str) -> VideoSequence:
    """Inverse of :func:`encode_video`."""
    try:
        raw = base64.b64decode(payload_b64.encode("ascii"), validate=True)
        with np.load(io.BytesIO(raw)) as archive:
            return VideoSequence(archive["frames"])
    except Exception as exc:  # malformed payloads map to a clean 400
        raise ReproError(f"could not decode video payload: {exc}") from exc


class _BadRequest(Exception):
    """A client error that maps to an HTTP status with a structured payload."""

    def __init__(
        self,
        error_type: str,
        message: str,
        status: int = 400,
        headers: dict[str, str] | None = None,
        detail: Any = None,
    ) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.status = status
        self.headers = headers
        self.detail = detail


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one analyzer instance via the server."""

    server_version = "slj/1.0"

    # Set per-request by _route(): True when the client used an
    # unversioned (deprecated) alias path.
    _deprecated = False

    def _route(self) -> str:
        """Normalise the request path to its unversioned core.

        ``/v1/...`` is the canonical surface; any other prefix is the
        legacy alias and flags the response as deprecated.  The query
        string is parsed into ``self._query``.
        """
        parts = urlsplit(self.path)
        self._query = parse_qs(parts.query)
        path = parts.path
        prefix = f"/{API_VERSION}"
        if path == prefix or path.startswith(prefix + "/"):
            self._deprecated = False
            path = path[len(prefix):] or "/"
        else:
            self._deprecated = True
        return path

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._deprecated:
            self.send_header("Deprecation", "true")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: dict[str, str] | None = None,
        detail: Any = None,
    ) -> None:
        """The one error envelope: ``{"error": {"type", "message", "detail"}}``."""
        self._send_json(
            status,
            {
                "error": {
                    "type": error_type,
                    "message": message,
                    "detail": detail,
                }
            },
            headers=headers,
        )

    def _send_bad_request(self, exc: _BadRequest) -> None:
        self._send_error_json(
            exc.status,
            exc.error_type,
            str(exc),
            headers=exc.headers,
            detail=exc.detail,
        )
        self._finish(exc.status)

    def _finish(self, status: int) -> None:
        self.server.metrics.count_request(  # type: ignore[attr-defined]
            self.path, status
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean

    # ------------------------------------------------------------------
    # GET
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self._route()
        try:
            if path == "/health":
                self._handle_health()
            elif path == "/standards":
                self._send_json(200, standards_payload())
                self._finish(200)
            elif path == "/profiles":
                self._send_json(200, profiles_payload())
                self._finish(200)
            elif path == "/config":
                self._handle_config()
            elif path == "/version":
                self._handle_version()
            elif path == "/metrics":
                self._handle_metrics()
            elif path == "/jobs":
                self._handle_jobs_list()
            elif path.startswith("/jobs/"):
                rest = path[len("/jobs/"):]
                if rest.endswith("/result"):
                    self._handle_job_result(rest[: -len("/result")])
                elif "/" not in rest and rest:
                    self._handle_job_status(rest)
                else:
                    raise _BadRequest(
                        "not_found", f"unknown path {self.path!r}", status=404
                    )
            else:
                raise _BadRequest(
                    "not_found", f"unknown path {self.path!r}", status=404
                )
        except _BadRequest as exc:
            self._send_bad_request(exc)

    def _lifecycle(self) -> ServiceLifecycle:
        return self.server.lifecycle  # type: ignore[attr-defined]

    def _check_not_draining(self) -> None:
        """Refuse new work while the service drains (HTTP 503).

        Only *new* submissions are refused: polling, results, frame
        pushes and ``eof`` for already-admitted streams keep working so
        in-flight jobs can finish.
        """
        if not self._lifecycle().draining:
            return
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        raise _BadRequest(
            "draining",
            "the service is shutting down and no longer accepts new "
            "work; retry against another instance or after restart",
            status=503,
            headers={"Retry-After": str(service_config.retry_after_seconds)},
        )

    def _handle_health(self) -> None:
        state = self.server.state.snapshot()  # type: ignore[attr-defined]
        service_config = self.server.service_config  # type: ignore[attr-defined]
        lifecycle = self._lifecycle()
        draining = lifecycle.draining
        self._send_json(
            200,
            {
                "status": "shutting_down" if draining else "ok",
                "shutting_down": draining,
                "pid": os.getpid(),
                "uptime_seconds": lifecycle.uptime_seconds(),
                "in_flight": state["in_flight"],
                "max_concurrent": service_config.max_concurrent,
                "last_error": state["last_error"],
            },
        )
        self._finish(200)

    def _handle_config(self) -> None:
        config = self.server.analyzer.config  # type: ignore[attr-defined]
        resolved = config_to_dict(config)
        self._send_json(
            200,
            {
                "config": resolved,
                "config_hash": config_hash(resolved),
                "presets": list(preset_names()),
            },
        )
        self._finish(200)

    def _handle_version(self) -> None:
        import repro

        config = self.server.analyzer.config  # type: ignore[attr-defined]
        self._send_json(
            200,
            {
                "package_version": repro.__version__,
                "api_version": API_VERSION,
                "config_hash": config_hash(config_to_dict(config)),
            },
        )
        self._finish(200)

    def _handle_metrics(self) -> None:
        snapshot = self.server.metrics.snapshot()  # type: ignore[attr-defined]
        snapshot["analyzer_cache"] = (
            self.server.analyzer_cache.stats()  # type: ignore[attr-defined]
        )
        state = self.server.state.snapshot()  # type: ignore[attr-defined]
        pool_stats = self.server.pool.stats()  # type: ignore[attr-defined]
        pool_stats["in_flight"] = state["in_flight"]
        snapshot["pool"] = pool_stats
        jobs: JobManager = self.server.jobs  # type: ignore[attr-defined]
        job_stats = jobs.stats()
        snapshot["jobs"] = job_stats
        lifecycle = self._lifecycle()
        snapshot["service"] = {
            # With `--procs N` each worker process answers with its own
            # pid, so a scraper sees which replica served the request.
            "pid": os.getpid(),
            "uptime_seconds": lifecycle.uptime_seconds(),
            "shutting_down": lifecycle.draining,
            "watchdog_timeouts": job_stats.get("watchdog_timeouts", 0),
            "breaker_trips": job_stats.get("breaker", {}).get("trips", 0),
            "resumed_jobs": job_stats.get("resumed", 0),
            "tasks_cancelled_at_shutdown": lifecycle.cancelled_at_shutdown,
            "shm_fallbacks": shm.fallback_count(),
        }
        self._send_json(200, snapshot)
        self._finish(200)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def _jobs_manager(self) -> JobManager:
        manager: JobManager = self.server.jobs  # type: ignore[attr-defined]
        if not manager.config.enabled:
            raise _BadRequest(
                "jobs_disabled",
                "the asynchronous job API is disabled on this server",
                status=503,
            )
        return manager

    def _job_not_found(self, manager: JobManager, job_id: str) -> _BadRequest:
        if manager.is_expired(job_id):
            return _BadRequest(
                "result_expired",
                f"job {job_id!r} finished but its result expired",
                status=410,
            )
        return _BadRequest(
            "job_not_found", f"unknown job {job_id!r}", status=404
        )

    def _handle_jobs_list(self) -> None:
        manager = self._jobs_manager()
        try:
            limit = int(self._query.get("limit", ["50"])[0])
        except (TypeError, ValueError) as exc:
            raise _BadRequest("bad_limit", f"limit must be an integer: {exc}")
        if not 1 <= limit <= 500:
            raise _BadRequest(
                "bad_limit", f"limit must be in [1, 500], got {limit}"
            )
        state = self._query.get("state", [None])[0]
        try:
            jobs = manager.list_payload(limit=limit, state=state)
        except ConfigurationError as exc:
            raise _BadRequest("bad_state", str(exc))
        self._send_json(200, {"jobs": jobs, "count": len(jobs)})
        self._finish(200)

    def _handle_job_status(self, job_id: str) -> None:
        manager = self._jobs_manager()
        payload = manager.payload(job_id)
        if payload is None:
            raise self._job_not_found(manager, job_id)
        self._send_json(200, {"job": payload})
        self._finish(200)

    def _handle_job_result(self, job_id: str) -> None:
        manager = self._jobs_manager()
        payload = manager.payload(job_id, include_result=True)
        if payload is None:
            raise self._job_not_found(manager, job_id)
        analysis = payload.pop("result", None)
        state = payload["state"]
        if state == "succeeded":
            self._send_json(200, {"job": payload, "analysis": analysis})
            self._finish(200)
            return
        if state in ("failed", "cancelled"):
            raise _BadRequest(
                f"job_{state}",
                f"job {job_id!r} {state}; it has no result",
                status=409,
                detail=payload.get("error"),
            )
        raise _BadRequest(
            "job_not_finished",
            f"job {job_id!r} is still {state}; poll GET "
            f"/{API_VERSION}/jobs/{job_id} until it is terminal",
            status=409,
            detail={"state": state, "progress": payload.get("progress")},
        )

    def _circuit_open(self, exc: CircuitOpen) -> _BadRequest:
        """Map a tripped breaker to 503 + its own Retry-After."""
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        metrics.increment("service.jobs.circuit_open")
        return _BadRequest(
            "circuit_open",
            str(exc),
            status=503,
            headers={"Retry-After": str(max(1, int(round(exc.retry_after))))},
        )

    def _handle_jobs_submit(self) -> None:
        manager = self._jobs_manager()
        self._check_not_draining()
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        request = self._read_json_body()
        mode = request.get("mode", "batch")
        if mode == "stream":
            self._handle_stream_submit(manager, request)
            return
        if mode != "batch":
            raise _BadRequest(
                "bad_mode", f"'mode' must be 'batch' or 'stream', got {mode!r}"
            )
        parsed = self._parse_video_item(request)
        analyzer = self._resolve_analyzer(self._parse_config_block(request))
        resolved_hash = config_hash(config_to_dict(analyzer.config))
        digest = JobStore.digest_of(
            str(request.get("video_npz_b64", "")),
            str(parsed["seed"]),
            resolved_hash,
        )
        try:
            payload = manager.submit_analysis(
                analyzer,
                parsed["video"],
                annotation=parsed["annotation"],
                seed=parsed["seed"],
                digest=digest,
                config_hash=resolved_hash,
            )
        except CircuitOpen as exc:
            raise self._circuit_open(exc)
        except JobQueueFull as exc:
            metrics.increment("service.jobs.rejected")
            raise _BadRequest(
                "jobs_queue_full",
                str(exc),
                status=503,
                headers={
                    "Retry-After": str(service_config.retry_after_seconds)
                },
            )
        metrics.increment("service.jobs.submitted")
        self._send_json(
            202,
            {"job": payload},
            headers={"Location": f"/{API_VERSION}/jobs/{payload['id']}"},
        )
        self._finish(202)

    def _handle_stream_submit(
        self, manager: JobManager, request: dict[str, Any]
    ) -> None:
        """``POST /v1/jobs`` with ``"mode": "stream"``: open a stream job."""
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        try:
            annotation = (
                annotation_from_dict(request["annotation"])
                if request.get("annotation")
                else None
            )
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_annotation_payload", str(exc))
        try:
            seed = int(request.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise _BadRequest("bad_seed", f"seed must be an integer: {exc}")
        analyzer = self._resolve_analyzer(self._parse_config_block(request))
        resolved_hash = config_hash(config_to_dict(analyzer.config))
        digest = JobStore.digest_of("stream", str(seed), resolved_hash)
        try:
            payload = manager.submit_stream(
                analyzer,
                annotation=annotation,
                seed=seed,
                digest=digest,
                config_hash=resolved_hash,
            )
        except CircuitOpen as exc:
            raise self._circuit_open(exc)
        except JobQueueFull as exc:
            metrics.increment("service.jobs.rejected")
            raise _BadRequest(
                "jobs_queue_full",
                str(exc),
                status=503,
                headers={
                    "Retry-After": str(service_config.retry_after_seconds)
                },
            )
        metrics.increment("service.jobs.submitted")
        metrics.increment("service.jobs.streams")
        self._send_json(
            202,
            {"job": payload},
            headers={"Location": f"/{API_VERSION}/jobs/{payload['id']}"},
        )
        self._finish(202)

    def _stream_job(self, manager: JobManager, job_id: str) -> dict[str, Any]:
        """A known stream job's payload, or the right :class:`_BadRequest`."""
        if not job_id or "/" in job_id:
            raise _BadRequest(
                "not_found", f"unknown path {self.path!r}", status=404
            )
        payload = manager.payload(job_id)
        if payload is None:
            raise self._job_not_found(manager, job_id)
        if payload.get("mode") != "stream":
            raise _BadRequest(
                "not_a_stream_job",
                f"job {job_id!r} is a batch job; it takes no frames",
                status=409,
            )
        if payload["state"] in ("succeeded", "failed", "cancelled"):
            raise _BadRequest(
                "job_finished",
                f"job {job_id!r} already {payload['state']}; its stream "
                "is closed",
                status=409,
                detail=payload.get("error"),
            )
        return payload

    def _handle_job_frames(self, job_id: str) -> None:
        """``POST /v1/jobs/{id}/frames``: append a chunk to a stream job."""
        manager = self._jobs_manager()
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        self._stream_job(manager, job_id)
        request = self._read_json_body()
        if "frames_npz_b64" not in request:
            raise _BadRequest(
                "missing_field",
                "request is missing the 'frames_npz_b64' field",
            )
        try:
            chunk = decode_video(request["frames_npz_b64"])
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_video_payload", str(exc))
        frames = [chunk.frames[index] for index in range(len(chunk))]
        try:
            result = manager.push_frames(job_id, frames)
        except FrameQueueFull as exc:
            metrics.increment("service.jobs.frames_rejected")
            raise _BadRequest(
                "frame_queue_full",
                str(exc),
                status=429,
                headers={
                    "Retry-After": str(service_config.retry_after_seconds)
                },
            )
        except StreamError as exc:
            raise _BadRequest("stream_closed", str(exc), status=409)
        metrics.increment("service.jobs.frames", len(frames))
        self._send_json(
            202,
            {
                "job": manager.payload(job_id),
                "queued": result["queued"],
                "frames_received": result["frames_received"],
            },
        )
        self._finish(202)

    def _handle_job_eof(self, job_id: str) -> None:
        """``POST /v1/jobs/{id}/eof``: close a stream job's frame feed."""
        manager = self._jobs_manager()
        self._stream_job(manager, job_id)
        try:
            manager.eof(job_id)
        except StreamError as exc:
            raise _BadRequest("stream_closed", str(exc), status=409)
        self._send_json(202, {"job": manager.payload(job_id)})
        self._finish(202)

    def _handle_job_cancel(self, job_id: str) -> None:
        manager = self._jobs_manager()
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        outcome = manager.cancel(job_id)
        if outcome is None:
            raise self._job_not_found(manager, job_id)
        payload = manager.payload(job_id)
        if outcome == "cancelling":
            # The worker owns the token; the cancel lands between stages.
            metrics.increment("service.jobs.cancelled")
            self._send_json(202, {"job": payload, "cancel": outcome})
            self._finish(202)
            return
        if outcome == "cancelled":
            metrics.increment("service.jobs.cancelled")
        # "cancelled" (was still queued) and "finished" (terminal
        # already — cancelling is an idempotent no-op) both answer 200.
        self._send_json(200, {"job": payload, "cancel": outcome})
        self._finish(200)

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    def _drain_body(self, length: int, cap: int = 256 * 1024 * 1024) -> None:
        """Read and discard up to ``min(length, cap)`` body bytes."""
        remaining = min(length, cap)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def _read_json_body(self) -> dict[str, Any]:
        """Read and decode the request body under the size cap."""
        try:
            length = int(self.headers.get("Content-Length", "0") or 0)
        except ValueError:
            raise _BadRequest("bad_content_length", "invalid Content-Length header")
        limit = self.server.service_config.max_body_bytes  # type: ignore[attr-defined]
        if length > limit:
            # Refuse without buffering: the body is drained in fixed
            # chunks and discarded (never held in memory), so the
            # client can finish writing and read the 413 instead of
            # hitting a broken pipe.
            self._drain_body(length)
            # Draining is capped, so part of the body may still sit on
            # the socket: close the connection so request framing stays
            # correct even if keep-alive is ever enabled.
            raise _BadRequest(
                "body_too_large",
                f"request body is {length} bytes; the limit is {limit}",
                status=413,
                headers={"Connection": "close"},
            )
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(
                "malformed_json", f"request body is not valid JSON: {exc}"
            )
        if not isinstance(request, dict):
            raise _BadRequest(
                "malformed_json",
                f"request body must be a JSON object, got {type(request).__name__}",
            )
        return request

    def _resolve_analyzer(self, config: AnalyzerConfig | None) -> JumpAnalyzer:
        """The shared analyzer, or a cached per-config one.

        Built before any concurrency slot is taken: JumpAnalyzer
        performs validation beyond AnalyzerConfig.from_dict (e.g.
        robustness stage names), and a failure must be a structured
        400, never a leaked gate slot.
        """
        if config is None:
            return self.server.analyzer  # type: ignore[attr-defined]
        try:
            return self.server.analyzer_cache.get(  # type: ignore[attr-defined]
                config
            )
        except ConfigurationError as exc:
            raise _BadRequest("bad_config", str(exc))

    def _parse_video_item(
        self, item: dict[str, Any], default_seed: int = 0
    ) -> dict[str, Any]:
        """Validate one video payload (shared by single, batch and jobs)."""
        if "video_npz_b64" not in item:
            raise _BadRequest(
                "missing_field", "request is missing the 'video_npz_b64' field"
            )
        try:
            video = decode_video(item["video_npz_b64"])
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_video_payload", str(exc))
        try:
            annotation = (
                annotation_from_dict(item["annotation"])
                if item.get("annotation")
                else None
            )
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_annotation_payload", str(exc))
        try:
            seed = int(item.get("seed", default_seed))
        except (TypeError, ValueError) as exc:
            raise _BadRequest("bad_seed", f"seed must be an integer: {exc}")
        return {"video": video, "annotation": annotation, "seed": seed}

    def _parse_analyze_request(self) -> dict[str, Any]:
        """Decode and validate the /analyze body; :class:`_BadRequest` on error."""
        request = self._read_json_body()
        parsed = self._parse_video_item(request)
        config = self._parse_config_block(request)
        parsed["analyzer"] = self._resolve_analyzer(config)
        return parsed

    def _parse_config_block(
        self, request: dict[str, Any]
    ) -> AnalyzerConfig | None:
        """Resolve the ``preset`` / ``config`` / ``profile`` request fields.

        Returns ``None`` when the request doesn't customise the
        configuration (the server's shared analyzer is used).
        ``profile`` is first-class shorthand for
        ``{"config": {"profile": ...}}``, validated against the
        movement-profile registry before any analysis starts so an
        unknown name is a structured 400, not a mid-analysis failure.
        """
        preset = request.get("preset")
        overlay = request.get("config")
        profile = request.get("profile")
        if profile is not None:
            if not isinstance(profile, str):
                raise _BadRequest(
                    "bad_config",
                    f"'profile' must be a string, got {profile!r}",
                )
            if profile not in profile_names():
                raise _BadRequest(
                    "unknown_profile",
                    f"unknown movement profile {profile!r}",
                    detail={"valid_profiles": list(profile_names())},
                )
        if preset is None and overlay is None and profile is None:
            return None
        if preset is not None and not isinstance(preset, str):
            raise _BadRequest(
                "bad_config", f"'preset' must be a string, got {preset!r}"
            )
        if overlay is not None and not isinstance(overlay, dict):
            raise _BadRequest(
                "bad_config",
                f"'config' must be an object, got {type(overlay).__name__}",
            )
        try:
            if preset is not None:
                base = get_preset(preset)
            else:
                base = self.server.analyzer.config  # type: ignore[attr-defined]
            resolved = config_to_dict(base)
            if overlay:
                resolved = deep_merge(resolved, overlay)
            if profile is not None:
                # The explicit field wins over a profile buried in the
                # config overlay.
                resolved = deep_merge(resolved, {"profile": profile})
            return AnalyzerConfig.from_dict(resolved)
        except ConfigurationError as exc:
            raise _BadRequest("bad_config", str(exc))

    def _analysis_payload(self, analysis: Any) -> dict[str, Any]:
        """Serialise one successful analysis and record its trace."""
        self.server.metrics.observe_trace(  # type: ignore[attr-defined]
            analysis.trace
        )
        return analysis_payload(analysis)

    def _try_acquire_gate(self) -> bool:
        """One concurrency slot, or a 503 response already sent."""
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        gate: threading.BoundedSemaphore = self.server.gate  # type: ignore[attr-defined]
        if gate.acquire(blocking=False):
            return True
        self._send_error_json(
            503,
            "overloaded",
            f"{service_config.max_concurrent} analyses already in "
            "flight; retry later",
            headers={"Retry-After": str(service_config.retry_after_seconds)},
        )
        self._finish(503)
        return False

    # ------------------------------------------------------------------
    # POST / DELETE
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self._route()
        try:
            if path == "/analyze":
                self._handle_analyze()
            elif path == "/analyze/batch":
                self._handle_analyze_batch()
            elif path == "/jobs":
                self._handle_jobs_submit()
            elif path.startswith("/jobs/"):
                rest = path[len("/jobs/"):]
                if rest.endswith("/frames"):
                    self._handle_job_frames(rest[: -len("/frames")])
                elif rest.endswith("/eof"):
                    self._handle_job_eof(rest[: -len("/eof")])
                else:
                    raise _BadRequest(
                        "not_found", f"unknown path {self.path!r}", status=404
                    )
            else:
                raise _BadRequest(
                    "not_found", f"unknown path {self.path!r}", status=404
                )
        except _BadRequest as exc:
            self._send_bad_request(exc)

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        path = self._route()
        try:
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                if not job_id or "/" in job_id:
                    raise _BadRequest(
                        "not_found", f"unknown path {self.path!r}", status=404
                    )
                self._handle_job_cancel(job_id)
            else:
                raise _BadRequest(
                    "not_found", f"unknown path {self.path!r}", status=404
                )
        except _BadRequest as exc:
            self._send_bad_request(exc)

    def _handle_analyze(self) -> None:
        self._check_not_draining()
        request = self._parse_analyze_request()

        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        state: _ServiceState = self.server.state  # type: ignore[attr-defined]
        gate: threading.BoundedSemaphore = self.server.gate  # type: ignore[attr-defined]
        pool: WorkerPool = self.server.pool  # type: ignore[attr-defined]
        if not self._try_acquire_gate():
            return

        instrumentation = Instrumentation()
        analyzer = request["analyzer"]

        # Run the analysis on the shared worker pool so the handler can
        # enforce the deadline without a thread per request.  The worker
        # owns the concurrency slot: on timeout a zombie analysis keeps
        # it until it actually finishes, so the gate keeps bounding real
        # load.
        result: dict[str, Any] = {}
        state.enter()

        def work() -> None:
            try:
                result["analysis"] = analyzer.analyze(
                    request["video"],
                    annotation=request["annotation"],
                    rng=np.random.default_rng(request["seed"]),
                    instrumentation=instrumentation,
                )
            except BaseException as exc:  # delivered to the handler
                result["error"] = exc
            finally:
                state.leave()
                gate.release()

        future: Future[None] = pool.submit(work)
        try:
            future.result(timeout=service_config.deadline_seconds)
        except FutureTimeout:
            # If the work never started (pool saturated by zombies) the
            # cancel succeeds and its finally never runs — release the
            # slot here.  Otherwise the running worker keeps the slot.
            if future.cancel():
                state.leave()
                gate.release()
            message = (
                "analysis exceeded the "
                f"{service_config.deadline_seconds:g}s deadline"
            )
            state.record_error("deadline_exceeded", message)
            self._send_error_json(504, "deadline_exceeded", message)
            self._finish(504)
            return
        error = result.get("error")
        if isinstance(error, ReproError):
            state.record_error("analysis_failed", str(error))
            self._send_error_json(422, "analysis_failed", str(error))
            self._finish(422)
            return
        if error is not None:  # never leave the client hanging
            state.record_error("internal_error", str(error))
            self._send_error_json(500, "internal_error", str(error))
            self._finish(500)
            return

        self._send_json(200, self._analysis_payload(result["analysis"]))
        self._finish(200)

    def _handle_analyze_batch(self) -> None:
        """``POST /analyze/batch``: many videos, one concurrency slot.

        The request is ``{"videos": [{video_npz_b64, annotation?,
        seed?}, ...], "config"?: ..., "preset"?: ..., "seed"?: int}``.
        All items share one resolved analyzer and fan out across the
        worker pool; the whole batch occupies a single gate slot and a
        single shared deadline.  The response is 200 with per-item
        ``{"ok": true, "analysis": ...}`` / ``{"ok": false, "error":
        ...}`` entries in request order.
        """
        self._check_not_draining()
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        state: _ServiceState = self.server.state  # type: ignore[attr-defined]
        gate: threading.BoundedSemaphore = self.server.gate  # type: ignore[attr-defined]
        pool: WorkerPool = self.server.pool  # type: ignore[attr-defined]
        request = self._read_json_body()
        videos = request.get("videos")
        if not isinstance(videos, list) or not videos:
            raise _BadRequest("bad_batch", "'videos' must be a non-empty array")
        if len(videos) > service_config.max_batch_videos:
            raise _BadRequest(
                "batch_too_large",
                f"batch has {len(videos)} videos; the limit is "
                f"{service_config.max_batch_videos}",
            )
        try:
            base_seed = int(request.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise _BadRequest("bad_seed", f"seed must be an integer: {exc}")
        items = []
        for index, entry in enumerate(videos):
            if not isinstance(entry, dict):
                raise _BadRequest(
                    "bad_batch",
                    f"videos[{index}] must be an object, got "
                    f"{type(entry).__name__}",
                )
            try:
                items.append(
                    self._parse_video_item(entry, default_seed=base_seed + index)
                )
            except _BadRequest as exc:
                raise _BadRequest(
                    exc.error_type,
                    f"videos[{index}]: {exc}",
                    status=exc.status,
                    detail=exc.detail,
                )
        analyzer = self._resolve_analyzer(self._parse_config_block(request))

        if not self._try_acquire_gate():
            return

        # One slot for the whole batch.  Every item future — completed
        # or cancelled — fires the done-callback, and the last one to
        # finish releases the slot, so a post-timeout zombie item keeps
        # the batch's slot occupied until it actually ends.
        state.enter()
        remaining = [len(items)]
        countdown_lock = threading.Lock()

        def on_done(_future: Future) -> None:
            with countdown_lock:
                remaining[0] -= 1
                last = remaining[0] == 0
            if last:
                state.leave()
                gate.release()

        def run_item(item: dict[str, Any], index: int) -> dict[str, Any]:
            try:
                analysis = analyzer.analyze(
                    item["video"],
                    annotation=item["annotation"],
                    rng=np.random.default_rng(item["seed"]),
                    instrumentation=Instrumentation(),
                )
            except ReproError as exc:
                return {
                    "ok": False,
                    "index": index,
                    "error": {
                        "type": "analysis_failed",
                        "message": str(exc),
                        "detail": None,
                    },
                }
            except Exception as exc:
                return {
                    "ok": False,
                    "index": index,
                    "error": {
                        "type": "internal_error",
                        "message": str(exc),
                        "detail": None,
                    },
                }
            return {
                "ok": True,
                "index": index,
                "analysis": self._analysis_payload(analysis),
            }

        futures: list[Future[dict[str, Any]]] = []
        for index, item in enumerate(items):
            future = pool.submit(run_item, item, index)
            future.add_done_callback(on_done)
            futures.append(future)

        deadline = time.monotonic() + service_config.deadline_seconds
        results: list[dict[str, Any]] = []
        for future in futures:
            try:
                results.append(
                    future.result(timeout=max(0.0, deadline - time.monotonic()))
                )
            except FutureTimeout:
                for pending in futures:
                    pending.cancel()
                message = (
                    f"batch exceeded the "
                    f"{service_config.deadline_seconds:g}s deadline"
                )
                state.record_error("deadline_exceeded", message)
                self._send_error_json(504, "deadline_exceeded", message)
                self._finish(504)
                return

        failed = sum(1 for entry in results if not entry["ok"])
        if failed:
            state.record_error(
                "analysis_failed", f"{failed}/{len(results)} batch items failed"
            )
        self._send_json(
            200, {"results": results, "count": len(results), "failed": failed}
        )
        self._finish(200)


class _SharedSocketHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer accepting on a socket bound elsewhere.

    The multi-process front (``slj serve --procs N``) binds one
    listener in the parent and forks; every child adopts the same
    socket through this class, so the kernel load-balances ``accept``
    across processes with no proxy in front.  The adopted socket is
    deliberately not closed-on-bind here: the parent owns its fd.
    """

    def __init__(self, listener: socket.socket, handler: type) -> None:
        super().__init__(
            listener.getsockname()[:2], handler, bind_and_activate=False
        )
        self.socket.close()  # discard the unbound socket super() made
        self.socket = listener
        # What server_bind() would have derived, minus the getfqdn()
        # DNS round-trip (the listener is already bound and listening).
        self.server_name, self.server_port = listener.getsockname()[:2]


class ServiceHandle:
    """A jump-analysis server running on a background thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: AnalyzerConfig | None = None,
        service_config: ServiceConfig | None = None,
        listener: socket.socket | None = None,
    ) -> None:
        service_config = service_config or ServiceConfig()
        if listener is not None:
            self._server: ThreadingHTTPServer = _SharedSocketHTTPServer(
                listener, _Handler
            )
        else:
            self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.analyzer = JumpAnalyzer(config)  # type: ignore[attr-defined]
        self._server.metrics = MetricsRegistry()  # type: ignore[attr-defined]
        self._server.service_config = service_config  # type: ignore[attr-defined]
        self._server.state = _ServiceState()  # type: ignore[attr-defined]
        self._server.gate = threading.BoundedSemaphore(  # type: ignore[attr-defined]
            service_config.max_concurrent
        )
        # Per-config analyzers are cached so repeated custom-config
        # requests skip re-validating and re-building the whole stack.
        self._server.analyzer_cache = AnalyzerCache(  # type: ignore[attr-defined]
            JumpAnalyzer, capacity=service_config.analyzer_cache_size
        )
        # All analyses (single, batch items, and jobs) share one
        # bounded pool instead of a thread per request.
        self._server.pool = WorkerPool(  # type: ignore[attr-defined]
            service_config.effective_pool_workers,
            thread_name_prefix="slj-worker",
        )
        self._server.jobs = JobManager(  # type: ignore[attr-defined]
            service_config.jobs,
            self._server.pool,  # type: ignore[attr-defined]
            metrics=self._server.metrics,  # type: ignore[attr-defined]
        )
        self._server.lifecycle = ServiceLifecycle()  # type: ignore[attr-defined]
        # Re-submit jobs a previous process left behind (store restored
        # them as resumable from their persisted state + input spool).
        self._server.jobs.recover(  # type: ignore[attr-defined]
            self._recovery_analyzer
        )
        # With a shared store (jobs.store_dir) this replica also drains
        # the cross-replica submit queue in the background.
        self._server.jobs.start_drain(  # type: ignore[attr-defined]
            self._recovery_analyzer
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )

    def _recovery_analyzer(
        self, config_dict: dict[str, Any] | None
    ) -> JumpAnalyzer:
        """Analyzer for a recovered job, from its spooled config dict.

        An unreadable or stale config falls back to the server's shared
        analyzer — the checkpoint's config-hash guard then forces a
        clean re-run rather than resuming against the wrong config.
        """
        if config_dict is None:
            return self._server.analyzer  # type: ignore[attr-defined]
        try:
            return self._server.analyzer_cache.get(  # type: ignore[attr-defined]
                AnalyzerConfig.from_dict(config_dict)
            )
        except ConfigurationError:
            return self._server.analyzer  # type: ignore[attr-defined]

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's cumulative metrics registry."""
        return self._server.metrics  # type: ignore[attr-defined]

    @property
    def jobs(self) -> JobManager:
        """The server's job manager (store + workers)."""
        return self._server.jobs  # type: ignore[attr-defined]

    @property
    def address(self) -> str:
        """The server's base URL."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHandle":
        """Start serving in the background; returns self."""
        self._thread.start()
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Flip into draining mode and wait for in-flight work.

        New submissions answer 503 ``draining`` immediately; polling,
        frame pushes and ``eof`` keep working so admitted jobs can
        finish.  Returns True when the service went idle within the
        deadline (``service_config.drain_timeout_seconds`` by default).
        """
        lifecycle: ServiceLifecycle = self._server.lifecycle  # type: ignore[attr-defined]
        lifecycle.begin_drain()
        if timeout is None:
            timeout = self._server.service_config.drain_timeout_seconds  # type: ignore[attr-defined]
        state: _ServiceState = self._server.state  # type: ignore[attr-defined]
        jobs: JobManager = self._server.jobs  # type: ignore[attr-defined]

        def is_idle() -> bool:
            return (
                state.snapshot()["in_flight"] == 0
                and not jobs.store.running_jobs()
            )

        return lifecycle.wait_drained(is_idle, timeout)

    def stop(self, drain: bool = False, drain_timeout: float | None = None) -> None:
        """Shut the server down and join its thread.

        With ``drain=True`` the service first refuses new submissions
        and waits (up to the drain deadline) for in-flight jobs to
        finish.  Work still queued when the deadline passes is
        cancelled; with a persisted store + checkpoint dir those jobs
        stay ``submitted`` on disk and resume on the next start.
        """
        if drain:
            self.drain(timeout=drain_timeout)
        self._server.shutdown()
        self._server.server_close()
        self._server.jobs.close()  # type: ignore[attr-defined]
        # Don't wait: a zombie analysis past its deadline must not
        # block shutdown.  Queued-but-unstarted work is cancelled.
        cancelled = self._server.pool.shutdown(  # type: ignore[attr-defined]
            wait=False, cancel_futures=True
        )
        lifecycle: ServiceLifecycle = self._server.lifecycle  # type: ignore[attr-defined]
        lifecycle.cancelled_at_shutdown += int(cancelled or 0)
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: AnalyzerConfig | None = None,
    service_config: ServiceConfig | None = None,
    procs: int = 1,
) -> None:
    """Run the analysis service in the foreground.

    Ctrl-C (SIGINT) and SIGTERM both trigger a graceful drain: new
    submissions get 503 ``draining`` while in-flight jobs finish
    (bounded by ``service_config.drain_timeout_seconds``), then the
    process exits.  With a persisted job store and a checkpoint
    directory configured, jobs still queued at the deadline resume on
    the next start.

    ``procs > 1`` forks that many worker processes sharing one
    pre-bound listener socket (kernel-balanced ``accept``); each
    worker reports its own pid in ``/health`` and ``/metrics`` and
    runs the same drain path on SIGTERM.  Requires ``os.fork``.
    """
    if procs > 1:
        _serve_forked(host, port, config, service_config, procs)
        return
    handle = ServiceHandle(
        host=host, port=port, config=config, service_config=service_config
    )
    _serve_until_signalled(handle)


def _serve_until_signalled(handle: ServiceHandle) -> None:
    """Start ``handle``, then drain and stop on SIGTERM/Ctrl-C."""
    stop_requested = threading.Event()

    def _request_stop(signum: int, _frame: Any) -> None:
        stop_requested.set()

    previous = signal.signal(signal.SIGTERM, _request_stop)
    handle.start()
    print(
        f"standing-long-jump analysis service on {handle.address} "
        f"(pid {os.getpid()})"
    )
    try:
        while not stop_requested.wait(0.2):
            pass
        print("drain requested; waiting for in-flight work")
    except KeyboardInterrupt:
        print("interrupt; draining in-flight work")
    finally:
        handle.stop(drain=True)
        signal.signal(signal.SIGTERM, previous)


def _serve_forked(
    host: str,
    port: int,
    config: AnalyzerConfig | None,
    service_config: ServiceConfig | None,
    procs: int,
) -> None:
    """Fork ``procs`` workers accepting on one pre-bound listener.

    The parent binds, marks the fd inheritable, forks, then only
    forwards signals and reaps: SIGTERM/SIGINT fan out to every child,
    whose own handler runs the standard drain-then-stop path.  A child
    that exits is not restarted — crash-restart policy belongs to the
    supervisor running ``slj serve``, not to this process.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        raise ConfigurationError(
            f"--procs {procs} requires os.fork, unavailable on this platform"
        )
    listener = socket.create_server(
        (host, port), backlog=128, reuse_port=False
    )
    listener.set_inheritable(True)
    children: list[int] = []
    for _ in range(procs):
        pid = os.fork()
        if pid == 0:  # worker
            try:
                handle = ServiceHandle(
                    config=config,
                    service_config=service_config,
                    listener=listener,
                )
                _serve_until_signalled(handle)
            finally:
                # Skip atexit/GC teardown shared with the parent —
                # exit hard so only this worker's state is torn down.
                os._exit(0)
        children.append(pid)

    resolved_host, resolved_port = listener.getsockname()[:2]
    print(
        f"standing-long-jump analysis service on "
        f"http://{resolved_host}:{resolved_port} "
        f"({procs} workers: {' '.join(str(pid) for pid in children)})"
    )

    def _forward(signum: int, _frame: Any) -> None:
        for pid in children:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    previous_term = signal.signal(signal.SIGTERM, _forward)
    previous_int = signal.signal(signal.SIGINT, _forward)
    try:
        for pid in children:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:  # pragma: no cover - already reaped
                pass
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        listener.close()


def request_analysis(
    base_url: str,
    video: VideoSequence,
    annotation_dict: dict[str, Any] | None = None,
    seed: int = 0,
    timeout: float = 300.0,
    config: dict[str, Any] | None = None,
    preset: str | None = None,
) -> dict[str, Any]:
    """Deprecated: use :class:`repro.client.ServiceClient` instead.

    Kept as a thin shim over ``ServiceClient.analyze`` so existing
    callers keep working; it emits a :class:`DeprecationWarning`.
    """
    import warnings

    from .client import ServiceClient

    warnings.warn(
        "request_analysis() is deprecated; use "
        "repro.client.ServiceClient.analyze() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    client = ServiceClient(base_url, timeout=timeout)
    return client.analyze(
        video,
        annotation=annotation_dict,
        seed=seed,
        config=config,
        preset=preset,
    )
