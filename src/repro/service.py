"""A minimal jump-analysis web service (stdlib only).

The paper's future work: "we would also like to build a web-based
system on the Internet.  The user will be able to upload a video
sequence of a standing long jump ... the system will be able to
respond with advices to the user."  This module implements that
service over the library:

* ``POST /analyze`` — body is a JSON object
  ``{"video_npz_b64": <base64 of a compressed .npz with a 'frames'
  array>, "annotation": <optional annotation dict>, "seed": <int>}``;
  the response is the serialised analysis (report, advice, poses,
  events, measurement).
* ``GET /health`` — liveness probe.
* ``GET /standards`` — the Table 1 standards and Table 2 rules, so a
  client can render explanations.
* ``GET /config`` — the server's fully-resolved default configuration,
  its stable hash, and the known preset names.
* ``GET /metrics`` — cumulative per-stage wall-clock timings, pipeline
  counters and request counts across every request served so far
  (backed by :class:`repro.runtime.MetricsRegistry`).

An ``/analyze`` request may carry a ``"config"`` block (a partial
config dict, deep-merged over the server defaults) and/or a
``"preset"`` name; unknown or ill-typed keys are answered with a
structured 400 naming the offending dotted key.  The response embeds
the fully-resolved config and its hash.

Malformed requests (invalid JSON, non-object bodies, missing or
undecodable video payloads) are answered with HTTP 400 and a
structured JSON error ``{"error": {"code": ..., "message": ...}}``;
analysable-but-failing videos map to 422; unexpected faults to 500.

Start a server with :func:`serve` (blocking) or
:class:`ServiceHandle` (background thread, used by the tests and the
example).  Helpers :func:`encode_video` / :func:`request_analysis`
implement the client side with stdlib ``urllib``.
"""

from __future__ import annotations

import base64
import io
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from .config import (
    config_hash,
    config_to_dict,
    deep_merge,
    get_preset,
    preset_names,
)
from .errors import ConfigurationError, ReproError
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .runtime import Instrumentation, MetricsRegistry
from .scoring.rules import RULES
from .scoring.standards import ADVICE, Standard
from .serialization import analysis_to_dict, annotation_from_dict
from .video.sequence import VideoSequence


def encode_video(video: VideoSequence) -> str:
    """Encode a video as base64 of a compressed ``.npz`` payload."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, frames=video.frames)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_video(payload_b64: str) -> VideoSequence:
    """Inverse of :func:`encode_video`."""
    try:
        raw = base64.b64decode(payload_b64.encode("ascii"), validate=True)
        with np.load(io.BytesIO(raw)) as archive:
            return VideoSequence(archive["frames"])
    except Exception as exc:  # malformed payloads map to a clean 400
        raise ReproError(f"could not decode video payload: {exc}") from exc


def _standards_payload() -> dict[str, Any]:
    return {
        "standards": [
            {
                "name": standard.name,
                "stage": standard.stage,
                "description": standard.description,
                "advice": ADVICE[standard],
            }
            for standard in Standard
        ],
        "rules": [
            {
                "rule": rule.rule_id,
                "standard": rule.standard.name,
                "expression": rule.expression,
                "threshold_deg": rule.threshold,
                "direction": "greater" if rule.greater else "less",
            }
            for rule in RULES
        ],
    }


class _BadRequest(Exception):
    """A client error that maps to HTTP 400 with a structured payload."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one analyzer instance via the server."""

    server_version = "slj/1.0"

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        """Structured JSON error: ``{"error": {"code", "message"}}``."""
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _finish(self, status: int) -> None:
        self.server.metrics.count_request(  # type: ignore[attr-defined]
            self.path, status
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/health":
            self._send_json(200, {"status": "ok"})
            self._finish(200)
        elif self.path == "/standards":
            self._send_json(200, _standards_payload())
            self._finish(200)
        elif self.path == "/config":
            config = self.server.analyzer.config  # type: ignore[attr-defined]
            resolved = config_to_dict(config)
            self._send_json(
                200,
                {
                    "config": resolved,
                    "config_hash": config_hash(resolved),
                    "presets": list(preset_names()),
                },
            )
            self._finish(200)
        elif self.path == "/metrics":
            snapshot = self.server.metrics.snapshot()  # type: ignore[attr-defined]
            self._send_json(200, snapshot)
            self._finish(200)
        else:
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
            self._finish(404)

    def _parse_analyze_request(self) -> dict[str, Any]:
        """Decode and validate the /analyze body; :class:`_BadRequest` on error."""
        try:
            length = int(self.headers.get("Content-Length", "0") or 0)
        except ValueError:
            raise _BadRequest("bad_content_length", "invalid Content-Length header")
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(
                "malformed_json", f"request body is not valid JSON: {exc}"
            )
        if not isinstance(request, dict):
            raise _BadRequest(
                "malformed_json",
                f"request body must be a JSON object, got {type(request).__name__}",
            )
        if "video_npz_b64" not in request:
            raise _BadRequest(
                "missing_field", "request is missing the 'video_npz_b64' field"
            )
        try:
            video = decode_video(request["video_npz_b64"])
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_video_payload", str(exc))
        try:
            annotation = (
                annotation_from_dict(request["annotation"])
                if request.get("annotation")
                else None
            )
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_annotation_payload", str(exc))
        try:
            seed = int(request.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise _BadRequest("bad_seed", f"seed must be an integer: {exc}")
        config = self._parse_config_block(request)
        return {
            "video": video,
            "annotation": annotation,
            "seed": seed,
            "config": config,
        }

    def _parse_config_block(
        self, request: dict[str, Any]
    ) -> AnalyzerConfig | None:
        """Resolve the optional ``preset`` / ``config`` request fields.

        Returns ``None`` when the request doesn't customise the
        configuration (the server's shared analyzer is used).
        """
        preset = request.get("preset")
        overlay = request.get("config")
        if preset is None and overlay is None:
            return None
        if preset is not None and not isinstance(preset, str):
            raise _BadRequest(
                "bad_config", f"'preset' must be a string, got {preset!r}"
            )
        if overlay is not None and not isinstance(overlay, dict):
            raise _BadRequest(
                "bad_config",
                f"'config' must be an object, got {type(overlay).__name__}",
            )
        try:
            if preset is not None:
                base = get_preset(preset)
            else:
                base = self.server.analyzer.config  # type: ignore[attr-defined]
            resolved = config_to_dict(base)
            if overlay:
                resolved = deep_merge(resolved, overlay)
            return AnalyzerConfig.from_dict(resolved)
        except ConfigurationError as exc:
            raise _BadRequest("bad_config", str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/analyze":
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
            self._finish(404)
            return
        try:
            request = self._parse_analyze_request()
        except _BadRequest as exc:
            self._send_error_json(400, exc.code, str(exc))
            self._finish(400)
            return

        instrumentation = Instrumentation()
        if request["config"] is not None:
            analyzer = JumpAnalyzer(request["config"])
        else:
            analyzer = self.server.analyzer  # type: ignore[attr-defined]
        try:
            analysis = analyzer.analyze(
                request["video"],
                annotation=request["annotation"],
                rng=np.random.default_rng(request["seed"]),
                instrumentation=instrumentation,
            )
        except ReproError as exc:
            self._send_error_json(422, "analysis_failed", str(exc))
            self._finish(422)
            return
        except Exception as exc:  # never leave the client hanging
            self._send_error_json(500, "internal_error", str(exc))
            self._finish(500)
            return
        self.server.metrics.observe_trace(  # type: ignore[attr-defined]
            analysis.trace
        )
        self._send_json(200, analysis_to_dict(analysis))
        self._finish(200)


class ServiceHandle:
    """A jump-analysis server running on a background thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: AnalyzerConfig | None = None,
    ) -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.analyzer = JumpAnalyzer(config)  # type: ignore[attr-defined]
        self._server.metrics = MetricsRegistry()  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's cumulative metrics registry."""
        return self._server.metrics  # type: ignore[attr-defined]

    @property
    def address(self) -> str:
        """The server's base URL."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHandle":
        """Start serving in the background; returns self."""
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: AnalyzerConfig | None = None,
) -> None:
    """Run the analysis service in the foreground (Ctrl-C to stop)."""
    handle = ServiceHandle(host=host, port=port, config=config)
    print(f"standing-long-jump analysis service on {handle.address}")
    handle._server.serve_forever()


def request_analysis(
    base_url: str,
    video: VideoSequence,
    annotation_dict: dict[str, Any] | None = None,
    seed: int = 0,
    timeout: float = 300.0,
    config: dict[str, Any] | None = None,
    preset: str | None = None,
) -> dict[str, Any]:
    """Client helper: POST a video to a running service.

    ``config`` (a partial config dict) and/or ``preset`` customise the
    analyzer for this request; they merge over the server defaults.
    """
    import urllib.request

    body: dict[str, Any] = {
        "video_npz_b64": encode_video(video),
        "annotation": annotation_dict,
        "seed": seed,
    }
    if config is not None:
        body["config"] = config
    if preset is not None:
        body["preset"] = preset
    payload = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/analyze",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())
