"""A minimal jump-analysis web service (stdlib only).

The paper's future work: "we would also like to build a web-based
system on the Internet.  The user will be able to upload a video
sequence of a standing long jump ... the system will be able to
respond with advices to the user."  This module implements that
service over the library:

* ``POST /analyze`` — body is a JSON object
  ``{"video_npz_b64": <base64 of a compressed .npz with a 'frames'
  array>, "annotation": <optional annotation dict>, "seed": <int>}``;
  the response is the serialised analysis (report, advice, poses,
  events, measurement).
* ``GET /health`` — liveness probe.
* ``GET /standards`` — the Table 1 standards and Table 2 rules, so a
  client can render explanations.

Start a server with :func:`serve` (blocking) or
:class:`ServiceHandle` (background thread, used by the tests and the
example).  Helpers :func:`encode_video` / :func:`request_analysis`
implement the client side with stdlib ``urllib``.
"""

from __future__ import annotations

import base64
import io
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from .errors import ReproError
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .scoring.rules import RULES
from .scoring.standards import ADVICE, Standard
from .serialization import analysis_to_dict, annotation_from_dict
from .video.sequence import VideoSequence


def encode_video(video: VideoSequence) -> str:
    """Encode a video as base64 of a compressed ``.npz`` payload."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, frames=video.frames)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_video(payload_b64: str) -> VideoSequence:
    """Inverse of :func:`encode_video`."""
    try:
        raw = base64.b64decode(payload_b64.encode("ascii"), validate=True)
        with np.load(io.BytesIO(raw)) as archive:
            return VideoSequence(archive["frames"])
    except Exception as exc:  # malformed payloads map to a clean 400
        raise ReproError(f"could not decode video payload: {exc}") from exc


def _standards_payload() -> dict[str, Any]:
    return {
        "standards": [
            {
                "name": standard.name,
                "stage": standard.stage,
                "description": standard.description,
                "advice": ADVICE[standard],
            }
            for standard in Standard
        ],
        "rules": [
            {
                "rule": rule.rule_id,
                "standard": rule.standard.name,
                "expression": rule.expression,
                "threshold_deg": rule.threshold,
                "direction": "greater" if rule.greater else "less",
            }
            for rule in RULES
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one analyzer instance via the server."""

    server_version = "slj/1.0"

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/health":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/standards":
            self._send_json(200, _standards_payload())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/analyze":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length) or b"{}")
            video = decode_video(request["video_npz_b64"])
            annotation = (
                annotation_from_dict(request["annotation"])
                if request.get("annotation")
                else None
            )
            seed = int(request.get("seed", 0))
        except (KeyError, ValueError, json.JSONDecodeError, ReproError) as exc:
            self._send_json(400, {"error": str(exc)})
            return

        try:
            analysis = self.server.analyzer.analyze(  # type: ignore[attr-defined]
                video, annotation=annotation, rng=np.random.default_rng(seed)
            )
        except ReproError as exc:
            self._send_json(422, {"error": str(exc)})
            return
        self._send_json(200, analysis_to_dict(analysis))


class ServiceHandle:
    """A jump-analysis server running on a background thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: AnalyzerConfig | None = None,
    ) -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.analyzer = JumpAnalyzer(config)  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )

    @property
    def address(self) -> str:
        """The server's base URL."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHandle":
        """Start serving in the background; returns self."""
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: AnalyzerConfig | None = None,
) -> None:
    """Run the analysis service in the foreground (Ctrl-C to stop)."""
    handle = ServiceHandle(host=host, port=port, config=config)
    print(f"standing-long-jump analysis service on {handle.address}")
    handle._server.serve_forever()


def request_analysis(
    base_url: str,
    video: VideoSequence,
    annotation_dict: dict[str, Any] | None = None,
    seed: int = 0,
    timeout: float = 300.0,
) -> dict[str, Any]:
    """Client helper: POST a video to a running service."""
    import urllib.request

    payload = json.dumps(
        {
            "video_npz_b64": encode_video(video),
            "annotation": annotation_dict,
            "seed": seed,
        }
    ).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/analyze",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())
