"""A minimal jump-analysis web service (stdlib only).

The paper's future work: "we would also like to build a web-based
system on the Internet.  The user will be able to upload a video
sequence of a standing long jump ... the system will be able to
respond with advices to the user."  This module implements that
service over the library:

* ``POST /analyze`` — body is a JSON object
  ``{"video_npz_b64": <base64 of a compressed .npz with a 'frames'
  array>, "annotation": <optional annotation dict>, "seed": <int>}``;
  the response is the serialised analysis (report, advice, poses,
  events, measurement).
* ``GET /health`` — liveness probe, with in-flight request count and
  the last analysis error (if any).
* ``GET /standards`` — the Table 1 standards and Table 2 rules, so a
  client can render explanations.
* ``GET /config`` — the server's fully-resolved default configuration,
  its stable hash, and the known preset names.
* ``POST /analyze/batch`` — body is ``{"videos": [<analyze items>],
  "config"/"preset"/"seed": ...}``; all items share one resolved
  analyzer, one concurrency slot and one deadline, and fan out across
  the shared worker pool.  The response lists per-item
  ``{"ok": true, "analysis": ...}`` / ``{"ok": false, "error": ...}``
  results in request order.
* ``GET /metrics`` — cumulative per-stage wall-clock timings, pipeline
  counters and request counts across every request served so far
  (backed by :class:`repro.runtime.MetricsRegistry`), plus analyzer
  cache hit/miss statistics and worker-pool utilisation.

An ``/analyze`` request may carry a ``"config"`` block (a partial
config dict, deep-merged over the server defaults) and/or a
``"preset"`` name; unknown or ill-typed keys are answered with a
structured 400 naming the offending dotted key.  The response embeds
the fully-resolved config and its hash.

Malformed requests (invalid JSON, non-object bodies, missing or
undecodable video payloads) are answered with HTTP 400 and a
structured JSON error ``{"error": {"code": ..., "message": ...}}``;
analysable-but-failing videos map to 422; unexpected faults to 500.

The service is hardened against abuse and overload
(:class:`ServiceConfig`): bodies over ``max_body_bytes`` are refused
with 413 before the payload is read; more than ``max_concurrent``
simultaneous analyses are refused with 503 + ``Retry-After``; an
analysis that exceeds ``deadline_seconds`` is answered with 504 (its
worker keeps its concurrency slot until it actually finishes, so
zombies cannot oversubscribe the host).  Analyses run on a bounded
shared worker pool (``pool_workers``), and per-request analyzers are
served from an LRU cache keyed by config hash + execution backend
(``analyzer_cache_size``).  Analyses that completed
through the degradation machinery still return 200, with a top-level
``"degraded": true`` and a ``"degradation"`` block naming the
unhealthy frames and fallback stages.

Start a server with :func:`serve` (blocking) or
:class:`ServiceHandle` (background thread, used by the tests and the
example).  Helpers :func:`encode_video` / :func:`request_analysis`
implement the client side with stdlib ``urllib``.
"""

from __future__ import annotations

import base64
import io
import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from .config import (
    config_hash,
    config_to_dict,
    deep_merge,
    get_preset,
    preset_names,
)
from .errors import ConfigurationError, ReproError
from .perf.cache import AnalyzerCache
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .runtime import Instrumentation, MetricsRegistry
from .scoring.rules import RULES
from .scoring.standards import ADVICE, Standard
from .serialization import analysis_to_dict, annotation_from_dict
from .video.sequence import VideoSequence


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Abuse/overload limits of the analysis service."""

    # Refuse request bodies larger than this (HTTP 413) before reading.
    max_body_bytes: int = 64 * 1024 * 1024
    # Answer 504 when one analysis takes longer than this.
    deadline_seconds: float = 300.0
    # Refuse analyses beyond this many in flight (HTTP 503).
    max_concurrent: int = 4
    # Advisory Retry-After header on 503 responses.
    retry_after_seconds: int = 5
    # Analyses share a bounded worker pool (no thread-per-request); 0
    # sizes it to ``max_concurrent`` so every admitted request starts
    # immediately.
    pool_workers: int = 0
    # LRU capacity of the per-request analyzer cache (distinct resolved
    # configs kept warm).
    analyzer_cache_size: int = 8
    # Upper bound on videos in one ``POST /analyze/batch`` request.
    max_batch_videos: int = 16

    def __post_init__(self) -> None:
        if self.max_body_bytes < 1:
            raise ConfigurationError("service max_body_bytes must be >= 1")
        if self.deadline_seconds <= 0:
            raise ConfigurationError("service deadline_seconds must be > 0")
        if self.max_concurrent < 1:
            raise ConfigurationError("service max_concurrent must be >= 1")
        if self.retry_after_seconds < 0:
            raise ConfigurationError(
                "service retry_after_seconds must be >= 0"
            )
        if self.pool_workers < 0:
            raise ConfigurationError(
                "service pool_workers must be >= 0 (0 = max_concurrent)"
            )
        if self.analyzer_cache_size < 1:
            raise ConfigurationError("service analyzer_cache_size must be >= 1")
        if self.max_batch_videos < 1:
            raise ConfigurationError("service max_batch_videos must be >= 1")

    @property
    def effective_pool_workers(self) -> int:
        """The worker-pool size actually used."""
        return self.pool_workers or self.max_concurrent


class _ServiceState:
    """Mutable, lock-guarded liveness info shared by all handlers."""

    __slots__ = ("_lock", "in_flight", "last_error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.in_flight = 0
        self.last_error: dict[str, Any] | None = None

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1

    def leave(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def record_error(self, code: str, message: str) -> None:
        with self._lock:
            self.last_error = {"code": code, "message": message}

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            last = dict(self.last_error) if self.last_error else None
            return {"in_flight": self.in_flight, "last_error": last}


def encode_video(video: VideoSequence) -> str:
    """Encode a video as base64 of a compressed ``.npz`` payload."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, frames=video.frames)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_video(payload_b64: str) -> VideoSequence:
    """Inverse of :func:`encode_video`."""
    try:
        raw = base64.b64decode(payload_b64.encode("ascii"), validate=True)
        with np.load(io.BytesIO(raw)) as archive:
            return VideoSequence(archive["frames"])
    except Exception as exc:  # malformed payloads map to a clean 400
        raise ReproError(f"could not decode video payload: {exc}") from exc


def _standards_payload() -> dict[str, Any]:
    return {
        "standards": [
            {
                "name": standard.name,
                "stage": standard.stage,
                "description": standard.description,
                "advice": ADVICE[standard],
            }
            for standard in Standard
        ],
        "rules": [
            {
                "rule": rule.rule_id,
                "standard": rule.standard.name,
                "expression": rule.expression,
                "threshold_deg": rule.threshold,
                "direction": "greater" if rule.greater else "less",
            }
            for rule in RULES
        ],
    }


class _BadRequest(Exception):
    """A client error that maps to an HTTP 4xx with a structured payload."""

    def __init__(
        self,
        code: str,
        message: str,
        status: int = 400,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = status
        self.headers = headers


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one analyzer instance via the server."""

    server_version = "slj/1.0"

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        """Structured JSON error: ``{"error": {"code", "message"}}``."""
        self._send_json(
            status,
            {"error": {"code": code, "message": message}},
            headers=headers,
        )

    def _finish(self, status: int) -> None:
        self.server.metrics.count_request(  # type: ignore[attr-defined]
            self.path, status
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output clean

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/health":
            state = self.server.state.snapshot()  # type: ignore[attr-defined]
            service_config = self.server.service_config  # type: ignore[attr-defined]
            self._send_json(
                200,
                {
                    "status": "ok",
                    "in_flight": state["in_flight"],
                    "max_concurrent": service_config.max_concurrent,
                    "last_error": state["last_error"],
                },
            )
            self._finish(200)
        elif self.path == "/standards":
            self._send_json(200, _standards_payload())
            self._finish(200)
        elif self.path == "/config":
            config = self.server.analyzer.config  # type: ignore[attr-defined]
            resolved = config_to_dict(config)
            self._send_json(
                200,
                {
                    "config": resolved,
                    "config_hash": config_hash(resolved),
                    "presets": list(preset_names()),
                },
            )
            self._finish(200)
        elif self.path == "/metrics":
            snapshot = self.server.metrics.snapshot()  # type: ignore[attr-defined]
            snapshot["analyzer_cache"] = (
                self.server.analyzer_cache.stats()  # type: ignore[attr-defined]
            )
            state = self.server.state.snapshot()  # type: ignore[attr-defined]
            service_config = self.server.service_config  # type: ignore[attr-defined]
            snapshot["pool"] = {
                "workers": service_config.effective_pool_workers,
                "in_flight": state["in_flight"],
                "submitted": snapshot["counters"].get(
                    "service.pool.submitted", 0
                ),
                "completed": snapshot["counters"].get(
                    "service.pool.completed", 0
                ),
            }
            self._send_json(200, snapshot)
            self._finish(200)
        else:
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
            self._finish(404)

    def _drain_body(self, length: int, cap: int = 256 * 1024 * 1024) -> None:
        """Read and discard up to ``min(length, cap)`` body bytes."""
        remaining = min(length, cap)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def _read_json_body(self) -> dict[str, Any]:
        """Read and decode the request body under the size cap."""
        try:
            length = int(self.headers.get("Content-Length", "0") or 0)
        except ValueError:
            raise _BadRequest("bad_content_length", "invalid Content-Length header")
        limit = self.server.service_config.max_body_bytes  # type: ignore[attr-defined]
        if length > limit:
            # Refuse without buffering: the body is drained in fixed
            # chunks and discarded (never held in memory), so the
            # client can finish writing and read the 413 instead of
            # hitting a broken pipe.
            self._drain_body(length)
            # Draining is capped, so part of the body may still sit on
            # the socket: close the connection so request framing stays
            # correct even if keep-alive is ever enabled.
            raise _BadRequest(
                "body_too_large",
                f"request body is {length} bytes; the limit is {limit}",
                status=413,
                headers={"Connection": "close"},
            )
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(
                "malformed_json", f"request body is not valid JSON: {exc}"
            )
        if not isinstance(request, dict):
            raise _BadRequest(
                "malformed_json",
                f"request body must be a JSON object, got {type(request).__name__}",
            )
        return request

    def _resolve_analyzer(self, config: AnalyzerConfig | None) -> JumpAnalyzer:
        """The shared analyzer, or a cached per-config one.

        Built before any concurrency slot is taken: JumpAnalyzer
        performs validation beyond AnalyzerConfig.from_dict (e.g.
        robustness stage names), and a failure must be a structured
        400, never a leaked gate slot.
        """
        if config is None:
            return self.server.analyzer  # type: ignore[attr-defined]
        try:
            return self.server.analyzer_cache.get(  # type: ignore[attr-defined]
                config
            )
        except ConfigurationError as exc:
            raise _BadRequest("bad_config", str(exc))

    def _parse_video_item(
        self, item: dict[str, Any], default_seed: int = 0
    ) -> dict[str, Any]:
        """Validate one video payload (shared by single and batch)."""
        if "video_npz_b64" not in item:
            raise _BadRequest(
                "missing_field", "request is missing the 'video_npz_b64' field"
            )
        try:
            video = decode_video(item["video_npz_b64"])
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_video_payload", str(exc))
        try:
            annotation = (
                annotation_from_dict(item["annotation"])
                if item.get("annotation")
                else None
            )
        except (ReproError, TypeError) as exc:
            raise _BadRequest("bad_annotation_payload", str(exc))
        try:
            seed = int(item.get("seed", default_seed))
        except (TypeError, ValueError) as exc:
            raise _BadRequest("bad_seed", f"seed must be an integer: {exc}")
        return {"video": video, "annotation": annotation, "seed": seed}

    def _parse_analyze_request(self) -> dict[str, Any]:
        """Decode and validate the /analyze body; :class:`_BadRequest` on error."""
        request = self._read_json_body()
        parsed = self._parse_video_item(request)
        config = self._parse_config_block(request)
        parsed["analyzer"] = self._resolve_analyzer(config)
        return parsed

    def _parse_config_block(
        self, request: dict[str, Any]
    ) -> AnalyzerConfig | None:
        """Resolve the optional ``preset`` / ``config`` request fields.

        Returns ``None`` when the request doesn't customise the
        configuration (the server's shared analyzer is used).
        """
        preset = request.get("preset")
        overlay = request.get("config")
        if preset is None and overlay is None:
            return None
        if preset is not None and not isinstance(preset, str):
            raise _BadRequest(
                "bad_config", f"'preset' must be a string, got {preset!r}"
            )
        if overlay is not None and not isinstance(overlay, dict):
            raise _BadRequest(
                "bad_config",
                f"'config' must be an object, got {type(overlay).__name__}",
            )
        try:
            if preset is not None:
                base = get_preset(preset)
            else:
                base = self.server.analyzer.config  # type: ignore[attr-defined]
            resolved = config_to_dict(base)
            if overlay:
                resolved = deep_merge(resolved, overlay)
            return AnalyzerConfig.from_dict(resolved)
        except ConfigurationError as exc:
            raise _BadRequest("bad_config", str(exc))

    def _analysis_payload(self, analysis: Any) -> dict[str, Any]:
        """Serialise one successful analysis (shared by single and batch)."""
        self.server.metrics.observe_trace(  # type: ignore[attr-defined]
            analysis.trace
        )
        payload = analysis_to_dict(analysis)
        payload["degraded"] = analysis.degraded
        if analysis.degraded:
            diagnostics = analysis.diagnostics
            payload["degradation"] = {
                "unhealthy_frames": list(
                    diagnostics.get("unhealthy_frames", [])
                ),
                "flagged_frames": list(diagnostics.get("flagged_frames", [])),
                "degraded_stages": list(
                    diagnostics.get("degraded_stages", [])
                ),
            }
        return payload

    def _try_acquire_gate(self) -> bool:
        """One concurrency slot, or a 503 response already sent."""
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        gate: threading.BoundedSemaphore = self.server.gate  # type: ignore[attr-defined]
        if gate.acquire(blocking=False):
            return True
        self._send_error_json(
            503,
            "overloaded",
            f"{service_config.max_concurrent} analyses already in "
            "flight; retry later",
            headers={"Retry-After": str(service_config.retry_after_seconds)},
        )
        self._finish(503)
        return False

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/analyze":
            self._handle_analyze()
        elif self.path == "/analyze/batch":
            self._handle_analyze_batch()
        else:
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
            self._finish(404)

    def _handle_analyze(self) -> None:
        try:
            request = self._parse_analyze_request()
        except _BadRequest as exc:
            self._send_error_json(
                exc.status, exc.code, str(exc), headers=exc.headers
            )
            self._finish(exc.status)
            return

        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        state: _ServiceState = self.server.state  # type: ignore[attr-defined]
        gate: threading.BoundedSemaphore = self.server.gate  # type: ignore[attr-defined]
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        pool: ThreadPoolExecutor = self.server.pool  # type: ignore[attr-defined]
        if not self._try_acquire_gate():
            return

        instrumentation = Instrumentation()
        analyzer = request["analyzer"]

        # Run the analysis on the shared worker pool so the handler can
        # enforce the deadline without a thread per request.  The worker
        # owns the concurrency slot: on timeout a zombie analysis keeps
        # it until it actually finishes, so the gate keeps bounding real
        # load.
        result: dict[str, Any] = {}
        state.enter()
        metrics.increment("service.pool.submitted")

        def work() -> None:
            try:
                result["analysis"] = analyzer.analyze(
                    request["video"],
                    annotation=request["annotation"],
                    rng=np.random.default_rng(request["seed"]),
                    instrumentation=instrumentation,
                )
            except BaseException as exc:  # delivered to the handler
                result["error"] = exc
            finally:
                state.leave()
                gate.release()
                metrics.increment("service.pool.completed")

        future: Future[None] = pool.submit(work)
        try:
            future.result(timeout=service_config.deadline_seconds)
        except FutureTimeout:
            # If the work never started (pool saturated by zombies) the
            # cancel succeeds and its finally never runs — release the
            # slot here.  Otherwise the running worker keeps the slot.
            if future.cancel():
                state.leave()
                gate.release()
            message = (
                "analysis exceeded the "
                f"{service_config.deadline_seconds:g}s deadline"
            )
            state.record_error("deadline_exceeded", message)
            self._send_error_json(504, "deadline_exceeded", message)
            self._finish(504)
            return
        error = result.get("error")
        if isinstance(error, ReproError):
            state.record_error("analysis_failed", str(error))
            self._send_error_json(422, "analysis_failed", str(error))
            self._finish(422)
            return
        if error is not None:  # never leave the client hanging
            state.record_error("internal_error", str(error))
            self._send_error_json(500, "internal_error", str(error))
            self._finish(500)
            return

        self._send_json(200, self._analysis_payload(result["analysis"]))
        self._finish(200)

    def _handle_analyze_batch(self) -> None:
        """``POST /analyze/batch``: many videos, one concurrency slot.

        The request is ``{"videos": [{video_npz_b64, annotation?,
        seed?}, ...], "config"?: ..., "preset"?: ..., "seed"?: int}``.
        All items share one resolved analyzer and fan out across the
        worker pool; the whole batch occupies a single gate slot and a
        single shared deadline.  The response is 200 with per-item
        ``{"ok": true, "analysis": ...}`` / ``{"ok": false, "error":
        ...}`` entries in request order.
        """
        service_config: ServiceConfig = self.server.service_config  # type: ignore[attr-defined]
        state: _ServiceState = self.server.state  # type: ignore[attr-defined]
        gate: threading.BoundedSemaphore = self.server.gate  # type: ignore[attr-defined]
        metrics: MetricsRegistry = self.server.metrics  # type: ignore[attr-defined]
        pool: ThreadPoolExecutor = self.server.pool  # type: ignore[attr-defined]
        try:
            request = self._read_json_body()
            videos = request.get("videos")
            if not isinstance(videos, list) or not videos:
                raise _BadRequest(
                    "bad_batch", "'videos' must be a non-empty array"
                )
            if len(videos) > service_config.max_batch_videos:
                raise _BadRequest(
                    "batch_too_large",
                    f"batch has {len(videos)} videos; the limit is "
                    f"{service_config.max_batch_videos}",
                )
            try:
                base_seed = int(request.get("seed", 0))
            except (TypeError, ValueError) as exc:
                raise _BadRequest("bad_seed", f"seed must be an integer: {exc}")
            items = []
            for index, entry in enumerate(videos):
                if not isinstance(entry, dict):
                    raise _BadRequest(
                        "bad_batch",
                        f"videos[{index}] must be an object, got "
                        f"{type(entry).__name__}",
                    )
                try:
                    items.append(
                        self._parse_video_item(
                            entry, default_seed=base_seed + index
                        )
                    )
                except _BadRequest as exc:
                    raise _BadRequest(
                        exc.code, f"videos[{index}]: {exc}", status=exc.status
                    )
            analyzer = self._resolve_analyzer(self._parse_config_block(request))
        except _BadRequest as exc:
            self._send_error_json(
                exc.status, exc.code, str(exc), headers=exc.headers
            )
            self._finish(exc.status)
            return

        if not self._try_acquire_gate():
            return

        # One slot for the whole batch.  Every item future — completed
        # or cancelled — fires the done-callback, and the last one to
        # finish releases the slot, so a post-timeout zombie item keeps
        # the batch's slot occupied until it actually ends.
        state.enter()
        remaining = [len(items)]
        countdown_lock = threading.Lock()

        def on_done(_future: Future) -> None:
            with countdown_lock:
                remaining[0] -= 1
                last = remaining[0] == 0
            if last:
                state.leave()
                gate.release()

        def run_item(item: dict[str, Any], index: int) -> dict[str, Any]:
            try:
                analysis = analyzer.analyze(
                    item["video"],
                    annotation=item["annotation"],
                    rng=np.random.default_rng(item["seed"]),
                    instrumentation=Instrumentation(),
                )
            except ReproError as exc:
                return {
                    "ok": False,
                    "index": index,
                    "error": {"code": "analysis_failed", "message": str(exc)},
                }
            except Exception as exc:
                return {
                    "ok": False,
                    "index": index,
                    "error": {"code": "internal_error", "message": str(exc)},
                }
            finally:
                metrics.increment("service.pool.completed")
            return {
                "ok": True,
                "index": index,
                "analysis": self._analysis_payload(analysis),
            }

        futures: list[Future[dict[str, Any]]] = []
        for index, item in enumerate(items):
            metrics.increment("service.pool.submitted")
            future = pool.submit(run_item, item, index)
            future.add_done_callback(on_done)
            futures.append(future)

        deadline = time.monotonic() + service_config.deadline_seconds
        results: list[dict[str, Any]] = []
        for future in futures:
            try:
                results.append(
                    future.result(timeout=max(0.0, deadline - time.monotonic()))
                )
            except FutureTimeout:
                for pending in futures:
                    pending.cancel()
                message = (
                    f"batch exceeded the "
                    f"{service_config.deadline_seconds:g}s deadline"
                )
                state.record_error("deadline_exceeded", message)
                self._send_error_json(504, "deadline_exceeded", message)
                self._finish(504)
                return

        failed = sum(1 for entry in results if not entry["ok"])
        if failed:
            state.record_error(
                "analysis_failed", f"{failed}/{len(results)} batch items failed"
            )
        self._send_json(
            200, {"results": results, "count": len(results), "failed": failed}
        )
        self._finish(200)


class ServiceHandle:
    """A jump-analysis server running on a background thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: AnalyzerConfig | None = None,
        service_config: ServiceConfig | None = None,
    ) -> None:
        service_config = service_config or ServiceConfig()
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.analyzer = JumpAnalyzer(config)  # type: ignore[attr-defined]
        self._server.metrics = MetricsRegistry()  # type: ignore[attr-defined]
        self._server.service_config = service_config  # type: ignore[attr-defined]
        self._server.state = _ServiceState()  # type: ignore[attr-defined]
        self._server.gate = threading.BoundedSemaphore(  # type: ignore[attr-defined]
            service_config.max_concurrent
        )
        # Per-config analyzers are cached so repeated custom-config
        # requests skip re-validating and re-building the whole stack.
        self._server.analyzer_cache = AnalyzerCache(  # type: ignore[attr-defined]
            JumpAnalyzer, capacity=service_config.analyzer_cache_size
        )
        # All analyses (single and batch items) share one bounded pool
        # instead of a thread per request.
        self._server.pool = ThreadPoolExecutor(  # type: ignore[attr-defined]
            max_workers=service_config.effective_pool_workers,
            thread_name_prefix="slj-worker",
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's cumulative metrics registry."""
        return self._server.metrics  # type: ignore[attr-defined]

    @property
    def address(self) -> str:
        """The server's base URL."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHandle":
        """Start serving in the background; returns self."""
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        # Don't wait: a zombie analysis past its deadline must not
        # block shutdown.  Queued-but-unstarted work is cancelled.
        self._server.pool.shutdown(  # type: ignore[attr-defined]
            wait=False, cancel_futures=True
        )
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: AnalyzerConfig | None = None,
    service_config: ServiceConfig | None = None,
) -> None:
    """Run the analysis service in the foreground (Ctrl-C to stop)."""
    handle = ServiceHandle(
        host=host, port=port, config=config, service_config=service_config
    )
    print(f"standing-long-jump analysis service on {handle.address}")
    handle._server.serve_forever()


def request_analysis(
    base_url: str,
    video: VideoSequence,
    annotation_dict: dict[str, Any] | None = None,
    seed: int = 0,
    timeout: float = 300.0,
    config: dict[str, Any] | None = None,
    preset: str | None = None,
) -> dict[str, Any]:
    """Client helper: POST a video to a running service.

    ``config`` (a partial config dict) and/or ``preset`` customise the
    analyzer for this request; they merge over the server defaults.
    """
    import urllib.request

    body: dict[str, Any] = {
        "video_npz_b64": encode_video(video),
        "annotation": annotation_dict,
        "seed": seed,
    }
    if config is not None:
        body["config"] = config
    if preset is not None:
        body["preset"] = preset
    payload = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/analyze",
        data=payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())
