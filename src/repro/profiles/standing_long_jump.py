"""The paper's movement, repackaged as a profile.

This is a *wrapper*, not a rewrite: the profile points at the very
same ``RULES`` tuple, ``Standard`` enum, ``ADVICE`` mapping, event
detector and distance measure the scoring layer has always used, so
scoring through the profile is outcome-identical to the pre-registry
pipeline (the single-attempt parity pin in ``tests/test_profiles.py``
asserts object identity, not just equality).
"""

from __future__ import annotations

from ..analysis.events import detect_events
from ..scoring.distance import measure_jump
from ..scoring.rules import RULES
from ..scoring.standards import ADVICE, Standard
from .base import MOVEMENT_PROFILES, MovementProfile

STANDING_LONG_JUMP = MovementProfile(
    name="standing_long_jump",
    title="Standing Long Jump",
    description=(
        "The paper's movement: Table 1 standards E1-E7 checked by the "
        "Table 2 rules R1-R7, distance measured takeoff line to "
        "landing heel."
    ),
    standards=tuple(Standard),
    rules=RULES,
    advice=ADVICE,
    detect_events=detect_events,
    measure=measure_jump,
    distance_label="jump distance (px, takeoff line to landing heel)",
)

MOVEMENT_PROFILES.add(STANDING_LONG_JUMP.name, STANDING_LONG_JUMP)
