"""Movement profiles: score any silhouette-tracked movement.

The scoring engine (stage windows, rule evaluation, report rendering,
distance measurement) is movement-agnostic; what makes it "the
standing long jump" is a table of standards and rules.  This package
lifts that table into :class:`MovementProfile` and registers profiles
like segmentation steps and search strategies are registered, selected
via ``AnalyzerConfig.profile``.  Two profiles ship:

* ``standing_long_jump`` — the paper's E1-E7 / R1-R7 tables, unchanged
  (scoring through the profile is outcome-identical to the classic
  pipeline);
* ``sit_to_stand`` — the chair-rise test, proving the engine
  generalises: new standards, a rise-onset phase boundary, vertical
  distance semantics.

See ``docs/profiles.md`` for how to register your own.
"""

from .base import (
    MOVEMENT_PROFILES,
    MovementProfile,
    get_profile,
    profile_names,
)
# Import order is registration order: the paper's movement first.
from .standing_long_jump import STANDING_LONG_JUMP
from .sit_to_stand import (
    SIT_TO_STAND,
    SIT_TO_STAND_ADVICE,
    SIT_TO_STAND_RULES,
    SitToStandStandard,
    detect_sit_to_stand_events,
    measure_sit_to_stand,
)

__all__ = [
    "MOVEMENT_PROFILES",
    "MovementProfile",
    "get_profile",
    "profile_names",
    "STANDING_LONG_JUMP",
    "SIT_TO_STAND",
    "SIT_TO_STAND_ADVICE",
    "SIT_TO_STAND_RULES",
    "SitToStandStandard",
    "detect_sit_to_stand_events",
    "measure_sit_to_stand",
]
