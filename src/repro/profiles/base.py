"""The :class:`MovementProfile` abstraction and its registry.

The paper scores exactly one movement — the standing long jump — and
its Table 1 → Table 2 translation is, structurally, a *table*: a list
of standards, one measurable rule per standard, a phase model that
assigns each rule a frame window, and a distance measure.  A
:class:`MovementProfile` packages that table so the pipeline can score
any silhouette-tracked movement: the analyzer resolves
``AnalyzerConfig.profile`` through :data:`MOVEMENT_PROFILES` exactly
like segmentation steps and search strategies resolve theirs.

Profiles are *data*, not subclasses: the engine (GA tracking, stage
windows, rule evaluation, report rendering) is shared; a profile only
supplies the standards table, the rule predicates, the event detector
that finds the phase boundary, and the measurement semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..analysis.events import JumpEvents
from ..model.pose import StickPose
from ..model.sticks import BodyDimensions
from ..registry import Registry
from ..scoring.distance import JumpMeasurement
from ..scoring.rules import Rule

#: ``detect_events(poses, dims) -> JumpEvents`` — finds the movement's
#: temporal structure; ``takeoff_frame`` is the phase boundary the
#: stage windows split at (rise onset for sit-to-stand).
EventDetector = Callable[[Sequence[StickPose], BodyDimensions], JumpEvents]

#: ``measure(poses, dims, landing_frame) -> JumpMeasurement`` — the
#: profile's distance semantics (horizontal jump length, vertical rise).
Measurer = Callable[
    [Sequence[StickPose], BodyDimensions, "int | None"], JumpMeasurement
]


@dataclass(frozen=True, slots=True)
class MovementProfile:
    """One scoreable movement: standards, rules, phases, distance."""

    #: Registry key (``standing_long_jump``) and config value.
    name: str
    #: Human title used in report headers ("Standing Long Jump").
    title: str
    #: One-line description for ``GET /v1/profiles`` and the CLI.
    description: str
    #: The standards table — enum members carrying ``.name``,
    #: ``.stage`` (a :class:`~repro.scoring.phases.StageWindows` stage
    #: key) and ``.description``.
    standards: tuple[Any, ...]
    #: One measurable :class:`~repro.scoring.rules.Rule` per standard.
    rules: tuple[Rule, ...]
    #: Coaching advice per standard, issued on violation.
    advice: Mapping[Any, str]
    #: Event detector supplying the phase boundary (and landing/peak).
    detect_events: EventDetector
    #: Distance measure; what ``JumpMeasurement.distance`` means for
    #: this movement is stated by ``distance_label``.
    measure: Measurer
    distance_label: str = "distance (px)"
    #: First-frame annotation prior: the stick angles a person starts
    #: this movement in (``None`` → the standing prior).  Automatic
    #: annotation fits the model to the first silhouette assuming this
    #: posture — a seated start would otherwise be mis-scaled and
    #: mis-posed, and the error cascades through tracking.
    start_angles: "tuple[float, ...] | None" = None


#: All registered movement profiles.  Register with
#: ``MOVEMENT_PROFILES.add(profile.name, profile)`` at import time —
#: both shipped profiles do, so importing :mod:`repro.profiles`
#: populates the registry.
MOVEMENT_PROFILES: Registry[MovementProfile] = Registry("movement profile")


def get_profile(name: str) -> MovementProfile:
    """Look a profile up; unknown names list the registered ones."""
    return MOVEMENT_PROFILES.get(name)


def profile_names() -> tuple[str, ...]:
    """Registered profile names, in registration order."""
    return MOVEMENT_PROFILES.names()
