"""Sit-to-stand: a second movement through the same engine.

The chair-rise test is the classic clinical silhouette-analysis
movement (see *Sit-to-Stand Analysis in the Wild*, PAPERS.md), and it
exercises every part of the profile abstraction the standing long jump
does not: the phase boundary is a *rise onset* rather than a takeoff,
the "distance" is a vertical trunk rise rather than a horizontal jump
length, and the standards table is a different shape (4 standards, two
per phase).  The rule predicates themselves reuse the scoring layer's
angle measures — the engine is shared, only the table changes.

Phase mapping: the generic stage keys ``initiation`` / ``air_landing``
(see :mod:`repro.scoring.phases`) are interpreted as *seated
preparation* (first frame → rise onset) and *rise-and-stand* (rise
onset → end).  ``JumpEvents.takeoff_frame`` carries the rise onset so
:class:`~repro.scoring.phases.StageWindows` splits correctly with no
changes.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from ..analysis.events import JumpEvents, foot_clearance
from ..errors import ScoringError
from ..model.pose import StickPose
from ..model.sticks import BodyDimensions
from ..scoring.distance import JumpMeasurement
from ..scoring.rules import Rule, _knee_flexion, _trunk_angle
from ..scoring.standards import STAGE_AIR_LANDING, STAGE_INITIATION
from .base import MOVEMENT_PROFILES, MovementProfile


class SitToStandStandard(Enum):
    """Form standards of the chair rise, two per phase."""

    S1 = (STAGE_INITIATION, "Trunk leaned forward to rise")
    S2 = (STAGE_INITIATION, "Knees deeply flexed while seated")
    S3 = (STAGE_AIR_LANDING, "Knees fully extended at stand")
    S4 = (STAGE_AIR_LANDING, "Trunk upright at stand")

    @property
    def stage(self) -> str:
        """``"initiation"`` (seated) or ``"air_landing"`` (rise/stand)."""
        return self.value[0]

    @property
    def description(self) -> str:
        """The standard's wording."""
        return self.value[1]


def _trunk_uprightness(pose: StickPose) -> float:
    """Absolute trunk lean from vertical, degrees (0 = upright)."""
    return abs(_trunk_angle(pose))


def _knee_flexion_magnitude(pose: StickPose) -> float:
    """Unsigned knee flexion |ρ6 − ρ3|, degrees (0 = straight leg).

    The signed measure the jump rules use can wrap to large negative
    values when the tracker briefly swaps leg sticks; the magnitude is
    what "how bent is the knee" means here.
    """
    return abs(_knee_flexion(pose))


#: One measurable rule per standard, same shape as the jump's Table 2.
#: Thresholds are tuned to the shared GA tracker's accuracy on
#: silhouettes (like the paper's own Table 2 thresholds were): a
#: straightened leg is estimated at ~40° flexion, a seated one at
#: 90°+, so "extended" is < 50° and "deeply flexed" is > 60°.
SIT_TO_STAND_RULES: tuple[Rule, ...] = (
    Rule("T1", SitToStandStandard.S1, "max ρ0 > 25°", _trunk_angle, 25.0, True),
    Rule(
        "T2",
        SitToStandStandard.S2,
        "max |ρ6 − ρ3| > 60°",
        _knee_flexion_magnitude,
        60.0,
        True,
    ),
    Rule(
        "T3",
        SitToStandStandard.S3,
        "min |ρ6 − ρ3| < 50°",
        _knee_flexion_magnitude,
        50.0,
        False,
    ),
    Rule("T4", SitToStandStandard.S4, "min |ρ0| < 15°", _trunk_uprightness, 15.0, False),
)

SIT_TO_STAND_ADVICE: dict[SitToStandStandard, str] = {
    SitToStandStandard.S1: (
        "Lean your trunk forward over your feet before rising — it "
        "moves your weight onto your legs instead of your arms."
    ),
    SitToStandStandard.S2: (
        "Start from a genuine seated position with knees well bent; "
        "rising from a half-crouch skips the movement being tested."
    ),
    SitToStandStandard.S3: (
        "Straighten your knees completely at the top of the rise — "
        "stopping short leaves you in a crouch, not a stand."
    ),
    SitToStandStandard.S4: (
        "Finish upright: bring your trunk back over your hips once "
        "your knees are extended."
    ),
}


def detect_sit_to_stand_events(
    poses: Sequence[StickPose],
    dims: BodyDimensions,
    rise_fraction: float = 0.5,
    settle_fraction: float = 0.10,
) -> JumpEvents:
    """Detect rise onset, stand and peak from the trunk-height track.

    The trunk centre (``pose.y0``) rises monotonically-ish from seated
    to standing: onset is the first frame clearly above the seated
    baseline (``rise_fraction`` of the total rise — defaulting to half
    the rise, deliberately *late*, so the forward lean that precedes
    and overlaps the early rise stays inside the seated preparation
    window), the stand is the first frame within ``settle_fraction``
    of the top.  The result is
    packaged as :class:`~repro.analysis.events.JumpEvents` with the
    onset in ``takeoff_frame`` so the shared stage windows split the
    sequence at the start of the rise.
    """
    if len(poses) < 4:
        raise ScoringError(f"need at least 4 poses, got {len(poses)}")
    heights = np.array([pose.y0 for pose in poses])
    base = float(np.median(heights[:3]))
    top = float(heights.max())
    rise = top - base
    if rise <= 1e-9:
        # No rise at all: fall back to the midpoint split, like the
        # jump detector does when the jumper never goes airborne.
        onset = len(poses) // 2
        settled = len(poses) - 1
    else:
        above = heights > base + rise_fraction * rise
        onset = int(np.argmax(above)) if above.any() else len(poses) // 2
        onset = max(1, min(onset, len(poses) - 1))
        settled_mask = heights >= top - settle_fraction * rise
        later = np.nonzero(settled_mask[onset:])[0]
        settled = int(onset + later[0]) if later.size else len(poses) - 1
    peak = int(heights.argmax())
    ground = float(foot_clearance(poses[:1], dims)[0])
    return JumpEvents(
        takeoff_frame=int(onset),
        landing_frame=int(max(settled, onset)),
        peak_frame=peak,
        ground_height=ground,
    )


def measure_sit_to_stand(
    poses: Sequence[StickPose],
    dims: BodyDimensions,
    landing_frame: "int | None" = None,
) -> JumpMeasurement:
    """Measure the vertical trunk rise of a chair stand.

    Reuses the :class:`~repro.scoring.distance.JumpMeasurement` shape
    with profile semantics: ``distance`` is the vertical rise of the
    trunk centre (px), ``takeoff_line_x`` / ``landing_heel_x`` carry
    the seated and standing trunk heights (the measurement's two
    endpoints, exactly as for the jump — just along y instead of x).
    """
    if len(poses) < 2:
        raise ScoringError("need at least two poses to measure a rise")
    if landing_frame is None:
        landing_frame = len(poses) - 1
    if not 0 < landing_frame < len(poses):
        raise ScoringError(
            f"landing_frame {landing_frame} out of range for {len(poses)} poses"
        )
    heights = np.array([pose.y0 for pose in poses])
    seated = float(heights[0])
    stand = float(heights[: landing_frame + 1].max())
    rise = stand - seated
    return JumpMeasurement(
        distance=float(rise),
        takeoff_line_x=seated,
        landing_heel_x=stand,
        landing_frame=int(landing_frame),
        relative_to_stature=float(rise / dims.stature),
    )


SIT_TO_STAND = MovementProfile(
    name="sit_to_stand",
    title="Sit to Stand",
    description=(
        "Chair rise scored through the shared engine: seated "
        "preparation then rise-and-stand, four form standards, "
        "distance measured as the vertical trunk rise."
    ),
    standards=tuple(SitToStandStandard),
    rules=SIT_TO_STAND_RULES,
    advice=SIT_TO_STAND_ADVICE,
    detect_events=detect_sit_to_stand_events,
    measure=measure_sit_to_stand,
    distance_label="vertical rise (px, seated to standing trunk height)",
    # A typical deep-seated posture (trunk slightly forward, knees and
    # hips well flexed): the first-frame annotation prior.  Close to,
    # but deliberately not identical to, the synthetic clip's seated
    # keyframe — annotation must tolerate a few degrees of mismatch.
    start_angles=(10.0, 10.0, 185.0, 140.0, 10.0, 190.0, 225.0, 90.0),
)

MOVEMENT_PROFILES.add(SIT_TO_STAND.name, SIT_TO_STAND)
