"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object holds values that cannot work together."""


class ImageError(ReproError):
    """An image array has the wrong dtype, shape, or value range."""


class VideoError(ReproError):
    """A video sequence is empty, ragged, or otherwise malformed."""


class SegmentationError(ReproError):
    """The segmentation pipeline could not produce a usable silhouette."""


class ModelError(ReproError):
    """A stick model or chromosome is inconsistent with its topology."""


class TrackingError(ReproError):
    """Pose tracking failed (e.g. empty silhouette, infeasible seed)."""


class CancelledError(ReproError):
    """A run was cooperatively cancelled between pipeline stages."""


class StreamError(ReproError):
    """A streaming analysis was used out of order, closed, or overrun."""


class ScoringError(ReproError):
    """A score request referenced frames or rules that do not exist."""


class CircuitOpen(ReproError):
    """A circuit breaker is refusing work for this configuration.

    ``retry_after`` hints how many seconds until the cooldown probe —
    the service forwards it as a ``Retry-After`` header on the 503.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
