"""Typed client for the jump-analysis service.

:class:`ServiceClient` is the supported way to talk to a server
started by :func:`repro.service.serve` /
:class:`~repro.service.ServiceHandle`.  It speaks the versioned
``/v1`` surface, converts the service's structured error envelope
(``{"error": {"type", "message", "detail"}}``) into typed exceptions,
and wraps the asynchronous job API into a submit / poll / wait flow::

    client = ServiceClient(handle.address)
    job_id = client.submit(video, seed=7)["id"]
    analysis = client.wait(job_id, timeout=120.0)

Only the standard library is used (``urllib``), matching the service
itself.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any

from .errors import ReproError
from .service import API_VERSION, encode_video
from .video.sequence import VideoSequence


class ClientError(ReproError):
    """The request never produced a service response (transport-level)."""


class ServiceError(ClientError):
    """The service answered with a structured error envelope."""

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        detail: Any = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(f"[{status} {error_type}] {message}")
        self.status = status
        self.error_type = error_type
        self.detail = detail
        #: Parsed ``Retry-After`` response header (seconds), if any.
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff for *idempotent* requests answered 429/503.

    The server's ``Retry-After`` header wins when present (capped at
    ``max_delay_seconds``); otherwise the delay doubles from
    ``base_delay_seconds`` up to the cap, with jitter (a uniform
    0.5–1.0 factor) so a fleet of clients does not retry in lockstep.
    Non-idempotent requests (job submission, ``eof``) are never
    retried — a timeout there could otherwise double-submit.
    """

    max_retries: int = 4
    base_delay_seconds: float = 0.1
    max_delay_seconds: float = 5.0
    statuses: tuple[int, ...] = (429, 503)

    def delay_seconds(
        self, attempt: int, retry_after: float | None = None
    ) -> float:
        if retry_after is not None and retry_after >= 0:
            return min(retry_after, self.max_delay_seconds)
        delay = min(
            self.base_delay_seconds * (2.0 ** attempt),
            self.max_delay_seconds,
        )
        return delay * (0.5 + random.random() * 0.5)


class JobFailedError(ClientError):
    """A waited-on job finished as ``failed`` or ``cancelled``."""

    def __init__(self, job: dict[str, Any]) -> None:
        error = job.get("error") or {}
        super().__init__(
            f"job {job.get('id')!r} {job.get('state')}: "
            f"{error.get('message', 'no error recorded')}"
        )
        self.job = job


class JobTimeoutError(ClientError):
    """A waited-on job did not reach a terminal state in time."""

    def __init__(self, job_id: str, timeout: float) -> None:
        super().__init__(f"job {job_id!r} not finished after {timeout:g}s")
        self.job_id = job_id
        self.timeout = timeout


class ServiceClient:
    """A typed HTTP client bound to one service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 300.0,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Backoff for idempotent requests; ``RetryPolicy(max_retries=0)``
        #: disables retries entirely.
        self.retry_policy = retry_policy or RetryPolicy()
        # Seam for tests: patched to observe/skip real sleeping.
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        timeout: float | None = None,
        idempotent: bool | None = None,
    ) -> dict[str, Any]:
        """One request against the ``/v1`` surface; raises typed errors.

        Idempotent requests (every GET unless overridden, plus frame
        pushes, which the server applies all-or-nothing) are retried
        per :attr:`retry_policy` when the service answers 429/503,
        honouring its ``Retry-After``.  Everything else is single-shot.
        """
        if idempotent is None:
            idempotent = method == "GET"
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, timeout)
            except ServiceError as exc:
                if (
                    not idempotent
                    or exc.status not in policy.statuses
                    or attempt >= policy.max_retries
                ):
                    raise
                self._sleep(policy.delay_seconds(attempt, exc.retry_after))
                attempt += 1

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        url = f"{self.base_url}/{API_VERSION}{path}"
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            raise self._service_error(exc) from exc
        except urllib.error.URLError as exc:
            raise ClientError(
                f"could not reach {url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _service_error(exc: urllib.error.HTTPError) -> ServiceError:
        retry_after = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        if header is not None:
            try:
                retry_after = float(header)
            except (TypeError, ValueError):
                retry_after = None
        try:
            envelope = json.loads(exc.read())
            error = envelope["error"]
            return ServiceError(
                exc.code,
                str(error.get("type", "unknown")),
                str(error.get("message", "")),
                detail=error.get("detail"),
                retry_after=retry_after,
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return ServiceError(
                exc.code, "unknown", str(exc), retry_after=retry_after
            )

    @staticmethod
    def _video_body(
        video: VideoSequence | str,
        annotation: dict[str, Any] | None = None,
        seed: int = 0,
        config: dict[str, Any] | None = None,
        preset: str | None = None,
        profile: str | None = None,
    ) -> dict[str, Any]:
        payload = (
            video if isinstance(video, str) else encode_video(video)
        )
        body: dict[str, Any] = {
            "video_npz_b64": payload,
            "annotation": annotation,
            "seed": seed,
        }
        if config is not None:
            body["config"] = config
        if preset is not None:
            body["preset"] = preset
        if profile is not None:
            body["profile"] = profile
        return body

    # ------------------------------------------------------------------
    # Synchronous analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        video: VideoSequence | str,
        annotation: dict[str, Any] | None = None,
        seed: int = 0,
        config: dict[str, Any] | None = None,
        preset: str | None = None,
        profile: str | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/analyze``: block until the analysis payload.

        ``video`` may be a :class:`VideoSequence` or an
        already-encoded base64 ``.npz`` string.  ``profile`` selects
        the movement to score (``GET /v1/profiles`` lists them); an
        unknown name is a 400 ``unknown_profile``.
        """
        return self._request(
            "POST",
            "/analyze",
            self._video_body(video, annotation, seed, config, preset, profile),
        )

    def analyze_batch(
        self,
        videos: list[VideoSequence | str | dict[str, Any]],
        seed: int = 0,
        config: dict[str, Any] | None = None,
        preset: str | None = None,
        profile: str | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/analyze/batch``: many videos, one round trip.

        Each entry may be a :class:`VideoSequence`, an encoded base64
        string, or a full item dict (``{"video_npz_b64": ...,
        "annotation"?: ..., "seed"?: ...}``).
        """
        items: list[dict[str, Any]] = []
        for entry in videos:
            if isinstance(entry, dict):
                items.append(entry)
            else:
                items.append({"video_npz_b64": entry}
                             if isinstance(entry, str)
                             else {"video_npz_b64": encode_video(entry)})
        body: dict[str, Any] = {"videos": items, "seed": seed}
        if config is not None:
            body["config"] = config
        if preset is not None:
            body["preset"] = preset
        if profile is not None:
            body["profile"] = profile
        return self._request("POST", "/analyze/batch", body)

    # ------------------------------------------------------------------
    # Asynchronous jobs
    # ------------------------------------------------------------------
    def submit(
        self,
        video: VideoSequence | str,
        annotation: dict[str, Any] | None = None,
        seed: int = 0,
        config: dict[str, Any] | None = None,
        preset: str | None = None,
        profile: str | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/jobs``: returns the submitted job payload (202)."""
        response = self._request(
            "POST",
            "/jobs",
            self._video_body(video, annotation, seed, config, preset, profile),
        )
        return response["job"]

    # ------------------------------------------------------------------
    # Streaming jobs
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_frames(frames: Any) -> str:
        """Frames (VideoSequence / array / list / b64 str) → b64 npz."""
        if isinstance(frames, str):
            return frames
        if isinstance(frames, VideoSequence):
            return encode_video(frames)
        return encode_video(VideoSequence(frames))

    def submit_stream(
        self,
        annotation: dict[str, Any] | None = None,
        seed: int = 0,
        config: dict[str, Any] | None = None,
        preset: str | None = None,
        profile: str | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/jobs`` with ``"mode": "stream"``: open a stream job.

        The job takes no video up front; feed it with
        :meth:`push_frames` and close it with :meth:`eof`.
        """
        body: dict[str, Any] = {
            "mode": "stream",
            "annotation": annotation,
            "seed": seed,
        }
        if config is not None:
            body["config"] = config
        if preset is not None:
            body["preset"] = preset
        if profile is not None:
            body["profile"] = profile
        return self._request("POST", "/jobs", body)["job"]

    def push_frames(
        self,
        job_id: str,
        frames: Any,
        retry_interval: float = 0.1,
        max_retries: int = 100,
    ) -> dict[str, Any]:
        """``POST /v1/jobs/{id}/frames``: append one chunk to a stream.

        A ``429 frame_queue_full`` answer (the worker hasn't drained
        the bounded queue yet) is retried up to ``max_retries`` times
        with ``retry_interval`` seconds between attempts; any other
        error raises immediately.  Returns the response — the job
        payload (``stream`` block included) plus queue depth and the
        received-frame total.
        """
        body = {"frames_npz_b64": self._encode_frames(frames)}
        attempts = 0
        while True:
            try:
                # Safe to mark idempotent: the server queues a chunk
                # all-or-nothing, so a rejected push left no frames
                # behind and the same chunk can be re-sent verbatim.
                return self._request(
                    "POST", f"/jobs/{job_id}/frames", body, idempotent=True
                )
            except ServiceError as exc:
                if exc.error_type != "frame_queue_full":
                    raise
                attempts += 1
                if attempts > max_retries:
                    raise
                self._sleep(retry_interval)

    def eof(self, job_id: str) -> dict[str, Any]:
        """``POST /v1/jobs/{id}/eof``: close a stream job's frame feed."""
        return self._request("POST", f"/jobs/{job_id}/eof")["job"]

    def stream(
        self,
        video: VideoSequence,
        annotation: dict[str, Any] | None = None,
        seed: int = 0,
        config: dict[str, Any] | None = None,
        preset: str | None = None,
        profile: str | None = None,
        chunk_frames: int = 4,
        on_update: Any = None,
        timeout: float = 300.0,
    ) -> dict[str, Any]:
        """Submit, push ``video`` in chunks, ``eof``, wait for the result.

        ``on_update`` (if given) is called with each push response, so
        a caller can watch the provisional state evolve.  Returns the
        final analysis payload (same shape as :meth:`wait`).
        """
        if chunk_frames < 1:
            raise ClientError(
                f"chunk_frames must be >= 1, got {chunk_frames}"
            )
        job = self.submit_stream(
            annotation=annotation,
            seed=seed,
            config=config,
            preset=preset,
            profile=profile,
        )
        job_id = job["id"]
        frames = video.frames
        for start in range(0, len(frames), chunk_frames):
            response = self.push_frames(
                job_id, frames[start : start + chunk_frames]
            )
            if on_update is not None:
                on_update(response)
        self.eof(job_id)
        return self.wait(job_id, timeout=timeout)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}``: status + progress."""
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}/result``: the analysis of a succeeded job."""
        return self._request("GET", f"/jobs/{job_id}/result")["analysis"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /v1/jobs/{id}``: request cooperative cancellation."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def jobs(
        self, limit: int = 50, state: str | None = None
    ) -> list[dict[str, Any]]:
        """``GET /v1/jobs``: newest-first bounded listing."""
        path = f"/jobs?limit={limit}"
        if state is not None:
            path += f"&state={state}"
        return self._request("GET", path)["jobs"]

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """Poll a job until terminal; return its analysis payload.

        Raises :class:`JobFailedError` when the job finishes as
        ``failed`` or ``cancelled`` and :class:`JobTimeoutError` when
        it is still running after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            state = job["state"]
            if state == "succeeded":
                return self.result(job_id)
            if state in ("failed", "cancelled"):
                raise JobFailedError(job)
            if time.monotonic() >= deadline:
                raise JobTimeoutError(job_id, timeout)
            time.sleep(poll_interval)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /v1/health``."""
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        """``GET /v1/metrics``."""
        return self._request("GET", "/metrics")

    def standards(self) -> dict[str, Any]:
        """``GET /v1/standards``."""
        return self._request("GET", "/standards")

    def profiles(self) -> dict[str, Any]:
        """``GET /v1/profiles``: every registered movement profile."""
        return self._request("GET", "/profiles")

    def config(self) -> dict[str, Any]:
        """``GET /v1/config``."""
        return self._request("GET", "/config")

    def version(self) -> dict[str, Any]:
        """``GET /v1/version``."""
        return self._request("GET", "/version")
