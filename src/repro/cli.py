"""Command-line interface: ``slj``.

Subcommands:

* ``slj synthesize`` — generate a synthetic jump video (optionally
  violating chosen standards) and save frames/ground truth.
* ``slj analyze`` — run the full pipeline on a saved video and print
  the scoring report.
* ``slj demo`` — synthesize + analyze end to end in one go.
  ``--long`` synthesizes a long clip with dead time and several
  attempts, localises them and scores each one; ``--movement
  sit_to_stand`` exercises the second registered movement profile.
* ``slj localize`` — run only the temporal localisation front-stage
  over a video and print the attempt windows it finds.
* ``slj jobs submit|status|result|cancel|list`` — drive a running
  service's asynchronous job API (``/v1/jobs``) from the shell.
* ``slj stream`` — push a video frame by frame through a streaming
  job (``POST /v1/jobs/{id}/frames``) and watch provisional takeoff /
  landing / score estimates evolve before the final report.
* ``slj chaos`` — fault-injection sweep (one analysis per fault) with
  a survival report; ``--min-survival`` turns it into a CI gate.
* ``slj bench`` — time the hot paths (segmentation backends, the GA
  with/without incremental evaluation, tracking, end to end) and write
  a machine-readable report; ``--baseline`` turns it into a CI gate.

``analyze``, ``demo``, ``evaluate`` and ``chaos`` share the configuration flags
``--config PATH`` (JSON/TOML file, or an analysis JSON reproducing
itself), ``--preset NAME`` (``paper`` / ``fast`` / ``accurate``) and
repeatable ``--set key=value`` dotted overrides — see
``docs/configuration.md``.  ``--fast`` is shorthand for
``--preset fast``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .config import preset_names, resolve_config
from .errors import ConfigurationError, ReproError
from .model.annotation import simulate_human_annotation
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .scoring.standards import Standard
from .video.sequence import VideoSequence
from .video.synthesis.dataset import SyntheticJumpConfig, synthesize_jump


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared configuration flags (analyze / demo / evaluate)."""
    group = parser.add_argument_group("configuration")
    group.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="config file (JSON or TOML); an analysis JSON written by "
        "--json works too (its embedded config is used)",
    )
    group.add_argument(
        "--preset",
        default=None,
        metavar="NAME",
        help=f"named preset: {', '.join(preset_names())}",
    )
    group.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted config override, repeatable "
        "(e.g. --set tracker.ga.max_generations=5)",
    )
    group.add_argument(
        "--fast",
        action="store_true",
        help="shorthand for --preset fast (quicker, noisier)",
    )
    group.add_argument(
        "--movement",
        default=None,
        metavar="PROFILE",
        help="movement profile the tail stages score (shorthand for "
        "--set profile=NAME); registered profiles are listed in "
        "docs/profiles.md and by GET /v1/profiles",
    )


def _resolve_cli_config(args: argparse.Namespace) -> AnalyzerConfig:
    """Resolve preset/file/overrides flags into an AnalyzerConfig."""
    preset = getattr(args, "preset", None)
    if getattr(args, "fast", False):
        if preset is not None and preset != "fast":
            raise SystemExit(
                f"--fast conflicts with --preset {preset!r}; pick one"
            )
        preset = "fast"
    overrides = list(getattr(args, "overrides", ()) or ())
    movement = getattr(args, "movement", None)
    if movement is not None:
        # Appended last so the explicit flag wins over a profile buried
        # in --config / --set, mirroring the service's `profile` field.
        overrides.append(f"profile={movement}")
    try:
        return resolve_config(
            preset=preset,
            config_file=getattr(args, "config", None),
            overrides=overrides,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"bad configuration: {exc}") from None


def _parse_standards(raw: list[str]) -> tuple[Standard, ...]:
    out = []
    for name in raw:
        try:
            out.append(Standard[name.upper()])
        except KeyError:
            valid = ", ".join(s.name for s in Standard)
            raise SystemExit(
                f"unknown standard {name!r}; choose from {valid}"
            ) from None
    return tuple(out)


def _cmd_synthesize(args: argparse.Namespace) -> int:
    config = SyntheticJumpConfig(
        seed=args.seed, violated=_parse_standards(args.violate or [])
    )
    jump = synthesize_jump(config)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    jump.video.save(out / "video.npz")

    if args.frames:
        from .imaging.io import write_png

        for index, frame in enumerate(jump.video):
            write_png(out / f"frame_{index:03d}.png", frame)
    poses = np.array([pose.to_genes() for pose in jump.motion.poses])
    np.savez_compressed(
        out / "ground_truth.npz",
        poses=poses,
        person_masks=np.stack(jump.person_masks),
        shadow_masks=np.stack(jump.shadow_masks),
        stature=jump.config.stature,
    )
    violated = ", ".join(s.name for s in config.violated) or "none"
    print(f"wrote {len(jump.video)}-frame jump to {out} (violated: {violated})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    analyzer = JumpAnalyzer(_resolve_cli_config(args))
    video = VideoSequence.load(args.video)

    annotation = None
    truth_path = Path(args.video).parent / "ground_truth.npz"
    if args.annotation == "ground-truth":
        if not truth_path.exists():
            raise SystemExit(f"no ground truth next to the video: {truth_path}")
        from .model.pose import StickPose
        from .model.sticks import default_body

        with np.load(truth_path) as archive:
            pose0 = StickPose.from_genes(archive["poses"][0])
            dims = default_body(float(archive["stature"]))
            mask0 = archive["person_masks"][0].astype(bool)
        annotation = simulate_human_annotation(
            pose0, dims, mask=mask0, rng=np.random.default_rng(args.seed)
        )

    analysis = analyzer.analyze(
        video, annotation=annotation, rng=np.random.default_rng(args.seed)
    )
    print(analysis.report.render_text())
    print()
    print(
        f"jump distance: {analysis.measurement.distance:.1f} px "
        f"({analysis.measurement.relative_to_stature:.2f} statures); "
        f"takeoff frame {analysis.events.takeoff_frame}, "
        f"landing frame {analysis.events.landing_frame}"
    )

    if args.profile:
        print()
        print("stage timings:")
        print(analysis.trace.render_table())

    if args.stature_cm is not None:
        from .scoring.calibration import PixelCalibration, grade_distance

        calibration = PixelCalibration.from_stature(
            analysis.annotation.dims.stature, args.stature_cm
        )
        distance_cm = calibration.jump_distance_cm(analysis.measurement)
        line = f"calibrated distance: {distance_cm:.0f} cm"
        if args.age is not None:
            line += f" ({grade_distance(distance_cm, args.age)} for age {args.age})"
        print(line)

    if args.json is not None:
        from .serialization import write_analysis_json

        write_analysis_json(args.json, analysis)
        print(
            f"wrote analysis JSON to {args.json} "
            f"(config {analysis.config_hash})"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    if getattr(args, "long", False):
        return _cmd_demo_long(args)
    if getattr(args, "actors", 1) > 1:
        return _cmd_demo_multi(args)
    movement = getattr(args, "movement", None)
    if movement is not None and movement != "standing_long_jump":
        return _cmd_demo_movement(args)
    analyzer_config = _resolve_cli_config(args)
    config = SyntheticJumpConfig(
        seed=args.seed, violated=_parse_standards(args.violate or [])
    )
    jump = synthesize_jump(config)
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(args.seed),
    )
    analysis = JumpAnalyzer(analyzer_config).analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(args.seed)
    )
    violated = ", ".join(s.name for s in config.violated) or "none"
    print(f"synthetic jump (seed {args.seed}, violated: {violated})")
    print()
    print(analysis.report.render_text())
    detected = {s.name for s in analysis.report.violated_standards}
    injected = {s.name for s in config.violated}
    print()
    print(f"injected flaws: {sorted(injected) or 'none'}")
    print(f"detected flaws: {sorted(detected) or 'none'}")
    if args.profile:
        print()
        print("stage timings:")
        print(analysis.trace.render_table())
    if args.json is not None:
        from .serialization import write_analysis_json

        write_analysis_json(args.json, analysis)
        print(
            f"wrote analysis JSON to {args.json} "
            f"(config {analysis.config_hash})"
        )
    return 0


def _cmd_demo_long(args: argparse.Namespace) -> int:
    """``slj demo --long``: localise + score every attempt in a long clip."""
    from dataclasses import replace

    from .localization import AttemptWindow
    from .video.synthesis import LongClipConfig, synthesize_long_clip

    if args.violate:
        print("note: --violate applies to single-jump demos only; ignored")
    config = _resolve_cli_config(args)
    config = replace(
        config, localization=replace(config.localization, enabled=True)
    )
    clip = synthesize_long_clip(
        LongClipConfig(seed=args.seed, attempts=args.attempts)
    )
    analysis = JumpAnalyzer(config).analyze(
        clip.video, rng=np.random.default_rng(args.seed)
    )
    truth = [AttemptWindow(start, end, 1.0) for start, end in clip.windows]
    print(
        f"long clip: {len(clip.video)} frames, "
        f"{len(clip.windows)} ground-truth attempts (seed {args.seed})"
    )
    for attempt in analysis.attempts:
        window = attempt.window
        best_iou = max((window.iou(t) for t in truth), default=0.0)
        marker = " (primary)" if attempt.primary else ""
        print(
            f"  {attempt.attempt_id}: frames {window.start}..{window.end - 1} "
            f"conf {window.confidence:.2f} score "
            f"{attempt.analysis.report.score:.3f} "
            f"distance {attempt.analysis.measurement.distance:.1f}px "
            f"IoU {best_iou:.2f}{marker}"
        )
    if not analysis.attempts:
        print("  no attempts found")
    if args.profile:
        print()
        print("stage timings:")
        print(analysis.trace.render_table())
    if args.json is not None:
        from .serialization import write_analysis_json

        write_analysis_json(args.json, analysis)
        print(
            f"wrote analysis JSON to {args.json} "
            f"(config {analysis.config_hash})"
        )
    if len(analysis.attempts) < args.min_attempts:
        print(
            f"FAIL: found {len(analysis.attempts)} attempts, "
            f"required {args.min_attempts}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_demo_movement(args: argparse.Namespace) -> int:
    """``slj demo --movement PROFILE``: score a non-jump movement clip."""
    config = _resolve_cli_config(args)  # validates the profile name
    if config.profile != "sit_to_stand":
        raise SystemExit(
            f"demo has no synthesiser for profile {config.profile!r}; "
            "use `slj analyze --movement` on your own video"
        )
    from .video.synthesis import SitToStandClipConfig, synthesize_sit_to_stand

    if args.violate:
        print("note: --violate applies to jump demos only; ignored")
    clip = synthesize_sit_to_stand(SitToStandClipConfig(seed=args.seed))
    analysis = JumpAnalyzer(config).analyze(
        clip.video, rng=np.random.default_rng(args.seed)
    )
    print(
        f"synthetic chair rise (seed {args.seed}, "
        f"ground-truth rise at frame {clip.rise_frame})"
    )
    print()
    print(analysis.report.render_text())
    print()
    print(
        f"rise onset: frame {analysis.events.takeoff_frame} "
        f"(stand at frame {analysis.events.landing_frame}); "
        f"rise height {analysis.measurement.distance:.1f}px"
    )
    if args.profile:
        print()
        print("stage timings:")
        print(analysis.trace.render_table())
    if args.json is not None:
        from .serialization import write_analysis_json

        write_analysis_json(args.json, analysis)
        print(
            f"wrote analysis JSON to {args.json} "
            f"(config {analysis.config_hash})"
        )
    return 0


def _cmd_localize(args: argparse.Namespace) -> int:
    """``slj localize``: only the temporal front-stage, no scoring."""
    import json as _json

    from .localization import localize_attempts

    config = _resolve_cli_config(args)
    if args.video is not None:
        video = VideoSequence.load(args.video)
    else:
        from .video.synthesis import LongClipConfig, synthesize_long_clip

        video = synthesize_long_clip(
            LongClipConfig(seed=args.seed, attempts=args.attempts)
        ).video
        print(f"synthesized a {len(video)}-frame {args.attempts}-attempt clip")
    result = localize_attempts(video, config.localization)
    print(
        f"{len(result.windows)} attempt windows in {result.num_frames} "
        f"frames (seed threshold {result.seed_threshold:.4f}, floor "
        f"{result.floor:.4f})"
    )
    for index, window in enumerate(result.windows):
        marker = " (primary)" if index == result.primary_index else ""
        print(
            f"  frames {window.start}..{window.end - 1} "
            f"({window.frames} frames, confidence "
            f"{window.confidence:.2f}){marker}"
        )
    if result.truncated:
        print(f"note: truncated to the top {config.localization.max_attempts}")
    if args.json is not None:
        Path(args.json).write_text(
            _json.dumps(result.to_dict(), indent=2) + "\n"
        )
        print(f"wrote localization JSON to {args.json}")
    return 0


def _cmd_demo_multi(args: argparse.Namespace) -> int:
    """``slj demo --actors N``: an N-jumper scene, one report per track."""
    from .evaluation import evaluate_mot
    from .pipeline import multi_actor_config
    from .video.synthesis import MultiActorJumpConfig, synthesize_multi_jump

    if args.violate:
        print("note: --violate applies to single-actor demos only; ignored")
    config = multi_actor_config(_resolve_cli_config(args), actors=args.actors)
    jump = synthesize_multi_jump(
        MultiActorJumpConfig(seed=args.seed, actors=args.actors)
    )
    analysis = JumpAnalyzer(config).analyze(
        jump.video, rng=np.random.default_rng(args.seed)
    )
    print(f"synthetic {args.actors}-actor scene (seed {args.seed})")
    for track in analysis.tracks:
        last = track.start_frame + track.frames - 1
        print()
        print(
            f"track {track.track_id} ({track.state}, frames "
            f"{track.start_frame}..{last}): score {track.report.score:.3f}, "
            f"distance {track.measurement.distance:.1f}px"
        )
    mot = evaluate_mot(jump, analysis)
    print()
    print(
        f"MOT vs ground truth: {mot.num_tracks} tracks for "
        f"{mot.num_actors} actors, {mot.id_switches} id switches, "
        f"MOTA {mot.mota:.3f}"
    )
    if args.profile:
        print()
        print("stage timings:")
        print(analysis.trace.render_table())
    if args.json is not None:
        from .serialization import write_analysis_json

        write_analysis_json(args.json, analysis)
        print(
            f"wrote analysis JSON to {args.json} "
            f"(config {analysis.config_hash})"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .evaluation import evaluate_detection, evaluate_tracking
    from .video.synthesis.dataset import synthesize_flawed_jump

    config = _resolve_cli_config(args)

    jumps = [synthesize_jump(SyntheticJumpConfig(seed=s)) for s in args.seeds]
    if args.flaws:
        jumps += [
            synthesize_flawed_jump(standard, seed=900 + i)
            for i, standard in enumerate(Standard)
        ]
    print(f"evaluating {len(jumps)} jumps (this runs the full pipeline)…")

    detection = evaluate_detection(jumps, config=config)
    print()
    print("flaw detection per standard:")
    for stats in detection.per_standard:
        print(
            f"  {stats.standard.name}: recall {stats.recall:.2f} "
            f"({stats.true_positive}/{stats.true_positive + stats.false_negative}), "
            f"false alarms {stats.false_positive}/{stats.false_positive + stats.true_negative}"
        )
    print(
        f"overall: recall {detection.overall_recall:.2f}, "
        f"false-alarm rate {detection.overall_false_alarm_rate:.2f}"
    )

    tracking = evaluate_tracking(jumps, config=config)
    print()
    print(
        f"tracking: mean joint err {tracking.mean_joint_error:.2f}px "
        f"(max {tracking.max_joint_error:.2f}px), "
        f"mean angle err {tracking.mean_angle_error:.1f} deg"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .jobs import JobsConfig
    from .service import ServiceConfig, serve

    procs = getattr(args, "procs", 1)
    jobs = JobsConfig()
    if args.state_dir is not None:
        state_dir = Path(args.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        if procs > 1:
            # Multi-process front: per-job records in a shared
            # directory store all workers drain together, instead of
            # one JSON snapshot they would fight over.
            jobs = JobsConfig(
                store_dir=str(state_dir / "store"),
                checkpoint_dir=str(state_dir / "checkpoints"),
                job_deadline_seconds=args.job_deadline,
            )
        else:
            jobs = JobsConfig(
                persist_path=str(state_dir / "jobs.json"),
                checkpoint_dir=str(state_dir / "checkpoints"),
                job_deadline_seconds=args.job_deadline,
            )
    elif procs > 1:
        raise ConfigurationError(
            "--procs > 1 requires --state-dir: the worker processes "
            "share the job queue through its directory store"
        )
    elif args.job_deadline:
        jobs = JobsConfig(job_deadline_seconds=args.job_deadline)
    serve(
        host=args.host,
        port=args.port,
        service_config=ServiceConfig(
            deadline_seconds=args.deadline,
            max_concurrent=args.max_concurrent,
            drain_timeout_seconds=args.drain_timeout,
            jobs=jobs,
        ),
        procs=procs,
    )
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from .client import ServiceClient
    from .config import config_to_dict

    client = ServiceClient(args.url)
    action = args.jobs_command
    if action == "submit":
        from .service import encode_video

        video = VideoSequence.load(args.video)
        customised = (
            getattr(args, "preset", None)
            or getattr(args, "config", None)
            or getattr(args, "overrides", None)
            or getattr(args, "fast", False)
        )
        config = (
            config_to_dict(_resolve_cli_config(args)) if customised else None
        )
        job = client.submit(
            encode_video(video),
            seed=args.seed,
            config=config,
            profile=getattr(args, "movement", None),
        )
        print(f"submitted job {job['id']} ({job['state']})")
        if args.wait:
            analysis = client.wait(job["id"], timeout=args.timeout)
            print(
                f"job {job['id']} succeeded: score "
                f"{analysis['report']['score']:.4f} "
                f"(config {analysis['config_hash']})"
            )
            if args.json is not None:
                Path(args.json).write_text(_json.dumps(analysis, indent=2))
                print(f"wrote analysis JSON to {args.json}")
    elif action == "status":
        job = client.job(args.job_id)
        progress = job["progress"]
        print(
            f"job {job['id']}: {job['state']} "
            f"({progress['fraction']:.0%}, stage "
            f"{progress['current_stage'] or '-'})"
        )
    elif action == "result":
        analysis = client.result(args.job_id)
        if args.json is not None:
            Path(args.json).write_text(_json.dumps(analysis, indent=2))
            print(f"wrote analysis JSON to {args.json}")
        else:
            print(_json.dumps(analysis["report"], indent=2))
    elif action == "cancel":
        response = client.cancel(args.job_id)
        print(
            f"job {response['job']['id']}: cancel={response['cancel']} "
            f"(state {response['job']['state']})"
        )
    elif action == "list":
        jobs = client.jobs(limit=args.limit, state=args.state)
        if not jobs:
            print("no jobs")
        for job in jobs:
            print(
                f"{job['id']}  {job['state']:<9}  "
                f"{job['progress']['fraction']:.0%}"
            )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from .client import ServiceClient
    from .config import config_to_dict
    from .serialization import annotation_to_dict
    from .video.synthesis.motion import JumpParameters

    config_dict = config_to_dict(_resolve_cli_config(args))
    config_dict["streaming"]["warmup_frames"] = args.warmup

    if args.video is not None:
        video = VideoSequence.load(args.video)
        annotation = None
    else:
        jump = synthesize_jump(
            SyntheticJumpConfig(
                seed=args.seed, params=JumpParameters(num_frames=args.frames)
            )
        )
        video = jump.video
        annotation = annotation_to_dict(
            simulate_human_annotation(
                jump.motion.poses[0],
                jump.dims,
                mask=jump.person_masks[0],
                rng=np.random.default_rng(args.seed),
            )
        )

    def run(client: ServiceClient) -> int:
        job = client.submit_stream(
            annotation=annotation, seed=args.seed, config=config_dict
        )
        job_id = job["id"]
        print(f"stream job {job_id} open (warmup {args.warmup} frames)")
        frames = video.frames
        provisional_seen = False
        for start in range(0, len(frames), args.chunk):
            response = client.push_frames(
                job_id, frames[start : start + args.chunk]
            )
            block = response["job"]["stream"]
            provisional = block["provisional"] or {}
            estimate = provisional.get("estimate")
            line = (
                f"pushed {block['frames_received']}/{len(frames)} frames "
                f"(queued {response['queued']}, "
                f"phase {provisional.get('phase') or 'pending'})"
            )
            if estimate:
                provisional_seen = True
                line += (
                    f"; provisional takeoff {estimate['takeoff_frame']} "
                    f"landing {estimate['landing_frame']}"
                )
                if estimate.get("score") is not None:
                    line += f" score {estimate['score']:.4f}"
            print(line)
        # Every frame is queued; give the worker a bounded window to
        # surface a provisional estimate before the stream closes.
        deadline = _time.monotonic() + args.timeout
        while not provisional_seen and _time.monotonic() < deadline:
            provisional = client.job(job_id)["stream"]["provisional"] or {}
            if provisional.get("estimate"):
                provisional_seen = True
                break
            _time.sleep(0.05)
        client.eof(job_id)
        print(f"eof sent (provisional before eof: {provisional_seen})")
        analysis = client.wait(job_id, timeout=args.timeout)
        print(
            f"job {job_id} succeeded: score "
            f"{analysis['report']['score']:.4f} "
            f"(config {analysis['config_hash']})"
        )
        if args.json is not None:
            Path(args.json).write_text(_json.dumps(analysis, indent=2))
            print(f"wrote analysis JSON to {args.json}")
        if args.require_provisional and not provisional_seen:
            print(
                "FAIL: no provisional estimate arrived before eof",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.url is not None:
        return run(ServiceClient(args.url))
    from .service import ServiceHandle

    with ServiceHandle() as handle:
        return run(ServiceClient(handle.address))


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from .faults import default_fault_grid, run_chaos
    from .video.synthesis.dataset import synthesize_jump as _synthesize

    config = _resolve_cli_config(args)
    actors = getattr(args, "actors", 1)
    if args.video is not None:
        video = VideoSequence.load(args.video)
        annotation = None
    elif actors > 1:
        from .pipeline import multi_actor_config
        from .video.synthesis import (
            MultiActorJumpConfig,
            synthesize_multi_jump,
        )

        config = multi_actor_config(config, actors=actors)
        video = synthesize_multi_jump(
            MultiActorJumpConfig(seed=args.seed, actors=actors)
        ).video
        annotation = None
    else:
        jump = _synthesize(SyntheticJumpConfig(seed=args.seed))
        video = jump.video
        annotation = simulate_human_annotation(
            jump.motion.poses[0],
            jump.dims,
            mask=jump.person_masks[0],
            rng=np.random.default_rng(args.seed),
        )
    if args.ops:
        from .faults import OPS_FAULT_KINDS, run_ops_chaos

        print(f"ops chaos sweep: {', '.join(OPS_FAULT_KINDS)}")
        report = run_ops_chaos(
            video, annotation=annotation, config=config, seed=args.seed
        )
    else:
        plan = default_fault_grid(seed=args.seed, stage=args.stage)
        mode = "streaming" if args.stream else "batch"
        print(f"chaos sweep ({mode}): {plan.describe()}")
        report = run_chaos(
            video,
            annotation=annotation,
            config=config,
            plan=plan,
            rng_seed=args.seed,
            streaming=args.stream,
        )
    print()
    print(report.render_table())
    if args.json is not None:
        Path(args.json).write_text(_json.dumps(report.to_dict(), indent=2))
        print(f"wrote chaos report JSON to {args.json}")
    if report.survival_rate < args.min_survival:
        print(
            f"FAIL: survival {report.survival_rate:.0%} below the "
            f"required {args.min_survival:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from .perf.bench import compare_to_baseline, run_bench

    # Unlike analyze/demo, an unconfigured bench defaults to the `fast`
    # preset (run_bench's default) rather than the paper defaults.
    customised = (
        args.preset or args.config or args.overrides or args.fast
    )
    config = _resolve_cli_config(args) if customised else None
    baseline = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline file at {baseline_path}", file=sys.stderr)
            return 1
        baseline = _json.loads(baseline_path.read_text())
    frames = args.frames
    if frames is None:
        if baseline is not None:
            # Gate at the baseline's frame count: fixed per-run costs
            # amortise differently across video lengths, so comparing
            # frames/sec at mismatched lengths measures the mismatch,
            # not a regression.
            frames = int(baseline.get("params", {}).get("frames", 24))
        else:
            frames = 10 if args.quick else 24
    report = run_bench(
        config,
        frames=frames,
        workers=args.workers,
        seed=args.seed,
        quick=args.quick,
    )
    sections = report["sections"]
    for backend, timing in sections["segmentation"]["backends"].items():
        print(
            f"segmentation[{backend}]: {timing['frames_per_sec']} frames/sec "
            f"({timing['seconds']}s)"
        )
    ga = sections["ga_single_frame"]
    print(
        f"single-frame GA: incremental "
        f"{ga['incremental']['evaluations_per_sec']} evals/sec vs full "
        f"{ga['full']['evaluations_per_sec']} evals/sec "
        f"({ga['speedup']}x, identical best: {ga['identical_best']})"
    )
    print(
        f"tracking: {sections['tracking']['frames_per_sec']} frames/sec"
    )
    loc = sections.get("localization")
    if loc:
        print(
            f"localization: {loc['windows_found']} windows in "
            f"{loc['frames']} frames at {loc['frames_per_sec']} frames/sec "
            f"({loc['windows_per_sec']} windows/sec)"
        )
    e2e = sections["end_to_end"]
    print(
        f"end-to-end: baseline {e2e['baseline']['seconds']}s, optimized "
        f"{e2e['optimized']['seconds']}s -> {e2e['speedup']}x speedup"
    )
    ttfr = sections["time_to_first_result"]
    print(
        f"time to first result: stream {ttfr['first_result_seconds']}s "
        f"(warmup {ttfr['warmup_frames']}) vs batch "
        f"{ttfr['batch_seconds']}s -> {ttfr['ratio_vs_batch']}x"
    )
    multi = sections.get("multi_actor")
    if multi:
        print(
            f"multi-actor: {multi['actors']} actors -> {multi['tracks']} "
            f"tracks in {multi['seconds']}s "
            f"({multi['overhead_vs_single']}x single-actor)"
        )
    if args.out is not None:
        Path(args.out).write_text(_json.dumps(report, indent=2) + "\n")
        print(f"wrote bench report to {args.out}")
    if baseline is not None:
        ok, message = compare_to_baseline(
            report, baseline, max_regression=args.max_regression
        )
        if not ok:
            print(f"FAIL: {message}", file=sys.stderr)
            return 1
        print(f"OK: {message}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="slj",
        description="Standing-long-jump motion analysis (Hsu et al. 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_syn = sub.add_parser("synthesize", help="generate a synthetic jump video")
    p_syn.add_argument("--out", default="jump_out", help="output directory")
    p_syn.add_argument("--seed", type=int, default=0)
    p_syn.add_argument(
        "--violate", nargs="*", metavar="E#", help="standards to violate (E1..E7)"
    )
    p_syn.add_argument(
        "--frames", action="store_true", help="also dump per-frame PNGs"
    )
    p_syn.set_defaults(func=_cmd_synthesize)

    p_ana = sub.add_parser("analyze", help="analyze a saved video (.npz)")
    p_ana.add_argument("video", help="video .npz written by synthesize")
    p_ana.add_argument(
        "--annotation",
        choices=["auto", "ground-truth"],
        default="ground-truth",
        help="first-frame stick model source",
    )
    p_ana.add_argument("--seed", type=int, default=0)
    p_ana.add_argument(
        "--json", default=None, metavar="PATH", help="also write the analysis as JSON"
    )
    p_ana.add_argument(
        "--stature-cm",
        type=float,
        default=None,
        help="jumper's real height for pixel→cm calibration",
    )
    p_ana.add_argument(
        "--age", type=int, default=None, help="age for distance grading (6-12)"
    )
    p_ana.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage timing table and pipeline counters",
    )
    _add_config_arguments(p_ana)
    p_ana.set_defaults(func=_cmd_analyze)

    p_demo = sub.add_parser("demo", help="synthesize and analyze in one go")
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument(
        "--violate", nargs="*", metavar="E#", help="standards to violate (E1..E7)"
    )
    p_demo.add_argument(
        "--actors",
        type=int,
        default=1,
        help="number of jumpers in the scene; >1 enables multi-actor "
        "tracking and prints one report per track",
    )
    p_demo.add_argument(
        "--long",
        action="store_true",
        help="synthesize a long clip (dead time + --attempts jumps), "
        "localise the attempts and score each one",
    )
    p_demo.add_argument(
        "--attempts",
        type=int,
        default=2,
        help="attempts in the synthetic long clip (with --long)",
    )
    p_demo.add_argument(
        "--min-attempts",
        type=int,
        default=0,
        help="with --long, exit 1 unless at least this many attempts "
        "are found (the CI localisation smoke gate)",
    )
    p_demo.add_argument(
        "--json", default=None, metavar="PATH", help="also write the analysis as JSON"
    )
    p_demo.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage timing table and pipeline counters",
    )
    _add_config_arguments(p_demo)
    p_demo.set_defaults(func=_cmd_demo)

    p_loc = sub.add_parser(
        "localize",
        help="find the attempt windows of a video without scoring them",
    )
    p_loc.add_argument(
        "--video",
        default=None,
        metavar="PATH",
        help="video .npz to localise (default: synthesize a long clip)",
    )
    p_loc.add_argument("--seed", type=int, default=0)
    p_loc.add_argument(
        "--attempts",
        type=int,
        default=2,
        help="attempts in the synthetic clip when no --video is given",
    )
    p_loc.add_argument(
        "--json", default=None, metavar="PATH", help="also write the result as JSON"
    )
    _add_config_arguments(p_loc)
    p_loc.set_defaults(func=_cmd_localize)

    p_serve = sub.add_parser("serve", help="run the analysis web service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=300.0,
        help="per-request analysis deadline in seconds (504 beyond it)",
    )
    p_serve.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="simultaneous analyses before the service answers 503",
    )
    p_serve.add_argument(
        "--state-dir",
        default=None,
        metavar="PATH",
        help="crash-safe state directory: persists the job store and "
        "stage checkpoints there, so interrupted jobs resume after a "
        "restart instead of failing",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds a graceful stop (SIGTERM/Ctrl-C) waits for "
        "in-flight jobs before cancelling what is still queued",
    )
    p_serve.add_argument(
        "--procs",
        type=int,
        default=1,
        help="worker processes sharing one listener socket (kernel-"
        "balanced accept); needs --state-dir so the workers drain one "
        "shared job queue",
    )
    p_serve.add_argument(
        "--job-deadline",
        type=float,
        default=0.0,
        help="soft per-job deadline in seconds; the watchdog fails "
        "jobs beyond it and reclaims their worker slot (0 = off)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_jobs = sub.add_parser(
        "jobs", help="talk to a running service's async job API (/v1/jobs)"
    )
    p_jobs.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="base URL of a running `slj serve` instance",
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    pj_submit = jobs_sub.add_parser(
        "submit", help="submit a video for asynchronous analysis"
    )
    pj_submit.add_argument("video", help="video .npz written by synthesize")
    pj_submit.add_argument("--seed", type=int, default=0)
    pj_submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    pj_submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait with --wait before giving up",
    )
    pj_submit.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="with --wait, write the final analysis JSON here",
    )
    _add_config_arguments(pj_submit)

    pj_status = jobs_sub.add_parser("status", help="one job's state + progress")
    pj_status.add_argument("job_id")

    pj_result = jobs_sub.add_parser("result", help="fetch a succeeded job's analysis")
    pj_result.add_argument("job_id")
    pj_result.add_argument(
        "--json", default=None, metavar="PATH", help="write the analysis JSON here"
    )

    pj_cancel = jobs_sub.add_parser("cancel", help="cancel a queued or running job")
    pj_cancel.add_argument("job_id")

    pj_list = jobs_sub.add_parser("list", help="list recent jobs (newest first)")
    pj_list.add_argument("--limit", type=int, default=20)
    pj_list.add_argument(
        "--state",
        default=None,
        help="filter: submitted/running/succeeded/failed/cancelled",
    )
    p_jobs.set_defaults(func=_cmd_jobs)

    p_stream = sub.add_parser(
        "stream",
        help="feed a video frame by frame through a streaming job and "
        "watch provisional results evolve",
    )
    p_stream.add_argument(
        "--url",
        default=None,
        help="base URL of a running `slj serve` instance "
        "(default: start an in-process service for the demo)",
    )
    p_stream.add_argument(
        "--video",
        default=None,
        metavar="PATH",
        help="video .npz to stream (default: synthesize a jump)",
    )
    p_stream.add_argument(
        "--frames",
        type=int,
        default=24,
        help="synthetic jump length when no --video is given",
    )
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument(
        "--chunk",
        type=int,
        default=4,
        help="frames per POST /v1/jobs/{id}/frames chunk",
    )
    p_stream.add_argument(
        "--warmup",
        type=int,
        default=4,
        help="streaming.warmup_frames for the job's config "
        "(0 = batch-identical buffering; >= 2 = live mode)",
    )
    p_stream.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait for the final result",
    )
    p_stream.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the final analysis JSON here",
    )
    p_stream.add_argument(
        "--require-provisional",
        action="store_true",
        help="exit 1 unless a provisional estimate surfaced before eof "
        "(the CI streaming smoke gate)",
    )
    _add_config_arguments(p_stream)
    p_stream.set_defaults(func=_cmd_stream)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: one analysis per fault, survival report",
    )
    p_chaos.add_argument(
        "--video",
        default=None,
        metavar="PATH",
        help="video .npz to torture (default: a synthetic jump)",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--stage",
        default="tracking",
        help="pipeline stage targeted by the injected stage fault",
    )
    p_chaos.add_argument(
        "--actors",
        type=int,
        default=1,
        help="torture a synthetic multi-actor scene instead of the "
        "single-jumper video (>1 enables multi-actor tracking)",
    )
    p_chaos.add_argument(
        "--min-survival",
        type=float,
        default=0.0,
        help="exit non-zero when the survival rate falls below this "
        "fraction (CI gate)",
    )
    p_chaos.add_argument(
        "--json", default=None, metavar="PATH", help="also write the report as JSON"
    )
    p_chaos.add_argument(
        "--stream",
        action="store_true",
        help="feed each faulted video frame by frame through the "
        "streaming analyzer instead of one batch analyze()",
    )
    p_chaos.add_argument(
        "--ops",
        action="store_true",
        help="run the process-level (operational) chaos grid instead: "
        "kill a worker mid-job, restart the service mid-stream, wedge "
        "a worker past the watchdog, drain under load, trip and "
        "recover the circuit breaker",
    )
    _add_config_arguments(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the hot paths and write a machine-readable report",
    )
    p_bench.add_argument(
        "--frames",
        type=int,
        default=None,
        help="synthetic jump length (default: 24, or 10 with --quick, "
        "or the baseline's frame count when gating)",
    )
    p_bench.add_argument(
        "--workers", type=int, default=4, help="parallel worker count"
    )
    p_bench.add_argument("--seed", type=int, default=3)
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: short video, trimmed GA budget, no "
        "process-pool section",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report here (e.g. BENCH_6.json)",
    )
    p_bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed bench JSON to gate against (exit 1 on regression)",
    )
    p_bench.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed end-to-end slowdown factor vs the baseline",
    )
    _add_config_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_eval = sub.add_parser(
        "evaluate", help="corpus evaluation: detection + tracking accuracy"
    )
    p_eval.add_argument(
        "--seeds", type=int, nargs="*", default=[0], help="clean-jump seeds"
    )
    p_eval.add_argument(
        "--flaws", action="store_true", help="also include one jump per flaw"
    )
    _add_config_arguments(p_eval)
    p_eval.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Library failures (any :class:`~repro.errors.ReproError`) are
    reported as a one-line ``error[Type]: message`` on stderr with exit
    code 2 — no traceback for expected failure modes.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
