"""Benchmark harness behind ``slj bench``.

Times the hot paths of the reproduction on a synthetic jump and
reports a machine-readable JSON document (committed as
``BENCH_4.json``):

* ``segmentation`` — frames/sec of the five-step pipeline per
  execution backend (serial / threads / processes);
* ``ga_single_frame`` — the Shoji-style single-frame GA with and
  without incremental elite-fitness reuse (evaluations/sec and the
  proof that both reach the identical best fitness);
* ``tracking`` — per-frame temporal tracking throughput, read from the
  end-to-end run's stage trace;
* ``end_to_end`` — a full :meth:`JumpAnalyzer.analyze` with the
  legacy kernels + full GA re-evaluation (the pre-perf-layer
  baseline) versus the optimised defaults, and their speedup;
* ``time_to_first_result`` — how long a live stream
  (:meth:`JumpAnalyzer.open_stream`, ``warmup_frames=4``) takes to
  produce its first tracked-frame update, against the batch
  end-to-end latency it replaces;
* ``scale_out`` — the multi-process story: per-task payload bytes for
  a pickled frame versus a shared-memory :class:`FrameDescriptor`,
  per-backend dispatch overhead on a no-op task, and segmentation
  throughput at several frame sizes for serial / threads / pickled
  processes / shared-memory processes;
* ``fitness_batch`` — the population-batched
  :meth:`SilhouetteFitness.evaluate` against a per-chromosome loop
  (evaluations/sec and the batch speedup), so the batching claim in
  the docs stays a measured number;
* ``localization`` — the temporal attempt-localisation front-stage
  (:func:`repro.localization.localize_attempts`) over a long
  multi-attempt clip with dead time: frames/sec of the scan and
  attempt windows found per second.

The report also records machine info and the config hash, so two
bench files are comparable at a glance.  :func:`compare_to_baseline`
implements the CI gate: fail when end-to-end throughput regresses by
more than the allowed factor against a committed baseline file.
"""

from __future__ import annotations

import dataclasses
import os
import platform
import time
from typing import Any, Callable

import numpy as np

from .compat import legacy_hot_paths
from .executors import BACKENDS, ParallelConfig

#: Bumped when the JSON schema changes shape.
BENCH_VERSION = 1


def machine_info() -> dict[str, Any]:
    """The host facts that make timings comparable across runs."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _with_parallel(config: Any, parallel: ParallelConfig) -> Any:
    return dataclasses.replace(config, parallel=parallel)


def _with_incremental(config: Any, incremental: bool) -> Any:
    tracker = config.tracker
    ga = dataclasses.replace(tracker.ga, incremental=incremental)
    return dataclasses.replace(
        config, tracker=dataclasses.replace(tracker, ga=ga)
    )


def _bench_segmentation(
    config: Any, video: Any, workers: int, backends: tuple[str, ...]
) -> dict[str, Any]:
    from ..segmentation.pipeline import SegmentationPipeline

    results: dict[str, Any] = {}
    for backend in backends:
        parallel = ParallelConfig(backend=backend, workers=workers)
        pipeline = SegmentationPipeline(config.segmentation, parallel=parallel)
        seconds, segmented = _timed(lambda: pipeline.segment_video(video))
        results[backend] = {
            "seconds": round(seconds, 4),
            "frames_per_sec": round(len(segmented) / seconds, 2),
        }
    return {"frames": len(video), "backends": results}


def _bench_ga_single_frame(
    mask: np.ndarray, dims: Any, quick: bool, seed: int
) -> dict[str, Any]:
    from ..ga.engine import GAConfig
    from ..ga.operators import OperatorConfig
    from ..ga.single_frame import SingleFrameConfig, estimate_single_frame

    generations = 40 if quick else 120
    base_ga = GAConfig(
        population_size=60,
        max_generations=generations,
        patience=None,
        operators=OperatorConfig(
            crossover_rate=0.2,
            mutation_rate=0.15,
            center_sigma=3.0,
            angle_sigma=25.0,
        ),
    )
    section: dict[str, Any] = {"generations": generations}
    for label, incremental in (("incremental", True), ("full", False)):
        config = SingleFrameConfig(
            ga=dataclasses.replace(base_ga, incremental=incremental)
        )
        seconds, estimate = _timed(
            lambda: estimate_single_frame(
                mask, dims, config, rng=np.random.default_rng(seed)
            )
        )
        evaluations = estimate.search.total_evaluations
        section[label] = {
            "seconds": round(seconds, 4),
            "evaluations": evaluations,
            "evaluations_per_sec": round(evaluations / seconds, 1),
            "best_fitness": float(estimate.fitness),
        }
    section["speedup"] = round(
        section["full"]["seconds"] / section["incremental"]["seconds"], 3
    )
    # Incremental reuse is seed-exact: same trajectory, fewer evaluations.
    section["identical_best"] = (
        section["incremental"]["best_fitness"] == section["full"]["best_fitness"]
    )
    return section


def _analyze_once(
    config: Any, jump: Any, annotation: Any, seed: int
) -> tuple[float, Any]:
    from ..pipeline import JumpAnalyzer

    analyzer = JumpAnalyzer(config)
    return _timed(
        lambda: analyzer.analyze(
            jump.video,
            annotation=annotation,
            rng=np.random.default_rng(seed),
        )
    )


def _bench_time_to_first_result(
    config: Any, jump: Any, annotation: Any, seed: int, batch_seconds: float
) -> dict[str, Any]:
    """Time a live stream's first tracked-frame update vs batch latency.

    ``batch_seconds`` is the already-measured optimised end-to-end
    time: the streaming pitch is that a caller sees a per-frame result
    after only the warmup prefix instead of waiting for the whole
    video, so the headline number is ``first_result_seconds /
    batch_seconds``.
    """
    from ..pipeline import JumpAnalyzer

    warmup = 4
    live_config = dataclasses.replace(
        config,
        streaming=dataclasses.replace(
            config.streaming, warmup_frames=warmup
        ),
    )
    analyzer = JumpAnalyzer(live_config)
    start = time.perf_counter()
    stream = analyzer.open_stream(
        annotation=annotation, rng=np.random.default_rng(seed)
    )
    first_result_seconds = None
    for frame in jump.video:
        update = stream.push_frame(frame)
        if first_result_seconds is None and update.phase == "tracking":
            first_result_seconds = time.perf_counter() - start
    stream.finish()
    total_seconds = time.perf_counter() - start
    if first_result_seconds is None:  # video shorter than the warmup
        first_result_seconds = total_seconds
    return {
        "warmup_frames": warmup,
        "frames": len(jump.video),
        "batch_seconds": round(batch_seconds, 4),
        "first_result_seconds": round(first_result_seconds, 4),
        "stream_total_seconds": round(total_seconds, 4),
        "ratio_vs_batch": round(first_result_seconds / batch_seconds, 4),
    }


def _bench_multi_actor(
    config: Any, seed: int, frames: int, single_seconds: float
) -> dict[str, Any]:
    """Time a 2-actor scene end to end against the single-actor run.

    The headline is ``overhead_vs_single``: a 2-actor analysis runs two
    GA pose trackers plus association, so the honest expectation is
    roughly 2x — this section keeps that factor visible so association
    overhead (the part that is *not* inherent) can't silently grow.
    """
    from ..pipeline import JumpAnalyzer, multi_actor_config
    from ..video.synthesis.multi import (
        MultiActorJumpConfig,
        synthesize_multi_jump,
    )

    actors = 2
    jump = synthesize_multi_jump(
        MultiActorJumpConfig(
            seed=seed, actors=actors, num_frames=max(frames, 8)
        )
    )
    analyzer = JumpAnalyzer(multi_actor_config(config, actors=actors))
    seconds, analysis = _timed(
        lambda: analyzer.analyze(
            jump.video, rng=np.random.default_rng(seed)
        )
    )
    return {
        "actors": actors,
        "frames": len(jump.video),
        "tracks": len(analysis.tracks),
        "seconds": round(seconds, 4),
        "frames_per_sec": round(len(jump.video) / seconds, 3),
        "overhead_vs_single": round(seconds / single_seconds, 3),
    }


def _noop_task(item: int) -> int:
    """Module-level no-op so process pools can pickle it by reference."""
    return item


def _bench_scale_out(
    config: Any, workers: int, seed: int, quick: bool
) -> dict[str, Any]:
    """Measure what multi-process scale-out actually costs and saves.

    Three sub-measurements, each answering one question:

    * ``payload`` — how many bytes cross the process boundary per task?
      A pickled frame scales with the image; a shared-memory
      :class:`~repro.perf.shm.FrameDescriptor` is a fixed ~100 bytes.
    * ``dispatch`` — what does each backend charge per task before any
      real work happens?  Timed with a no-op over a fixed task count,
      pool startup included (that is the cost a caller actually pays).
    * ``sizes`` — segmentation frames/sec per backend at two frame
      geometries, because pickling costs grow with the frame while
      descriptor shipping does not.
    """
    import pickle

    from ..segmentation.pipeline import SegmentationPipeline
    from ..video.synthesis.dataset import SyntheticJumpConfig, synthesize_jump
    from ..video.synthesis.motion import JumpParameters
    from ..video.synthesis.scene import SceneConfig
    from .executors import available_cpus, parallel_map
    from .shm import FrameDescriptor

    # ``processes`` is the backend as configured — pool size capped at
    # the host's schedulable CPUs, so on a single-CPU runner it runs
    # in-process and matches serial instead of paying for a pool that
    # cannot parallelise.  The ``processes_pickled`` / ``processes_shm``
    # variants force a real cross-process pool (``oversubscribe``) so
    # the true fan-out costs — and the shared-memory saving — stay
    # measured even on such hosts.
    section: dict[str, Any] = {
        "workers": workers,
        "available_cpus": available_cpus(),
    }

    # Per-backend dispatch overhead: a no-op task isolates the cost of
    # shipping work to the backend (serialisation, queues, pool spinup).
    tasks = 256
    items = list(range(tasks))
    dispatch: dict[str, Any] = {"tasks": tasks}
    dispatch_backends = ("serial", "threads") if quick else BACKENDS
    for backend in dispatch_backends:
        # oversubscribe: this measures what a *real* pool charges per
        # task, so don't let the CPU cap degenerate it in-process.
        parallel = ParallelConfig(
            backend=backend, workers=workers, oversubscribe=True
        )
        seconds = min(
            _timed(lambda: parallel_map(_noop_task, items, parallel))[0]
            for _ in range(1 if quick else 3)
        )
        dispatch[backend] = {
            "seconds": round(seconds, 4),
            "us_per_task": round(seconds / tasks * 1e6, 1),
        }
    section["dispatch"] = dispatch

    variants: tuple[tuple[str, ParallelConfig], ...] = (
        ("serial", ParallelConfig()),
        ("threads", ParallelConfig(backend="threads", workers=workers)),
    )
    if not quick:
        variants += (
            (
                "processes",
                ParallelConfig(backend="processes", workers=workers),
            ),
            (
                "processes_pickled",
                ParallelConfig(
                    backend="processes",
                    workers=workers,
                    shared_memory=False,
                    oversubscribe=True,
                ),
            ),
            (
                "processes_shm",
                ParallelConfig(
                    backend="processes",
                    workers=workers,
                    shared_memory=True,
                    oversubscribe=True,
                ),
            ),
        )

    geometries = ((120, 160),) if quick else ((120, 160), (180, 240))
    frames = 16 if quick else 48
    sizes: list[dict[str, Any]] = []
    for height, width in geometries:
        jump = synthesize_jump(
            SyntheticJumpConfig(
                seed=seed,
                params=JumpParameters(num_frames=frames),
                scene=SceneConfig(height=height, width=width),
            )
        )
        frame = np.ascontiguousarray(jump.video.frames[0])
        stack_shape = (len(jump.video),) + frame.shape
        descriptor = FrameDescriptor(
            name="slj-0-000000000000",
            shape=stack_shape,
            dtype=str(frame.dtype),
            index=0,
        )
        pickled_frame_bytes = len(pickle.dumps(frame))
        descriptor_bytes = len(pickle.dumps(descriptor))
        entry: dict[str, Any] = {
            "frames": len(jump.video),
            "height": height,
            "width": width,
            "payload": {
                "pickled_frame_bytes": pickled_frame_bytes,
                "descriptor_bytes": descriptor_bytes,
                "payload_reduction": round(
                    pickled_frame_bytes / descriptor_bytes, 1
                ),
            },
        }
        # Best-of-N: shared runners are noisy, and min-of-repeats is
        # the standard way (timeit) to estimate the undisturbed time.
        repeats = 1 if quick else 3
        for label, parallel in variants:
            pipeline = SegmentationPipeline(
                config.segmentation, parallel=parallel
            )
            seconds = float("inf")
            for _ in range(repeats):
                attempt, segmented = _timed(
                    lambda: pipeline.segment_video(jump.video)
                )
                seconds = min(seconds, attempt)
            entry[label] = {
                "seconds": round(seconds, 4),
                "frames_per_sec": round(len(segmented) / seconds, 2),
            }
        if "processes_shm" in entry:
            entry["processes_vs_serial"] = round(
                entry["serial"]["seconds"] / entry["processes"]["seconds"], 3
            )
            entry["shm_vs_serial"] = round(
                entry["serial"]["seconds"] / entry["processes_shm"]["seconds"],
                3,
            )
            entry["shm_vs_pickled"] = round(
                entry["processes_pickled"]["seconds"]
                / entry["processes_shm"]["seconds"],
                3,
            )
        sizes.append(entry)
    section["sizes"] = sizes
    return section


def _bench_fitness_batch(
    mask: np.ndarray, dims: Any, quick: bool, seed: int
) -> dict[str, Any]:
    """Population-batched fitness versus a per-chromosome Python loop.

    The GA has evaluated whole ``(P, 10)`` populations in one
    vectorised call since the perf layer landed; this section keeps
    that a measured claim rather than a documentation assertion.
    """
    from ..ga.population import random_population
    from ..model.fitness import SilhouetteFitness

    population = 64 if quick else 256
    repeats = 3 if quick else 10
    fitness = SilhouetteFitness(mask, dims)
    genes = random_population(
        mask, population, rng=np.random.default_rng(seed)
    )
    fitness.evaluate(genes)  # warm caches before timing

    def _batched() -> np.ndarray:
        for _ in range(repeats):
            values = fitness.evaluate(genes)
        return values

    def _per_row() -> np.ndarray:
        for _ in range(repeats):
            values = np.array(
                [float(fitness.evaluate(row)) for row in genes]
            )
        return values

    batched_seconds, batched_values = _timed(_batched)
    per_row_seconds, per_row_values = _timed(_per_row)
    evaluations = population * repeats
    return {
        "population": population,
        "repeats": repeats,
        "batched": {
            "seconds": round(batched_seconds, 4),
            "evaluations_per_sec": round(evaluations / batched_seconds, 1),
        },
        "per_row": {
            "seconds": round(per_row_seconds, 4),
            "evaluations_per_sec": round(evaluations / per_row_seconds, 1),
        },
        "batch_speedup": round(per_row_seconds / batched_seconds, 3),
        "identical_values": bool(
            np.allclose(batched_values, per_row_values)
        ),
    }


def _bench_localization(seed: int, quick: bool) -> dict[str, Any]:
    """Attempt localisation throughput on a long dead-time clip.

    The scan is a whole-video pass (motion energy + centroid track +
    hysteresis segmentation), so the honest unit is frames/sec of long
    clip processed; ``windows_per_sec`` is the headline the ISSUE asks
    for.  The full bench uses a ~300-frame two-attempt clip; ``quick``
    drops to the default 76-frame clip.
    """
    from ..localization import LocalizationConfig, localize_attempts
    from ..video.synthesis.longclip import LongClipConfig, synthesize_long_clip

    clip_config = (
        LongClipConfig(seed=seed)
        if quick
        else LongClipConfig(
            seed=seed,
            attempt_frames=60,
            dead_pre=60,
            dead_between=60,
            dead_post=60,
        )
    )
    clip = synthesize_long_clip(clip_config)
    config = LocalizationConfig(enabled=True)
    repeats = 3 if quick else 5
    localize_attempts(clip.video, config)  # warm caches before timing
    seconds = float("inf")
    for _ in range(repeats):
        attempt, result = _timed(lambda: localize_attempts(clip.video, config))
        seconds = min(seconds, attempt)
    return {
        "frames": len(clip.video),
        "attempts_truth": len(clip.windows),
        "windows_found": len(result.windows),
        "seconds": round(seconds, 4),
        "frames_per_sec": round(len(clip.video) / seconds, 2),
        "windows_per_sec": round(len(result.windows) / seconds, 2),
    }


def run_bench(
    config: Any = None,
    *,
    frames: int = 24,
    workers: int = 4,
    seed: int = 3,
    quick: bool = False,
) -> dict[str, Any]:
    """Run every bench section and return the JSON-ready report.

    ``config`` defaults to the ``fast`` preset.  ``quick`` trims the
    single-frame GA budget and skips the ``processes`` backend so the
    bench finishes in well under a minute — the CI smoke mode.  Frame
    count is the caller's choice: a regression gate must measure at the
    baseline's frame count, because fixed per-run costs amortise
    differently across video lengths.
    """
    from ..config import config_hash, get_preset
    from ..model.annotation import simulate_human_annotation
    from ..video.synthesis.dataset import SyntheticJumpConfig, synthesize_jump
    from ..video.synthesis.motion import JumpParameters

    if config is None:
        config = get_preset("fast")
    frames = max(frames, 4)  # a jump needs at least 4 frames

    jump = synthesize_jump(
        SyntheticJumpConfig(seed=seed, params=JumpParameters(num_frames=frames))
    )
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(seed),
    )

    backends = ("serial", "threads") if quick else BACKENDS
    sections: dict[str, Any] = {}
    sections["segmentation"] = _bench_segmentation(
        config, jump.video, workers, backends
    )
    sections["ga_single_frame"] = _bench_ga_single_frame(
        jump.person_masks[0], jump.dims, quick, seed
    )
    sections["fitness_batch"] = _bench_fitness_batch(
        jump.person_masks[0], jump.dims, quick, seed
    )
    sections["scale_out"] = _bench_scale_out(config, workers, seed, quick)
    sections["localization"] = _bench_localization(seed, quick)

    # Baseline: the pre-perf-layer code paths — reference distance
    # kernel, per-stick containment loop, full GA re-evaluation every
    # generation, the old fixed evaluation chunk of 64, serial frame
    # loop.
    baseline_config = _with_incremental(
        _with_parallel(config, ParallelConfig()), incremental=False
    )
    baseline_tracker = baseline_config.tracker
    baseline_config = dataclasses.replace(
        baseline_config,
        tracker=dataclasses.replace(
            baseline_tracker,
            fitness=dataclasses.replace(
                baseline_tracker.fitness, chunk_size=64
            ),
        ),
    )
    with legacy_hot_paths():
        baseline_seconds, _ = _analyze_once(
            baseline_config, jump, annotation, seed
        )

    # Optimised: the defaults, with the requested worker count.
    optimized_config = _with_parallel(
        config,
        dataclasses.replace(config.parallel, workers=workers)
        if not config.parallel.is_serial
        else config.parallel,
    )
    optimized_seconds, analysis = _analyze_once(
        optimized_config, jump, annotation, seed
    )

    tracking_timing = analysis.trace.timing("tracking")
    tracking_seconds = tracking_timing.seconds if tracking_timing else 0.0
    sections["tracking"] = {
        "seconds": round(tracking_seconds, 4),
        "frames_per_sec": round(frames / tracking_seconds, 2)
        if tracking_seconds
        else None,
        "fitness_evaluations": analysis.trace.counters.get("ga.evaluations"),
    }
    sections["end_to_end"] = {
        "baseline": {
            "seconds": round(baseline_seconds, 4),
            "frames_per_sec": round(frames / baseline_seconds, 3),
        },
        "optimized": {
            "seconds": round(optimized_seconds, 4),
            "frames_per_sec": round(frames / optimized_seconds, 3),
        },
        "speedup": round(baseline_seconds / optimized_seconds, 3),
    }
    sections["time_to_first_result"] = _bench_time_to_first_result(
        optimized_config, jump, annotation, seed, optimized_seconds
    )
    sections["multi_actor"] = _bench_multi_actor(
        optimized_config, seed, frames, optimized_seconds
    )

    return {
        "bench_version": BENCH_VERSION,
        "machine": machine_info(),
        "params": {
            "frames": frames,
            "workers": workers,
            "seed": seed,
            "quick": quick,
        },
        "config_hash": config_hash(config),
        "sections": sections,
    }


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 2.0,
) -> tuple[bool, str]:
    """CI gate: has end-to-end throughput regressed too far?

    Returns ``(ok, message)``.  The run fails only when the current
    optimised frames/sec falls more than ``max_regression``× below the
    committed baseline — loose enough to absorb shared-runner noise,
    tight enough to catch a real performance cliff.
    """
    try:
        committed = float(
            baseline["sections"]["end_to_end"]["optimized"]["frames_per_sec"]
        )
        measured = float(
            current["sections"]["end_to_end"]["optimized"]["frames_per_sec"]
        )
    except (KeyError, TypeError) as exc:
        return False, f"baseline file is missing end-to-end throughput: {exc}"
    floor = committed / max_regression
    message = (
        f"end-to-end {measured:.3f} frames/sec vs committed "
        f"{committed:.3f} (floor {floor:.3f} at {max_regression:g}x allowed "
        "regression)"
    )
    return measured >= floor, message
