"""Switch the optimised kernels back to their reference forms.

The PR-4 hot-path surgery (coordinate-split distance kernel, batched
containment test) is bitwise-identical to the original implementations.
This module keeps the originals reachable so that claim stays *testable*
(``tests/test_perf_parity.py``) and the bench harness can measure an
honest before/after on the same checkout.

Not thread-safe — it flips module/class globals.  Use only from tests
and ``slj bench``, never in library code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


@contextmanager
def legacy_hot_paths() -> Iterator[None]:
    """Run with the pre-optimisation kernels and selection draws."""
    from ..ga import engine
    from ..model import containment, geometry

    saved_impl = geometry._DISTANCE_IMPL
    saved_vectorized = containment.ContainmentChecker.vectorized
    saved_selection = engine._INLINE_SELECTION
    geometry._DISTANCE_IMPL = geometry._segment_distances_reference
    containment.ContainmentChecker.vectorized = False
    engine._INLINE_SELECTION = False
    try:
        yield
    finally:
        geometry._DISTANCE_IMPL = saved_impl
        containment.ContainmentChecker.vectorized = saved_vectorized
        engine._INLINE_SELECTION = saved_selection
