"""Zero-copy shared-memory frame plane for the ``processes`` backend.

The pipeline is embarrassingly parallel per frame, yet the
``processes`` backend historically pickled every frame across the fork
boundary — hundreds of kilobytes per task for work that reads the
pixels exactly once.  This module places a whole frame stack in one
:mod:`multiprocessing.shared_memory` segment so workers receive a
~100-byte :class:`FrameDescriptor` instead and map the pixels
zero-copy.

Lifecycle contract
------------------
* :meth:`SharedFrameArena.create` copies an array into a fresh
  segment and registers it in a process-local registry;
* workers attach lazily via :func:`attached_frame` (one mapping per
  segment per worker, cached, closed at worker exit);
* the creating process calls :meth:`~SharedFrameArena.close` +
  :meth:`~SharedFrameArena.unlink` (or uses the arena as a context
  manager) when the fan-out returns — **reading results out of the
  arena must happen before that**;
* an :mod:`atexit` hook unlinks anything the registry still holds, so
  even a crash between create and unlink leaves ``/dev/shm`` clean.

Workers attach *untracked*: CPython < 3.13 registers every attach with
that process's ``resource_tracker``, which would unlink the segment
when the worker exits — while the parent still owns it (python/cpython
#82300).  :func:`_attach` suppresses that registration, so only the
creator's tracker ever owns the name.

Graceful degradation is a first-class path, not an afterthought:
callers probe :func:`shm_available` and report failures through
:func:`record_fallback`, which logs a warning and feeds the
``shm_fallbacks`` counter surfaced in the service ``/metrics``.
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import uuid
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ReproError

logger = logging.getLogger("repro.perf.shm")

#: Every segment this library creates is named ``slj-<pid hex>-<nonce>``
#: so leak checks (tests, ops chaos) can scan ``/dev/shm`` for strays.
SEGMENT_PREFIX = "slj-"


class SharedMemoryUnavailable(ReproError):
    """Shared-memory segments cannot be created/attached on this host."""


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is usable here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return True


# ----------------------------------------------------------------------
# Fallback accounting (the `shm_fallbacks` /metrics counter)
# ----------------------------------------------------------------------
_fallback_lock = threading.Lock()
_fallback_count = 0


def record_fallback(reason: str) -> int:
    """Count one degradation to the pickled-copy path and warn once each.

    Returns the new cumulative count.  The counter is process-global on
    purpose: the service surfaces it in ``/metrics`` regardless of
    which pipeline instance fell back.
    """
    global _fallback_count
    with _fallback_lock:
        _fallback_count += 1
        count = _fallback_count
    logger.warning(
        "shared-memory frame plane unavailable (%s); "
        "falling back to pickled frames",
        reason,
    )
    return count


def fallback_count() -> int:
    """Cumulative shared-memory fallbacks in this process."""
    with _fallback_lock:
        return _fallback_count


def reset_fallback_count() -> None:
    """Zero the fallback counter (test isolation)."""
    global _fallback_count
    with _fallback_lock:
        _fallback_count = 0


# ----------------------------------------------------------------------
# Descriptors
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FrameDescriptor:
    """A ~100-byte ticket for one frame of a shared arena.

    ``shape``/``dtype`` describe the **whole** stacked array (frame 0
    is ``array[0]``), so a worker maps the segment once and serves
    every index from the same view.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    index: int = 0


_attach_lock = threading.Lock()


def _attach(name: str) -> Any:
    """Attach to a named segment without resource-tracker ownership."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    # Pre-3.13 attach registers the name with the resource tracker,
    # which is shared across forks — so a worker exiting (or merely
    # unregistering) would strip the creator's claim and either unlink
    # the live segment or double-unregister at shutdown.  Suppress the
    # registration instead of undoing it.
    from multiprocessing import resource_tracker

    def _register_except_shm(
        rname: str, rtype: str, _orig: Any = resource_tracker.register
    ) -> None:
        if rtype != "shared_memory":
            _orig(rname, rtype)

    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = _register_except_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# ----------------------------------------------------------------------
# The arena
# ----------------------------------------------------------------------
class SharedFrameArena:
    """A frame stack living in one shared-memory segment.

    Reference-counted: :meth:`attach_view` bumps the count and
    :meth:`close` drops it; the underlying mapping closes when the
    count reaches zero, and :meth:`unlink` (creator only) removes the
    segment from the OS.  ``with SharedFrameArena.create(...) as
    arena:`` closes *and* unlinks on exit.
    """

    _registry: dict[str, "SharedFrameArena"] = {}
    _registry_lock = threading.Lock()

    def __init__(self, segment: Any, shape: tuple[int, ...], dtype: np.dtype,
                 owner: bool) -> None:
        self._segment = segment
        self._shape = tuple(int(dim) for dim in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        self._refs = 1
        self._closed = False
        self._unlinked = False
        self._lock = threading.Lock()
        self.array: np.ndarray = np.ndarray(
            self._shape, dtype=self._dtype, buffer=segment.buf
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def _new_segment(cls, nbytes: int) -> Any:
        from multiprocessing import shared_memory

        name = f"{SEGMENT_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:12]}"
        return shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedFrameArena":
        """Copy ``array`` (frames stacked on axis 0) into a new segment."""
        if not shm_available():
            raise SharedMemoryUnavailable(
                "multiprocessing.shared_memory is not importable"
            )
        source = np.ascontiguousarray(array)
        try:
            segment = cls._new_segment(source.nbytes)
        except OSError as exc:
            raise SharedMemoryUnavailable(
                f"could not create a {source.nbytes}-byte segment: {exc}"
            ) from exc
        arena = cls(segment, source.shape, source.dtype, owner=True)
        arena.array[...] = source
        cls._register(arena)
        return arena

    @classmethod
    def create_empty(
        cls, shape: tuple[int, ...], dtype: Any
    ) -> "SharedFrameArena":
        """A zero-initialised arena (e.g. for masks written by workers)."""
        if not shm_available():
            raise SharedMemoryUnavailable(
                "multiprocessing.shared_memory is not importable"
            )
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        try:
            segment = cls._new_segment(nbytes)
        except OSError as exc:
            raise SharedMemoryUnavailable(
                f"could not create a {nbytes}-byte segment: {exc}"
            ) from exc
        arena = cls(segment, tuple(shape), dtype, owner=True)
        arena.array[...] = np.zeros((), dtype=dtype)
        cls._register(arena)
        return arena

    @classmethod
    def attach(cls, descriptor: FrameDescriptor) -> "SharedFrameArena":
        """Map an existing segment described by ``descriptor``."""
        try:
            segment = _attach(descriptor.name)
        except (OSError, ValueError) as exc:
            raise SharedMemoryUnavailable(
                f"could not attach segment {descriptor.name!r}: {exc}"
            ) from exc
        return cls(
            segment, descriptor.shape, np.dtype(descriptor.dtype), owner=False
        )

    # -- registry / crash cleanup --------------------------------------
    @classmethod
    def _register(cls, arena: "SharedFrameArena") -> None:
        with cls._registry_lock:
            cls._registry[arena.name] = arena

    @classmethod
    def _unregister(cls, name: str) -> None:
        with cls._registry_lock:
            cls._registry.pop(name, None)

    @classmethod
    def active_segments(cls) -> tuple[str, ...]:
        """Names of segments created here and not yet unlinked."""
        with cls._registry_lock:
            return tuple(sorted(cls._registry))

    @classmethod
    def active_segment_count(cls) -> int:
        """How many created segments are still linked (leak probe)."""
        with cls._registry_lock:
            return len(cls._registry)

    @classmethod
    def cleanup_all(cls) -> int:
        """Unlink every registered segment (atexit / test teardown)."""
        with cls._registry_lock:
            arenas = list(cls._registry.values())
        for arena in arenas:
            arena.close()
            arena.unlink()
        return len(arenas)

    # -- properties -----------------------------------------------------
    @property
    def name(self) -> str:
        """The OS-level segment name."""
        return self._segment.name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the stacked array."""
        return self._shape

    @property
    def nbytes(self) -> int:
        """Payload size of the stacked array."""
        return int(np.prod(self._shape)) * self._dtype.itemsize

    def __len__(self) -> int:
        return self._shape[0] if self._shape else 0

    # -- descriptors ----------------------------------------------------
    def descriptor(self, index: int = 0) -> FrameDescriptor:
        """The shippable ticket for frame ``index``."""
        return FrameDescriptor(
            name=self.name,
            shape=self._shape,
            dtype=self._dtype.str,
            index=int(index),
        )

    def descriptors(self) -> list[FrameDescriptor]:
        """One descriptor per frame, in stack order."""
        return [self.descriptor(index) for index in range(len(self))]

    def frame(self, index: int) -> np.ndarray:
        """Zero-copy view of frame ``index``."""
        return self.array[index]

    # -- lifecycle ------------------------------------------------------
    def attach_view(self) -> np.ndarray:
        """Bump the refcount and return the full-array view."""
        with self._lock:
            if self._closed:
                raise SharedMemoryUnavailable(
                    f"arena {self.name!r} is already closed"
                )
            self._refs += 1
        return self.array

    def close(self) -> None:
        """Drop one reference; unmap the segment at zero."""
        with self._lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
        # Views into the buffer must be dropped before close() or
        # CPython refuses to release the memoryview.
        self.array = None  # type: ignore[assignment]
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (creator only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        type(self)._unregister(self._segment.name)
        try:
            self._segment.unlink()
        except FileNotFoundError:  # already gone (e.g. test cleanup)
            pass

    def __enter__(self) -> "SharedFrameArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
        self.unlink()


# ----------------------------------------------------------------------
# Worker-side attachment cache
# ----------------------------------------------------------------------
# One mapping per segment per process; re-attaching per task would cost
# a mmap syscall per frame and defeat the point.  Closed at exit.
_attached: dict[str, SharedFrameArena] = {}
_attached_lock = threading.Lock()


def attached_array(descriptor: FrameDescriptor) -> np.ndarray:
    """The full stacked array behind ``descriptor``, cached per process."""
    with _attached_lock:
        arena = _attached.get(descriptor.name)
        if arena is None:
            arena = SharedFrameArena.attach(descriptor)
            _attached[descriptor.name] = arena
    return arena.array


def attached_frame(descriptor: FrameDescriptor) -> np.ndarray:
    """Zero-copy, read-only view of the frame ``descriptor`` names."""
    frame = attached_array(descriptor)[descriptor.index]
    frame.setflags(write=False)
    return frame


def detach_all() -> int:
    """Close every cached attachment (worker exit / test teardown)."""
    with _attached_lock:
        arenas = list(_attached.values())
        _attached.clear()
    for arena in arenas:
        arena.close()
    return len(arenas)


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    detach_all()
    SharedFrameArena.cleanup_all()
