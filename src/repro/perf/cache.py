"""LRU cache for built analyzers, keyed by resolved configuration.

Building a :class:`~repro.pipeline.JumpAnalyzer` validates the whole
config tree and constructs the stage runner and policies; the service
used to pay that on every request.  :class:`AnalyzerCache` makes
repeated configs free while keeping distinct configs fully isolated.

The key is the canonical :func:`~repro.config.config_hash` of the
config *plus* its ``parallel`` block: the hash deliberately ignores
execution backends (they cannot change results), but two analyzers
with different backends are still different objects and must not share
a cache slot.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Callable

from ..config import config_hash, config_to_dict
from ..errors import ConfigurationError


class AnalyzerCache:
    """Thread-safe LRU of ``factory(config)`` results.

    ``factory`` is injected (rather than importing the pipeline here)
    so the cache stays generic and trivially testable; the service
    passes ``JumpAnalyzer``.
    """

    def __init__(self, factory: Callable[[Any], Any], capacity: int = 8) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self._factory = factory
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached analyzers."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_for(config: Any) -> str:
        """Cache key: config hash extended with the execution block."""
        data = config_to_dict(config)
        parallel = data.get("parallel") if isinstance(data, dict) else None
        suffix = json.dumps(parallel, sort_keys=True, separators=(",", ":"))
        return f"{config_hash(data)}:{suffix}"

    def get(self, config: Any) -> Any:
        """Return the cached instance for ``config``, building on miss.

        Construction happens outside the lock so a slow build never
        blocks unrelated lookups; if two threads race on the same new
        key the first insert wins and the duplicate is discarded.
        """
        key = self.key_for(config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry

        built = self._factory(config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
            self._entries[key] = built
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return built

    def clear(self) -> None:
        """Drop every cached instance (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters for ``/metrics``: hits, misses, evictions, size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "capacity": self._capacity,
            }
