"""Performance layer: execution backends, caches, and the bench harness.

``repro.perf`` owns everything about *how fast* the pipeline runs and
nothing about *what* it computes: switching the
:class:`~repro.perf.executors.ParallelConfig` backend or reusing an
analyzer from the :class:`~repro.perf.cache.AnalyzerCache` never changes
a numeric result (``tests/test_perf_parity.py`` enforces this).

Submodules
----------
``executors``
    :class:`ParallelConfig` (``serial`` / ``threads`` / ``processes``)
    and :func:`parallel_map`, the one executor abstraction shared by
    frame segmentation, corpus evaluation, and the service batch path.
``cache``
    :class:`AnalyzerCache`, an LRU keyed by config hash so repeated
    service requests stop rebuilding :class:`~repro.pipeline.JumpAnalyzer`.
``pool``
    :class:`WorkerPool`, the counted bounded thread pool shared by the
    synchronous service path, the batch fan-out and the async job
    subsystem (:mod:`repro.jobs`).
``shm``
    :class:`SharedFrameArena` and :class:`FrameDescriptor`, the
    zero-copy shared-memory frame plane the ``processes`` backend uses
    to ship ~100-byte descriptors instead of pickled ndarrays.
``compat``
    Context manager restoring the pre-optimisation hot paths — used by
    the bench harness to measure honest speedups and by the parity
    tests to prove the optimised kernels are bitwise-identical.
``bench``
    The ``slj bench`` harness; writes the ``BENCH_*.json`` trajectory.

``bench`` is intentionally not imported here: it pulls in the full
pipeline stack, which the leaf modules above must stay independent of.
"""

from __future__ import annotations

from .cache import AnalyzerCache
from .executors import BACKENDS, ParallelConfig, parallel_map
from .pool import WorkerPool
from .shm import FrameDescriptor, SharedFrameArena, shm_available

__all__ = [
    "AnalyzerCache",
    "BACKENDS",
    "FrameDescriptor",
    "ParallelConfig",
    "SharedFrameArena",
    "WorkerPool",
    "parallel_map",
    "shm_available",
]
