"""The bounded worker pool shared by every service execution path.

PR 4 replaced the service's thread-per-request model with one bounded
``ThreadPoolExecutor``; this module promotes that pool into a small
reusable abstraction so the synchronous ``/analyze`` path, the batch
fan-out *and* the asynchronous job subsystem (:mod:`repro.jobs`) all
draw from the same fixed set of workers — one knob
(``ServiceConfig.pool_workers``) bounds the host's total analysis
parallelism no matter which API surface the work arrived through.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from ..errors import ConfigurationError


class WorkerPool:
    """A counted, bounded thread pool.

    Thin wrapper over :class:`~concurrent.futures.ThreadPoolExecutor`
    that tracks submitted / completed / active counts for ``/metrics``.
    Futures behave exactly like executor futures (cancellation of
    queued work included); cancelled futures count as completed.
    """

    def __init__(
        self, max_workers: int, thread_name_prefix: str = "worker"
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"worker pool needs max_workers >= 1, got {max_workers}"
            )
        self._max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=thread_name_prefix
        )
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._cancelled = 0
        self._reclaimed = 0
        self._reclaimed_total = 0

    @property
    def max_workers(self) -> int:
        """The configured worker count (reclaims excluded)."""
        return self._max_workers

    def submit(
        self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any
    ) -> Future:
        """Schedule ``fn(*args, **kwargs)``; returns its future."""
        with self._lock:
            self._submitted += 1
        future = self._executor.submit(fn, *args, **kwargs)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: Future) -> None:
        with self._lock:
            self._completed += 1
            if future.cancelled():
                self._cancelled += 1

    def reclaim_slot(self) -> None:
        """Grow the pool by one: a worker is wedged, route around it.

        The watchdog calls this after reaping a hung job — its thread
        still occupies an executor slot, so the executor's worker
        budget is raised by one to keep throughput at ``max_workers``.
        :meth:`release_reclaimed` undoes it when the zombie exits.
        """
        with self._lock:
            self._reclaimed += 1
            self._reclaimed_total += 1
            self._executor._max_workers += 1

    def release_reclaimed(self) -> None:
        """Shrink back after a reclaimed (zombie) worker finally exits."""
        with self._lock:
            if self._reclaimed <= 0:
                return
            self._reclaimed -= 1
            self._executor._max_workers -= 1

    def stats(self) -> dict[str, int]:
        """Counters for ``/metrics``: workers, submitted, completed, active."""
        with self._lock:
            return {
                "workers": self._max_workers,
                "submitted": self._submitted,
                "completed": self._completed,
                "cancelled": self._cancelled,
                "active": self._submitted - self._completed,
                "reclaimed": self._reclaimed,
                "reclaimed_total": self._reclaimed_total,
            }

    def shutdown(self, wait: bool = False, cancel_futures: bool = True) -> int:
        """Stop accepting work; optionally cancel queued futures.

        Returns how many queued futures were cancelled by this call —
        accepted work that never ran, which the service records as
        ``tasks_cancelled_at_shutdown``.
        """
        with self._lock:
            before = self._cancelled
        self._executor.shutdown(wait=wait, cancel_futures=cancel_futures)
        with self._lock:
            return self._cancelled - before
