"""Execution backends for embarrassingly parallel per-frame work.

One abstraction — :func:`parallel_map` — serves every fan-out site in
the pipeline: frame segmentation, corpus evaluation, and the service
batch endpoint.  The contract is strict so callers never need
backend-specific code:

* results come back in input order;
* an exception in any worker propagates to the caller;
* the ``serial`` backend (and any degenerate pool) runs everything
  in-process, byte-for-byte equivalent to a plain list comprehension.

The ``processes`` backend requires ``fn`` (and ``initializer``) to be
module-level picklable callables; per-worker state should be installed
through ``initializer`` so large constants (a background model, a
config) are shipped once per worker instead of once per item.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..errors import ConfigurationError

#: Recognised values of :attr:`ParallelConfig.backend`.
BACKENDS = ("serial", "threads", "processes")


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the host; a container or ``taskset`` can
    pin the process to fewer.  Pool sizing uses this number: starting
    more CPU-bound workers than schedulable CPUs only buys context
    switching.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """How per-frame / per-video fan-out executes.

    This is an *execution* knob, not a model knob: every backend
    produces numerically identical results (``tests/test_perf_parity.py``
    proves byte-identical analysis serialisations), so it is excluded
    from :func:`~repro.config.config_hash`.

    ``threads`` suits the numpy-dominated kernels here (they release
    the GIL); ``processes`` buys true parallelism for Python-heavy
    steps.  With ``shared_memory`` enabled (the default), fan-out
    sites that support it place frames in a
    :class:`~repro.perf.shm.SharedFrameArena` and ship ~100-byte
    descriptors to workers instead of pickled ndarrays; disabling it
    forces the legacy pickled-copy path.
    """

    backend: str = "serial"
    workers: int = 4
    shared_memory: bool = True
    # Allow more workers than schedulable CPUs.  Off by default: on a
    # CPU-bound fan-out, oversubscription is pure context-switch
    # overhead, and on a single-CPU host it makes every pool backend
    # strictly slower than the serial loop.  Benchmarks (and tests that
    # must exercise a real cross-process path regardless of the host)
    # turn it on explicitly.
    oversubscribe: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"parallel backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")

    def pool_size(self, num_items: int) -> int:
        """Workers actually worth starting for ``num_items`` tasks.

        Capped at :func:`available_cpus` unless ``oversubscribe`` is
        set; when this returns 1, :func:`parallel_map` skips the pool
        entirely and runs in-process.
        """
        cap = self.workers
        if not self.oversubscribe:
            cap = min(cap, available_cpus())
        return max(1, min(cap, num_items))

    @property
    def is_serial(self) -> bool:
        """True when no pool would be created."""
        return self.backend == "serial" or self.workers <= 1


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    config: ParallelConfig | None = None,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> list[Any]:
    """Ordered ``[fn(item) for item in items]`` under ``config``'s backend.

    ``initializer(*initargs)`` installs per-worker state.  When the call
    degenerates to in-process execution (serial backend, one worker, at
    most one item, or a pool capped to one worker by
    :meth:`ParallelConfig.pool_size`) the initializer runs once in the
    calling process, so ``fn`` may rely on it unconditionally.
    """
    work = list(items)
    cfg = config or ParallelConfig()
    workers = cfg.pool_size(len(work))
    if cfg.is_serial or len(work) <= 1 or workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]
    if cfg.backend == "threads":
        with ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-map",
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            return list(pool.map(fn, work))

    # processes: chunk to amortise IPC without starving the tail.
    chunksize = max(1, len(work) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=initializer,
        initargs=tuple(initargs),
    ) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))
