"""Execution backends for embarrassingly parallel per-frame work.

One abstraction — :func:`parallel_map` — serves every fan-out site in
the pipeline: frame segmentation, corpus evaluation, and the service
batch endpoint.  The contract is strict so callers never need
backend-specific code:

* results come back in input order;
* an exception in any worker propagates to the caller;
* the ``serial`` backend (and any degenerate pool) runs everything
  in-process, byte-for-byte equivalent to a plain list comprehension.

The ``processes`` backend requires ``fn`` (and ``initializer``) to be
module-level picklable callables; per-worker state should be installed
through ``initializer`` so large constants (a background model, a
config) are shipped once per worker instead of once per item.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..errors import ConfigurationError

#: Recognised values of :attr:`ParallelConfig.backend`.
BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """How per-frame / per-video fan-out executes.

    This is an *execution* knob, not a model knob: every backend
    produces numerically identical results (``tests/test_perf_parity.py``
    proves byte-identical analysis serialisations), so it is excluded
    from :func:`~repro.config.config_hash`.

    ``threads`` suits the numpy-dominated kernels here (they release
    the GIL); ``processes`` buys true parallelism for Python-heavy
    steps at the cost of pickling frames across process boundaries.
    """

    backend: str = "serial"
    workers: int = 4

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"parallel backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")

    def pool_size(self, num_items: int) -> int:
        """Workers actually worth starting for ``num_items`` tasks."""
        return max(1, min(self.workers, num_items))

    @property
    def is_serial(self) -> bool:
        """True when no pool would be created."""
        return self.backend == "serial" or self.workers <= 1


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    config: ParallelConfig | None = None,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> list[Any]:
    """Ordered ``[fn(item) for item in items]`` under ``config``'s backend.

    ``initializer(*initargs)`` installs per-worker state.  When the call
    degenerates to in-process execution (serial backend, one worker, or
    at most one item) the initializer runs once in the calling process,
    so ``fn`` may rely on it unconditionally.
    """
    work = list(items)
    cfg = config or ParallelConfig()
    if cfg.is_serial or len(work) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in work]

    workers = cfg.pool_size(len(work))
    if cfg.backend == "threads":
        with ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-map",
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            return list(pool.map(fn, work))

    # processes: chunk to amortise IPC without starving the tail.
    chunksize = max(1, len(work) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=initializer,
        initargs=tuple(initargs),
    ) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))
