"""Corpus-level evaluation: the study the paper left as future work.

"The scoring system will soon be developed and the results will be
compared with human evaluation."  Synthetic ground truth stands in for
the human evaluator: :func:`evaluate_detection` runs the full pipeline
over a corpus of labelled jumps (clean and flawed) and aggregates
per-standard detection statistics, and :func:`evaluate_tracking`
aggregates pose-tracking accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model.annotation import simulate_human_annotation
from .model.pose import mean_joint_error, pose_angle_errors
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .scoring.standards import Standard
from .video.synthesis.dataset import SyntheticJump


@dataclass(frozen=True, slots=True)
class StandardStats:
    """Detection counts for one standard over a corpus."""

    standard: Standard
    true_positive: int = 0  # flaw injected and detected
    false_negative: int = 0  # flaw injected, missed
    false_positive: int = 0  # flaw detected on a jump that conformed
    true_negative: int = 0

    @property
    def recall(self) -> float:
        """Detected fraction of injected flaws (1.0 when none injected)."""
        total = self.true_positive + self.false_negative
        return self.true_positive / total if total else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of conforming jumps falsely flagged."""
        total = self.false_positive + self.true_negative
        return self.false_positive / total if total else 0.0


@dataclass(frozen=True, slots=True)
class DetectionEvaluation:
    """Aggregate flaw-detection quality over a corpus."""

    per_standard: tuple[StandardStats, ...]
    num_jumps: int

    @property
    def overall_recall(self) -> float:
        """Micro-averaged recall over all injected flaws."""
        tp = sum(s.true_positive for s in self.per_standard)
        fn = sum(s.false_negative for s in self.per_standard)
        return tp / (tp + fn) if (tp + fn) else 1.0

    @property
    def overall_false_alarm_rate(self) -> float:
        """Micro-averaged false-alarm rate."""
        fp = sum(s.false_positive for s in self.per_standard)
        tn = sum(s.true_negative for s in self.per_standard)
        return fp / (fp + tn) if (fp + tn) else 0.0


def _analyze(jump: SyntheticJump, analyzer: JumpAnalyzer, seed: int):
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(seed),
    )
    return analyzer.analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(seed + 1)
    )


def evaluate_detection(
    jumps: list[SyntheticJump],
    config: AnalyzerConfig | None = None,
    seed: int = 0,
) -> DetectionEvaluation:
    """Run the full pipeline over a corpus and score flaw detection."""
    analyzer = JumpAnalyzer(config)
    counts = {
        standard: {"tp": 0, "fn": 0, "fp": 0, "tn": 0} for standard in Standard
    }
    for index, jump in enumerate(jumps):
        analysis = _analyze(jump, analyzer, seed + 10 * index)
        detected = set(analysis.report.violated_standards)
        injected = set(jump.violated)
        for standard in Standard:
            if standard in injected:
                key = "tp" if standard in detected else "fn"
            else:
                key = "fp" if standard in detected else "tn"
            counts[standard][key] += 1

    per_standard = tuple(
        StandardStats(
            standard=standard,
            true_positive=c["tp"],
            false_negative=c["fn"],
            false_positive=c["fp"],
            true_negative=c["tn"],
        )
        for standard, c in counts.items()
    )
    return DetectionEvaluation(per_standard=per_standard, num_jumps=len(jumps))


@dataclass(frozen=True, slots=True)
class TrackingEvaluation:
    """Aggregate pose-tracking accuracy over a corpus."""

    mean_joint_error: float
    max_joint_error: float
    mean_angle_error: float
    per_stick_angle_error: tuple[float, ...]
    num_jumps: int


def evaluate_tracking(
    jumps: list[SyntheticJump],
    config: AnalyzerConfig | None = None,
    seed: int = 0,
) -> TrackingEvaluation:
    """Run the full pipeline over a corpus and score tracking accuracy."""
    analyzer = JumpAnalyzer(config)
    joint_errors: list[float] = []
    stick_errors: list[np.ndarray] = []
    for index, jump in enumerate(jumps):
        analysis = _analyze(jump, analyzer, seed + 10 * index)
        for k in range(1, jump.num_frames):
            joint_errors.append(
                mean_joint_error(analysis.poses[k], jump.motion.poses[k], jump.dims)
            )
            stick_errors.append(
                pose_angle_errors(analysis.poses[k], jump.motion.poses[k])
            )
    per_stick = np.mean(stick_errors, axis=0)
    return TrackingEvaluation(
        mean_joint_error=float(np.mean(joint_errors)),
        max_joint_error=float(np.max(joint_errors)),
        mean_angle_error=float(per_stick.mean()),
        per_stick_angle_error=tuple(float(v) for v in per_stick),
        num_jumps=len(jumps),
    )


# ----------------------------------------------------------------------
# Multi-actor (MOT-style) evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class MOTEvaluation:
    """Labelled multi-actor tracking quality for one scene.

    Per-frame ground-truth actor boxes (from synthesis) are Hungarian-
    matched against the analysis' per-track pose boxes at
    ``iou_threshold``; the classic MOT ledgers follow:

    * ``id_switches`` — frames where an actor's matched track id
      differs from the id it matched in its previous matched frame;
    * ``track_purity`` — per track, the fraction of its matched frames
      spent on its majority actor (1.0 = the track never borrowed
      another actor's silhouette);
    * ``mota`` — MOTA-lite: ``1 - (misses + false_positives +
      id_switches) / gt_total`` (clamped at 0 below).
    """

    num_actors: int
    num_tracks: int
    gt_total: int  # ground-truth actor-frames with a visible box
    matches: int
    misses: int
    false_positives: int
    id_switches: int
    id_switches_per_actor: tuple[int, ...]
    track_purity: dict[str, float]
    mota: float


def evaluate_mot(jump, analysis, iou_threshold: float = 0.1) -> MOTEvaluation:
    """Score a multi-actor analysis against its scene's ground truth.

    ``jump`` is a :class:`~repro.video.synthesis.MultiActorJump`;
    ``analysis`` a :class:`~repro.pipeline.JumpAnalysis` with per-track
    results (a single-actor analysis works too — its synthesised
    primary track is matched like any other).
    """
    from .tracking.association import hungarian_match, iou_matrix
    from .tracking.track import pose_bounding_box

    shape = jump.video.frames.shape[1:3]
    tracks = list(analysis.tracks)
    num_frames = jump.num_frames

    # Per-frame predicted box of every track (None outside its span).
    def track_box(track, frame):
        offset = frame - track.start_frame
        if offset < 0 or offset >= len(track.tracking.poses):
            return None
        return pose_bounding_box(
            track.tracking.poses[offset], track.annotation.dims, shape
        )

    gt_total = matches = misses = false_positives = 0
    last_track_of: dict[int, str] = {}  # actor -> last matched track id
    switches = [0] * jump.num_actors
    assignment_log: list[tuple[int, str]] = []  # (actor, track_id) pairs

    for frame in range(num_frames):
        gt = [(i, box) for i, box in enumerate(jump.gt_boxes(frame)) if box]
        pred = [
            (t.track_id, box)
            for t in tracks
            if (box := track_box(t, frame)) is not None
        ]
        gt_total += len(gt)
        matrix = iou_matrix([b for _, b in gt], [b for _, b in pred])
        pairs = hungarian_match(matrix, iou_threshold)
        matches += len(pairs)
        misses += len(gt) - len(pairs)
        false_positives += len(pred) - len(pairs)
        for row, col in pairs:
            actor, track_id = gt[row][0], pred[col][0]
            previous = last_track_of.get(actor)
            if previous is not None and previous != track_id:
                switches[actor] += 1
            last_track_of[actor] = track_id
            assignment_log.append((actor, track_id))

    purity: dict[str, float] = {}
    for track in tracks:
        counts: dict[int, int] = {}
        for actor, track_id in assignment_log:
            if track_id == track.track_id:
                counts[actor] = counts.get(actor, 0) + 1
        total = sum(counts.values())
        purity[track.track_id] = (
            max(counts.values()) / total if total else 0.0
        )

    id_switches = sum(switches)
    mota = (
        max(0.0, 1.0 - (misses + false_positives + id_switches) / gt_total)
        if gt_total
        else 0.0
    )
    return MOTEvaluation(
        num_actors=jump.num_actors,
        num_tracks=len(tracks),
        gt_total=gt_total,
        matches=matches,
        misses=misses,
        false_positives=false_positives,
        id_switches=id_switches,
        id_switches_per_actor=tuple(switches),
        track_purity=purity,
        mota=mota,
    )
