"""Corpus-level evaluation: the study the paper left as future work.

"The scoring system will soon be developed and the results will be
compared with human evaluation."  Synthetic ground truth stands in for
the human evaluator: :func:`evaluate_detection` runs the full pipeline
over a corpus of labelled jumps (clean and flawed) and aggregates
per-standard detection statistics, and :func:`evaluate_tracking`
aggregates pose-tracking accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model.annotation import simulate_human_annotation
from .model.pose import mean_joint_error, pose_angle_errors
from .pipeline import AnalyzerConfig, JumpAnalyzer
from .scoring.standards import Standard
from .video.synthesis.dataset import SyntheticJump


@dataclass(frozen=True, slots=True)
class StandardStats:
    """Detection counts for one standard over a corpus."""

    standard: Standard
    true_positive: int = 0  # flaw injected and detected
    false_negative: int = 0  # flaw injected, missed
    false_positive: int = 0  # flaw detected on a jump that conformed
    true_negative: int = 0

    @property
    def recall(self) -> float:
        """Detected fraction of injected flaws (1.0 when none injected)."""
        total = self.true_positive + self.false_negative
        return self.true_positive / total if total else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of conforming jumps falsely flagged."""
        total = self.false_positive + self.true_negative
        return self.false_positive / total if total else 0.0


@dataclass(frozen=True, slots=True)
class DetectionEvaluation:
    """Aggregate flaw-detection quality over a corpus."""

    per_standard: tuple[StandardStats, ...]
    num_jumps: int

    @property
    def overall_recall(self) -> float:
        """Micro-averaged recall over all injected flaws."""
        tp = sum(s.true_positive for s in self.per_standard)
        fn = sum(s.false_negative for s in self.per_standard)
        return tp / (tp + fn) if (tp + fn) else 1.0

    @property
    def overall_false_alarm_rate(self) -> float:
        """Micro-averaged false-alarm rate."""
        fp = sum(s.false_positive for s in self.per_standard)
        tn = sum(s.true_negative for s in self.per_standard)
        return fp / (fp + tn) if (fp + tn) else 0.0


def _analyze(jump: SyntheticJump, analyzer: JumpAnalyzer, seed: int):
    annotation = simulate_human_annotation(
        jump.motion.poses[0],
        jump.dims,
        mask=jump.person_masks[0],
        rng=np.random.default_rng(seed),
    )
    return analyzer.analyze(
        jump.video, annotation=annotation, rng=np.random.default_rng(seed + 1)
    )


def evaluate_detection(
    jumps: list[SyntheticJump],
    config: AnalyzerConfig | None = None,
    seed: int = 0,
) -> DetectionEvaluation:
    """Run the full pipeline over a corpus and score flaw detection."""
    analyzer = JumpAnalyzer(config)
    counts = {
        standard: {"tp": 0, "fn": 0, "fp": 0, "tn": 0} for standard in Standard
    }
    for index, jump in enumerate(jumps):
        analysis = _analyze(jump, analyzer, seed + 10 * index)
        detected = set(analysis.report.violated_standards)
        injected = set(jump.violated)
        for standard in Standard:
            if standard in injected:
                key = "tp" if standard in detected else "fn"
            else:
                key = "fp" if standard in detected else "tn"
            counts[standard][key] += 1

    per_standard = tuple(
        StandardStats(
            standard=standard,
            true_positive=c["tp"],
            false_negative=c["fn"],
            false_positive=c["fp"],
            true_negative=c["tn"],
        )
        for standard, c in counts.items()
    )
    return DetectionEvaluation(per_standard=per_standard, num_jumps=len(jumps))


@dataclass(frozen=True, slots=True)
class TrackingEvaluation:
    """Aggregate pose-tracking accuracy over a corpus."""

    mean_joint_error: float
    max_joint_error: float
    mean_angle_error: float
    per_stick_angle_error: tuple[float, ...]
    num_jumps: int


def evaluate_tracking(
    jumps: list[SyntheticJump],
    config: AnalyzerConfig | None = None,
    seed: int = 0,
) -> TrackingEvaluation:
    """Run the full pipeline over a corpus and score tracking accuracy."""
    analyzer = JumpAnalyzer(config)
    joint_errors: list[float] = []
    stick_errors: list[np.ndarray] = []
    for index, jump in enumerate(jumps):
        analysis = _analyze(jump, analyzer, seed + 10 * index)
        for k in range(1, jump.num_frames):
            joint_errors.append(
                mean_joint_error(analysis.poses[k], jump.motion.poses[k], jump.dims)
            )
            stick_errors.append(
                pose_angle_errors(analysis.poses[k], jump.motion.poses[k])
            )
    per_stick = np.mean(stick_errors, axis=0)
    return TrackingEvaluation(
        mean_joint_error=float(np.mean(joint_errors)),
        max_joint_error=float(np.max(joint_errors)),
        mean_angle_error=float(per_stick.mean()),
        per_stick_angle_error=tuple(float(v) for v in per_stick),
        num_jumps=len(jumps),
    )
