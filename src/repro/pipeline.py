"""End-to-end jump analysis: video → silhouettes → poses → report.

:class:`JumpAnalyzer` composes the three parts of the paper's system
(Section 1): human detection (Section 2), pose estimation (Section 3)
and scoring (Section 4), plus the trajectory analysis extensions — as
stages of a :class:`~repro.runtime.PipelineRunner`.  Every run returns
a :class:`JumpAnalysis` carrying a :class:`~repro.runtime.RunTrace`
with per-stage wall-clock timings and the counters the layers
accumulated (GA generations, fitness evaluations, silhouette points).

The first-frame stick model must come from somewhere, exactly as in
the paper ("a trained person is asked to draw the stick figure for the
human object in the first frame"): pass a
:class:`~repro.model.annotation.FirstFrameAnnotation`, or let the
analyzer fall back to the automatic moment-based initialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .analysis.events import JumpEvents, detect_events
from .analysis.trajectory import PoseTrajectory
from .config.hashing import config_hash
from .config.schema import config_from_dict, config_to_dict
from .errors import SegmentationError
from .ga.temporal import TemporalPoseTracker, TrackerConfig, TrackingResult
from .model.annotation import FirstFrameAnnotation, auto_annotate
from .model.pose import StickPose
from .runtime import (
    FunctionStage,
    Instrumentation,
    PipelineRunner,
    RunTrace,
    StageContext,
)
from .scoring.distance import JumpMeasurement, measure_jump
from .scoring.report import JumpReport, JumpScorer
from .segmentation.pipeline import (
    FrameSegmentation,
    SegmentationConfig,
    SegmentationPipeline,
)
from .video.sequence import VideoSequence


@dataclass(frozen=True, slots=True)
class AnalyzerConfig:
    """Configuration of the full pipeline."""

    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    # Trajectory filtering before scoring.  "median" (default) removes
    # single-frame tracking spikes without shaving multi-frame extremes
    # — important because every rule aggregates with max/min over a
    # stage window.  "mean" is a plain moving average (it systematically
    # flattens the extremes the thresholds test); "kalman" is the
    # constant-velocity RTS smoother; "none" scores the raw track.
    smoothing_mode: str = "median"
    smoothing_window: int = 3

    def __post_init__(self) -> None:
        from .errors import ConfigurationError

        if self.smoothing_mode not in ("median", "mean", "kalman", "none"):
            raise ConfigurationError(
                "smoothing_mode must be median/mean/kalman/none, got "
                f"{self.smoothing_mode!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Recursive JSON-ready dict form (see :mod:`repro.config`)."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AnalyzerConfig":
        """Inverse of :meth:`to_dict`; unknown keys are errors."""
        return config_from_dict(cls, data)

    @property
    def hash(self) -> str:
        """Stable content hash of the resolved configuration."""
        return config_hash(self)


@dataclass(frozen=True, slots=True)
class JumpAnalysis:
    """Everything the pipeline produced for one video."""

    segmentations: tuple[FrameSegmentation, ...]
    background: np.ndarray
    annotation: FirstFrameAnnotation
    tracking: TrackingResult
    poses: tuple[StickPose, ...]  # smoothed track actually scored
    events: JumpEvents
    report: JumpReport
    measurement: JumpMeasurement
    trace: RunTrace  # per-stage timings and counters of this run
    # Provenance: the fully-resolved config that produced this analysis
    # and its stable hash — a report is reproducible from its own output.
    config: dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""

    @property
    def silhouettes(self) -> list[np.ndarray]:
        """Final person mask of every frame."""
        return [seg.person for seg in self.segmentations]


class JumpAnalyzer:
    """The complete standing-long-jump analysis system.

    The work is composed as runtime stages — ``segmentation``,
    ``annotation``, ``tracking``, ``smoothing``, ``events``,
    ``scoring`` and ``measurement`` — so every run is observable: pass
    an :class:`~repro.runtime.Instrumentation` (with a logging or
    in-memory sink) to :meth:`analyze`, or just read the returned
    :attr:`JumpAnalysis.trace`.
    """

    #: Top-level stage names, in execution order.
    STAGES = (
        "segmentation",
        "annotation",
        "tracking",
        "smoothing",
        "events",
        "scoring",
        "measurement",
    )

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config or AnalyzerConfig()
        self._runner = PipelineRunner(
            [
                FunctionStage("segmentation", self._stage_segmentation),
                FunctionStage("annotation", self._stage_annotation),
                FunctionStage("tracking", self._stage_tracking),
                FunctionStage("smoothing", self._stage_smoothing),
                FunctionStage("events", self._stage_events),
                FunctionStage("scoring", self._stage_scoring),
                FunctionStage("measurement", self._stage_measurement),
            ],
            name="jump-analysis",
        )

    @property
    def runner(self) -> PipelineRunner:
        """The underlying stage composition (for introspection)."""
        return self._runner

    # ------------------------------------------------------------------
    # Stages.  The main value flow is video → silhouettes → poses; the
    # side products (segmentations, tracking records, report, …) land
    # on the context's artifact blackboard.
    # ------------------------------------------------------------------
    def _stage_segmentation(
        self, video: VideoSequence, ctx: StageContext
    ) -> list[np.ndarray]:
        segmenter = SegmentationPipeline(
            self.config.segmentation, instrumentation=ctx.instrumentation
        )
        segmentations = segmenter.segment_video(video)
        silhouettes = [seg.person for seg in segmentations]
        if not silhouettes[0].any():
            raise SegmentationError(
                "no human object found in the first frame; cannot anchor "
                "the stick model"
            )
        ctx.artifacts["segmentations"] = tuple(segmentations)
        ctx.artifacts["background"] = segmenter.background
        return silhouettes

    def _stage_annotation(
        self, silhouettes: list[np.ndarray], ctx: StageContext
    ) -> list[np.ndarray]:
        if ctx.artifacts.get("annotation") is None:
            ctx.artifacts["annotation"] = auto_annotate(silhouettes[0])
            ctx.instrumentation.count("annotation.automatic", 1)
        return silhouettes

    def _stage_tracking(
        self, silhouettes: list[np.ndarray], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        annotation: FirstFrameAnnotation = ctx.require("annotation")
        tracker = TemporalPoseTracker(
            annotation.dims,
            self.config.tracker,
            instrumentation=ctx.instrumentation,
        )
        tracking = tracker.track(
            silhouettes, annotation.pose, rng=ctx.require("rng")
        )
        ctx.artifacts["tracking"] = tracking
        return tracking.poses

    def _stage_smoothing(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        cfg = self.config
        if cfg.smoothing_mode != "none" and cfg.smoothing_window > 1:
            trajectory = PoseTrajectory.from_poses(poses)
            if cfg.smoothing_mode == "median":
                trajectory = trajectory.median_filtered(cfg.smoothing_window)
            elif cfg.smoothing_mode == "kalman":
                from .analysis.kalman import kalman_smooth

                trajectory = kalman_smooth(trajectory)
            else:
                trajectory = trajectory.smoothed(cfg.smoothing_window)
            poses = tuple(trajectory.to_poses())
        ctx.artifacts["poses"] = poses
        return poses

    def _stage_events(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        annotation: FirstFrameAnnotation = ctx.require("annotation")
        ctx.artifacts["events"] = detect_events(poses, annotation.dims)
        return poses

    def _stage_scoring(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        events: JumpEvents = ctx.require("events")
        scorer = JumpScorer(instrumentation=ctx.instrumentation)
        ctx.artifacts["report"] = scorer.score(
            poses, takeoff_frame=events.takeoff_frame
        )
        return poses

    def _stage_measurement(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        annotation: FirstFrameAnnotation = ctx.require("annotation")
        ctx.artifacts["measurement"] = measure_jump(
            poses, annotation.dims, landing_frame=len(poses) - 1
        )
        return poses

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> JumpAnalysis:
        """Run segmentation, tracking, event detection and scoring.

        ``annotation`` provides the first-frame stick model (pose +
        body dimensions).  When omitted, the automatic moment-based
        initialiser runs on the first silhouette — convenient, but a
        human-drawn model is what the paper assumes and tracks better.

        ``instrumentation`` chooses the observability sink for this
        run; by default a fresh silent collector is used, so the
        returned :attr:`JumpAnalysis.trace` is always populated.
        """
        rng = rng if rng is not None else np.random.default_rng(0)

        config_dict = self.config.to_dict()
        resolved_hash = config_hash(config_dict)
        context = StageContext(
            instrumentation=instrumentation or Instrumentation()
        )
        context.artifacts["annotation"] = annotation
        context.artifacts["rng"] = rng
        context.metadata["config"] = config_dict
        context.metadata["config_hash"] = resolved_hash
        outcome = self._runner.run(video, context=context)

        artifacts: dict[str, Any] = outcome.context.artifacts
        return JumpAnalysis(
            segmentations=artifacts["segmentations"],
            background=artifacts["background"],
            annotation=artifacts["annotation"],
            tracking=artifacts["tracking"],
            poses=artifacts["poses"],
            events=artifacts["events"],
            report=artifacts["report"],
            measurement=artifacts["measurement"],
            trace=outcome.trace,
            config=config_dict,
            config_hash=resolved_hash,
        )


def analyze_video(
    video: VideoSequence,
    annotation: FirstFrameAnnotation | None = None,
    config: AnalyzerConfig | None = None,
    rng: np.random.Generator | None = None,
    instrumentation: Instrumentation | None = None,
) -> JumpAnalysis:
    """One-call convenience wrapper around :class:`JumpAnalyzer`."""
    return JumpAnalyzer(config).analyze(
        video, annotation=annotation, rng=rng, instrumentation=instrumentation
    )
