"""End-to-end jump analysis: video → silhouettes → poses → report.

:class:`JumpAnalyzer` composes the three parts of the paper's system
(Section 1): human detection (Section 2), pose estimation (Section 3)
and scoring (Section 4), plus the trajectory analysis extensions — as
stages of a :class:`~repro.runtime.PipelineRunner`.  Every run returns
a :class:`JumpAnalysis` carrying a :class:`~repro.runtime.RunTrace`
with per-stage wall-clock timings and the counters the layers
accumulated (GA generations, fitness evaluations, silhouette points).

The first-frame stick model must come from somewhere, exactly as in
the paper ("a trained person is asked to draw the stick figure for the
human object in the first frame"): pass a
:class:`~repro.model.annotation.FirstFrameAnnotation`, or let the
analyzer fall back to the automatic moment-based initialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from .analysis.events import JumpEvents, detect_events
from .analysis.trajectory import PoseTrajectory
from .config.hashing import config_hash
from .config.schema import config_from_dict, config_to_dict
from .errors import ConfigurationError, ReproError, SegmentationError, VideoError
from .ga.temporal import TemporalPoseTracker, TrackerConfig, TrackingResult
from .localization import (
    AttemptWindow,
    LocalizationConfig,
    LocalizationResult,
    localize_attempts,
)
from .model.annotation import FirstFrameAnnotation, auto_annotate
from .model.pose import StickPose
from .model.sticks import default_body
from .perf.executors import ParallelConfig
from .profiles import MovementProfile, get_profile, profile_names
from .runtime import (
    CancellationToken,
    FallbackPolicy,
    FunctionStage,
    Instrumentation,
    PipelineRunner,
    RetryPolicy,
    RunTrace,
    StageContext,
    StagePolicy,
)
from .scoring.distance import JumpMeasurement, measure_jump
from .scoring.report import JumpReport, JumpScorer
from .segmentation.pipeline import (
    FrameSegmentation,
    SegmentationConfig,
    SegmentationPipeline,
)
from .tracking import TrackAnalysis, TrackManager, TrackingConfig
from .video.sequence import VideoSequence


@dataclass(frozen=True, slots=True)
class RobustnessConfig:
    """Degrade-don't-die behaviour of the end-to-end pipeline.

    With ``enabled`` (the default), the analyzer attaches per-stage
    :class:`~repro.runtime.RetryPolicy` / :class:`~repro.runtime.FallbackPolicy`
    entries: stages named in ``retry_stages`` get ``stage_attempts``
    total tries against the exception types in ``catch``; stages named
    in ``fallback_stages`` substitute a best-effort value when they
    still fail, marking the run degraded on its trace and in
    :attr:`JumpAnalysis.diagnostics`.  Only the post-tracking stages
    (``smoothing``, ``events``, ``scoring``, ``measurement``) have
    meaningful substitutes; segmentation, annotation and tracking have
    none (tracking degradation is handled inside the tracker by
    :class:`~repro.ga.temporal.RecoveryConfig`).

    ``enabled=False`` restores strict fail-fast behaviour — the
    ``paper`` preset sets it, together with
    ``tracker.recovery.enabled=False``.
    """

    enabled: bool = True
    stage_attempts: int = 2
    retry_stages: tuple[str, ...] = (
        "segmentation",
        "annotation",
        "tracking",
        "smoothing",
        "events",
        "scoring",
        "measurement",
    )
    fallback_stages: tuple[str, ...] = (
        "smoothing",
        "events",
        "scoring",
        "measurement",
    )
    catch: tuple[str, ...] = ("ReproError",)

    def __post_init__(self) -> None:
        if self.stage_attempts < 1:
            raise ConfigurationError("robustness.stage_attempts must be >= 1")
        from .runtime import resolve_catch

        resolve_catch(self.catch)  # validate the names eagerly


@dataclass(frozen=True, slots=True)
class StreamingConfig:
    """Frame-at-a-time behaviour of the analyzer (see :mod:`repro.streaming`).

    ``warmup_frames`` is the number of leading frames buffered before
    Step 1 freezes and per-frame processing starts:

    * ``0`` (default) keeps the batch contract — every pushed frame is
      buffered and ``finish()`` runs the classic seven-stage pipeline
      over the whole sequence, byte-identical to feeding the same
      frames to ``JumpAnalyzer.analyze``;
    * ``>= 2`` goes *live* after the warm-up — the background is frozen
      from the warm-up prefix alone, every frame is segmented and
      tracked as it arrives, and ``push_frame`` returns provisional
      pose/event/score estimates.  The final background (hence the
      final analysis) then depends only on the prefix: that is the
      latency-for-context trade streaming makes, which is why this
      knob participates in ``config_hash``.

    ``background`` picks the live-mode Step-1 model: ``"warmup"``
    buffers the prefix and freezes it through the batch estimator;
    ``"running"`` uses the O(1)-memory incremental estimator (see
    :mod:`repro.segmentation.online`).
    """

    warmup_frames: int = 0
    background: str = "warmup"
    # Provisional per-frame output in live mode: re-detect events (and
    # re-score) on the pose prefix every ``provisional_every`` frames.
    # Errors in provisional estimation never interrupt the stream.
    provisional_events: bool = True
    provisional_scoring: bool = True
    provisional_every: int = 1

    def __post_init__(self) -> None:
        if self.warmup_frames < 0:
            raise ConfigurationError("streaming.warmup_frames must be >= 0")
        if self.warmup_frames == 1:
            raise ConfigurationError(
                "streaming.warmup_frames must be 0 (batch) or >= 2 "
                "(change detection needs two frames)"
            )
        if self.background not in ("warmup", "running"):
            raise ConfigurationError(
                "streaming.background must be 'warmup' or 'running', got "
                f"{self.background!r}"
            )
        if self.provisional_every < 1:
            raise ConfigurationError(
                "streaming.provisional_every must be >= 1"
            )


@dataclass(frozen=True, slots=True)
class AnalyzerConfig:
    """Configuration of the full pipeline."""

    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    # Multi-actor data association (see repro.tracking).  Disabled by
    # default: the paper's pipeline assumes one jumper per video.  When
    # enabled, segmentation should emit per-component candidates
    # (segmentation.max_components > 1) — multi_actor_config() builds a
    # coherent pair of settings.
    tracking: TrackingConfig = field(default_factory=TrackingConfig)
    robustness: RobustnessConfig = field(default_factory=RobustnessConfig)
    # Execution backend for the embarrassingly parallel stages (frame
    # segmentation, batch fan-out).  Never changes results, so it is
    # excluded from `config_hash` — see repro.perf.
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    # Trajectory filtering before scoring.  "median" (default) removes
    # single-frame tracking spikes without shaving multi-frame extremes
    # — important because every rule aggregates with max/min over a
    # stage window.  "mean" is a plain moving average (it systematically
    # flattens the extremes the thresholds test); "kalman" is the
    # constant-velocity RTS smoother; "none" scores the raw track.
    smoothing_mode: str = "median"
    smoothing_window: int = 3
    # Frame-at-a-time behaviour (warm-up length, provisional output).
    # The default keeps the batch contract; see StreamingConfig.
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    # Temporal localisation front-stage (find the attempts in a long
    # clip).  Off by default — the paper's "the clip is the jump"
    # contract; see repro.localization.
    localization: LocalizationConfig = field(default_factory=LocalizationConfig)
    # Which movement the tail stages score (events, rules, distance);
    # resolved through the MOVEMENT_PROFILES registry.  See
    # repro.profiles and docs/profiles.md.
    profile: str = "standing_long_jump"

    def __post_init__(self) -> None:
        from .errors import ConfigurationError

        if self.smoothing_mode not in ("median", "mean", "kalman", "none"):
            raise ConfigurationError(
                "smoothing_mode must be median/mean/kalman/none, got "
                f"{self.smoothing_mode!r}"
            )
        if self.profile not in profile_names():
            raise ConfigurationError(
                f"unknown movement profile {self.profile!r}; choose from: "
                f"{', '.join(profile_names())}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Recursive JSON-ready dict form (see :mod:`repro.config`)."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AnalyzerConfig":
        """Inverse of :meth:`to_dict`; unknown keys are errors."""
        return config_from_dict(cls, data)

    @property
    def hash(self) -> str:
        """Stable content hash of the resolved configuration."""
        return config_hash(self)


def multi_actor_config(
    base: AnalyzerConfig | None = None, actors: int = 2
) -> AnalyzerConfig:
    """An :class:`AnalyzerConfig` tuned for an ``actors``-jumper scene.

    Turns tracking on with ``max_tracks = actors`` (so a clean N-actor
    scene yields exactly N tracks) and widens segmentation to emit
    ``actors + 1`` component candidates per frame — one slack slot so a
    transient distractor blob cannot evict a real actor from the
    candidate list.  Everything else is inherited from ``base``.
    """
    if actors < 1:
        raise ConfigurationError(f"actors must be >= 1, got {actors}")
    base = base or AnalyzerConfig()
    return replace(
        base,
        segmentation=replace(base.segmentation, max_components=actors + 1),
        tracking=replace(base.tracking, enabled=True, max_tracks=actors),
    )


@dataclass(frozen=True, slots=True)
class AttemptAnalysis:
    """One localised attempt of a long clip, fully analysed.

    ``analysis`` is a complete :class:`JumpAnalysis` of the window's
    sub-clip — frame indices inside it (events, decisive frames) are
    *window-relative*; add ``window.start`` for absolute positions.
    """

    attempt_id: str  # "a0", "a1", ... in temporal order
    window: AttemptWindow
    analysis: "JumpAnalysis"
    primary: bool  # highest-confidence window of the clip

    @property
    def score(self) -> float:
        """The attempt's rule score, for quick ranking."""
        return self.analysis.report.score


@dataclass(frozen=True, slots=True)
class JumpAnalysis:
    """Everything the pipeline produced for one video."""

    segmentations: tuple[FrameSegmentation, ...]
    background: np.ndarray
    annotation: FirstFrameAnnotation
    tracking: TrackingResult
    poses: tuple[StickPose, ...]  # smoothed track actually scored
    events: JumpEvents
    report: JumpReport
    measurement: JumpMeasurement
    trace: RunTrace  # per-stage timings and counters of this run
    # Provenance: the fully-resolved config that produced this analysis
    # and its stable hash — a report is reproducible from its own output.
    config: dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""
    # Health of this analysis: per-frame tracking outcomes, unhealthy /
    # low-confidence frames, stages that completed via fallback.  See
    # :meth:`JumpAnalyzer.analyze`; serialized with the report.
    diagnostics: dict[str, Any] = field(default_factory=dict)
    # Per-actor analyses when multi-actor tracking is enabled (one
    # entry per reportable track, spawn order).  Empty on the classic
    # single-jumper path; the top-level fields above always describe
    # the primary track either way.
    tracks: tuple[TrackAnalysis, ...] = ()
    # Per-attempt analyses when temporal localisation is enabled (one
    # entry per attempt window, temporal order).  Empty on the classic
    # whole-clip path; the top-level fields above always describe the
    # primary attempt either way — the same backward-compat pattern as
    # ``tracks``.
    attempts: tuple[AttemptAnalysis, ...] = ()
    # The localisation pass that produced ``attempts`` (windows,
    # energy signal, resolved thresholds); None when disabled.
    localization: "LocalizationResult | None" = None

    @property
    def degraded(self) -> bool:
        """True when any frame or stage needed recovery or fallback."""
        return bool(self.diagnostics.get("degraded"))

    @property
    def silhouettes(self) -> list[np.ndarray]:
        """Final person mask of every frame."""
        return [seg.person for seg in self.segmentations]


class JumpAnalyzer:
    """The complete standing-long-jump analysis system.

    The work is composed as runtime stages — ``segmentation``,
    ``annotation``, ``tracking``, ``smoothing``, ``events``,
    ``scoring`` and ``measurement`` — so every run is observable: pass
    an :class:`~repro.runtime.Instrumentation` (with a logging or
    in-memory sink) to :meth:`analyze`, or just read the returned
    :attr:`JumpAnalysis.trace`.
    """

    #: Top-level stage names, in execution order.
    STAGES = (
        "segmentation",
        "annotation",
        "tracking",
        "smoothing",
        "events",
        "scoring",
        "measurement",
    )

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config or AnalyzerConfig()
        # Resolved once: the movement the tail stages score (events,
        # rules, distance).  config.__post_init__ validated the name.
        self._profile: MovementProfile = get_profile(self.config.profile)
        self._runner = PipelineRunner(
            [
                FunctionStage("segmentation", self._stage_segmentation),
                FunctionStage("annotation", self._stage_annotation),
                FunctionStage("tracking", self._stage_tracking),
                FunctionStage("smoothing", self._stage_smoothing),
                FunctionStage("events", self._stage_events),
                FunctionStage("scoring", self._stage_scoring),
                FunctionStage("measurement", self._stage_measurement),
            ],
            name="jump-analysis",
            policies=self._build_policies(),
        )

    def _build_policies(self) -> dict[str, StagePolicy] | None:
        """Per-stage retry/fallback policies from the robustness config."""
        rb = self.config.robustness
        if not rb.enabled:
            return None
        unknown = (set(rb.retry_stages) | set(rb.fallback_stages)) - set(
            self.STAGES
        )
        if unknown:
            raise ConfigurationError(
                f"robustness names unknown stage(s) {sorted(unknown)}; "
                f"stages are: {list(self.STAGES)}"
            )
        substitutes = {
            "smoothing": self._fallback_smoothing,
            "events": self._fallback_events,
            "scoring": self._fallback_scoring,
            "measurement": self._fallback_measurement,
        }
        missing = [s for s in rb.fallback_stages if s not in substitutes]
        if missing:
            raise ConfigurationError(
                f"stage(s) {missing} have no fallback substitute; only "
                f"{sorted(substitutes)} can degrade (earlier stages must "
                "succeed to anchor the analysis)"
            )
        policies: dict[str, StagePolicy] = {}
        for name in self.STAGES:
            retry = None
            if name in rb.retry_stages and rb.stage_attempts > 1:
                retry = RetryPolicy(
                    max_attempts=rb.stage_attempts, catch=rb.catch
                )
            fallback = None
            if name in rb.fallback_stages:
                fallback = FallbackPolicy(
                    substitute=substitutes[name], catch=rb.catch
                )
            if retry is not None or fallback is not None:
                policies[name] = StagePolicy(retry=retry, fallback=fallback)
        return policies or None

    @property
    def runner(self) -> PipelineRunner:
        """The underlying stage composition (for introspection)."""
        return self._runner

    # ------------------------------------------------------------------
    # Stages.  The main value flow is video → silhouettes → poses; the
    # side products (segmentations, tracking records, report, …) land
    # on the context's artifact blackboard.
    # ------------------------------------------------------------------
    def _stage_segmentation(
        self, video: VideoSequence, ctx: StageContext
    ) -> list[np.ndarray]:
        if len(video) == 0:
            raise VideoError(
                "cannot analyze a zero-frame video; the sequence needs at "
                "least one frame to segment and anchor the stick model"
            )
        segmenter = SegmentationPipeline(
            self.config.segmentation,
            instrumentation=ctx.instrumentation,
            parallel=self.config.parallel,
        )
        segmentations = segmenter.segment_video(video)
        silhouettes = [seg.person for seg in segmentations]
        if not silhouettes[0].any():
            # Multi-actor scenes may legitimately start empty (actors
            # entering later spawn tracks mid-stream); only a fully
            # empty sequence is unanalyzable there.
            if not self.config.tracking.enabled or not any(
                s.any() for s in silhouettes
            ):
                raise SegmentationError(
                    "no human object found in the first frame; cannot anchor "
                    "the stick model"
                )
        ctx.artifacts["segmentations"] = tuple(segmentations)
        ctx.artifacts["background"] = segmenter.background
        return silhouettes

    def _stage_annotation(
        self, silhouettes: list[np.ndarray], ctx: StageContext
    ) -> list[np.ndarray]:
        if self.config.tracking.enabled:
            # Multi-actor mode: the TrackManager annotates each track
            # from its spawning component; a caller-supplied annotation
            # (left on the blackboard) seeds the first spawn.
            return silhouettes
        if ctx.artifacts.get("annotation") is None:
            ctx.artifacts["annotation"] = auto_annotate(
                silhouettes[0], prior_angles=self._profile.start_angles
            )
            ctx.instrumentation.count("annotation.automatic", 1)
        return silhouettes

    def _stage_tracking(
        self, silhouettes: list[np.ndarray], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        if self.config.tracking.enabled:
            return self._stage_tracking_multi(silhouettes, ctx)
        annotation: FirstFrameAnnotation = ctx.require("annotation")
        tracker = TemporalPoseTracker(
            annotation.dims,
            self.config.tracker,
            instrumentation=ctx.instrumentation,
        )
        tracking = tracker.track(
            silhouettes, annotation.pose, rng=ctx.require("rng")
        )
        ctx.artifacts["tracking"] = tracking
        return tracking.poses

    def _stage_tracking_multi(
        self, silhouettes: list[np.ndarray], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        """N-actor tracking: associate components, one session per track.

        The primary track's raw poses flow on to the main runner's tail
        stages (so the legacy top-level fields keep their meaning); the
        per-track tails run here, inside the ``tracking`` stage, through
        :meth:`tail_runner` — fault wrappers and retry/fallback policies
        on the tail stages therefore apply per track too.
        """
        segmentations: tuple[FrameSegmentation, ...] = ctx.artifacts.get(
            "segmentations", ()
        )
        manager = TrackManager(
            self.config.tracker,
            self.config.tracking,
            rng=ctx.require("rng"),
            instrumentation=ctx.instrumentation,
            seed_annotation=ctx.artifacts.get("annotation"),
        )
        for index, mask in enumerate(silhouettes):
            candidates = (
                segmentations[index].candidates
                if index < len(segmentations)
                else ()
            )
            manager.step(mask, candidates)
        primary = manager.primary_track()
        reportable = list(manager.confirmed_tracks()) or [primary]
        analyses = []
        for track in reportable:
            try:
                analyses.append(self._finish_track(track, ctx))
            except ReproError:
                if track is primary:
                    raise
                # A short-lived secondary track whose tail cannot be
                # computed degrades to absence, not a dead analysis.
                ctx.instrumentation.event(
                    "tracking/track_tail_failed", track_id=track.track_id
                )
        ctx.artifacts["tracks"] = tuple(analyses)
        tracking = primary.result()
        ctx.artifacts["tracking"] = tracking
        # The primary's annotation anchors the legacy top-level tail.
        ctx.artifacts["annotation"] = primary.annotation
        return tracking.poses

    def _finish_track(self, track, ctx: StageContext) -> TrackAnalysis:
        """Run the post-tracking tail for one track."""
        result = track.result()
        sub = StageContext(
            instrumentation=ctx.instrumentation,
            cancel_token=ctx.cancel_token,
        )
        sub.artifacts["annotation"] = track.annotation
        self.tail_runner().run(result.poses, context=sub)
        return TrackAnalysis(
            track_id=track.track_id,
            state=track.state,
            start_frame=track.start_frame,
            annotation=track.annotation,
            tracking=result,
            poses=sub.artifacts["poses"],
            events=sub.artifacts["events"],
            report=sub.artifacts["report"],
            measurement=sub.artifacts["measurement"],
        )

    def _stage_smoothing(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        cfg = self.config
        if cfg.smoothing_mode != "none" and cfg.smoothing_window > 1:
            trajectory = PoseTrajectory.from_poses(poses)
            if cfg.smoothing_mode == "median":
                trajectory = trajectory.median_filtered(cfg.smoothing_window)
            elif cfg.smoothing_mode == "kalman":
                from .analysis.kalman import kalman_smooth

                trajectory = kalman_smooth(trajectory)
            else:
                trajectory = trajectory.smoothed(cfg.smoothing_window)
            poses = tuple(trajectory.to_poses())
        ctx.artifacts["poses"] = poses
        return poses

    def _stage_events(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        annotation: FirstFrameAnnotation = ctx.require("annotation")
        ctx.artifacts["events"] = self._profile.detect_events(
            poses, annotation.dims
        )
        return poses

    def _stage_scoring(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        events: JumpEvents = ctx.require("events")
        scorer = JumpScorer(
            instrumentation=ctx.instrumentation, profile=self._profile
        )
        ctx.artifacts["report"] = scorer.score(
            poses, takeoff_frame=events.takeoff_frame
        )
        return poses

    def _stage_measurement(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        annotation: FirstFrameAnnotation = ctx.require("annotation")
        ctx.artifacts["measurement"] = self._profile.measure(
            poses, annotation.dims, len(poses) - 1
        )
        return poses

    # ------------------------------------------------------------------
    # Fallback substitutes (robustness): best-effort stand-ins for the
    # post-tracking stages, so a failure there degrades the report
    # instead of killing the analysis.  Each sets the context artifact
    # the JumpAnalysis constructor requires.
    # ------------------------------------------------------------------
    def _fallback_smoothing(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        poses = tuple(poses)  # score the raw track
        ctx.artifacts["poses"] = poses
        return poses

    def _fallback_events(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        poses = tuple(poses)
        n = len(poses)
        annotation = ctx.artifacts.get("annotation")
        if annotation is not None:
            from .analysis.events import foot_clearance

            ground = float(foot_clearance(poses[:1], annotation.dims)[0])
        else:
            ground = float(poses[0].y0)
        ctx.artifacts["events"] = JumpEvents(
            takeoff_frame=max(1, n // 3),
            landing_frame=max(1, n - 1),
            peak_frame=max(1, n // 2),
            ground_height=ground,
        )
        return poses

    def _fallback_scoring(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        from .scoring.phases import StageWindows

        poses = tuple(poses)
        events = ctx.artifacts.get("events")
        takeoff = getattr(events, "takeoff_frame", None)
        try:
            windows = StageWindows.for_sequence(
                len(poses), takeoff_frame=takeoff
            )
        except ReproError:  # too-short / inconsistent sequence
            windows = StageWindows.paper_default()
        ctx.artifacts["report"] = JumpReport(
            results=(), windows=windows, profile=self.config.profile
        )
        return poses

    def _fallback_measurement(
        self, poses: tuple[StickPose, ...], ctx: StageContext
    ) -> tuple[StickPose, ...]:
        poses = tuple(poses)
        ctx.artifacts["measurement"] = JumpMeasurement(
            distance=0.0,
            takeoff_line_x=0.0,
            landing_heel_x=0.0,
            landing_frame=max(0, len(poses) - 1),
            relative_to_stature=0.0,
        )
        return poses

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    #: Post-tracking stages shared by the batch runner and the streaming
    #: finish path (the only stages with fallback substitutes).
    TAIL_STAGES = ("smoothing", "events", "scoring", "measurement")

    def open_stream(
        self,
        annotation: FirstFrameAnnotation | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        cancel_token: "CancellationToken | None" = None,
        checkpointer: Any = None,
    ):
        """Open a frame-at-a-time analysis (see :mod:`repro.streaming`).

        Returns a :class:`~repro.streaming.StreamingAnalyzer`: call
        ``push_frame(frame)`` per arriving frame and ``finish()`` for
        the final :class:`JumpAnalysis`.  :meth:`analyze` is a thin
        wrapper that feeds a whole sequence through this stream — there
        is one pipeline, not two.

        ``checkpointer`` (see :mod:`repro.resilience.checkpoint`)
        applies to the batch finish path: warmup 0 streams and
        :meth:`analyze` both persist/resume per-stage state through it.
        """
        from .streaming import StreamingAnalyzer

        return StreamingAnalyzer(
            self,
            annotation=annotation,
            rng=rng,
            instrumentation=instrumentation,
            cancel_token=cancel_token,
            checkpointer=checkpointer,
        )

    def tail_runner(self) -> PipelineRunner:
        """The post-tracking stages of the live runner, as a pipeline.

        Built from :attr:`runner`'s own stage objects and policies, so
        anything that rewrites the runner (fault injection, future
        wrappers) is honoured by the streaming finish path too.
        """
        tail = [s for s in self._runner.stages if s.name in self.TAIL_STAGES]
        policies = {
            name: policy
            for name, policy in self._runner.policies.items()
            if name in self.TAIL_STAGES
        }
        return PipelineRunner(
            tail, name="jump-analysis-tail", policies=policies or None
        )

    def analyze(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        cancel_token: "CancellationToken | None" = None,
        checkpointer: Any = None,
    ) -> JumpAnalysis:
        """Run segmentation, tracking, event detection and scoring.

        ``annotation`` provides the first-frame stick model (pose +
        body dimensions).  When omitted, the automatic moment-based
        initialiser runs on the first silhouette — convenient, but a
        human-drawn model is what the paper assumes and tracks better.

        ``instrumentation`` chooses the observability sink for this
        run; by default a fresh silent collector is used, so the
        returned :attr:`JumpAnalysis.trace` is always populated.

        ``cancel_token`` enables cooperative cancellation: the runner
        checks it between stages and raises
        :class:`~repro.errors.CancelledError` once it is set (the job
        subsystem's ``DELETE /v1/jobs/{id}`` path).

        This is a thin wrapper over the streaming core: the sequence is
        fed through :meth:`open_stream` and finished.  With the default
        ``streaming.warmup_frames = 0`` the stream buffers every frame
        and ``finish()`` runs the classic seven-stage runner over the
        whole sequence, so results are identical to the pre-streaming
        analyzer.
        """
        stream = self.open_stream(
            annotation=annotation,
            rng=rng,
            instrumentation=instrumentation,
            cancel_token=cancel_token,
            checkpointer=checkpointer,
        )
        stream.extend(video)
        return stream.finish()

    def _analyze_batch(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None,
        rng: np.random.Generator,
        instrumentation: Instrumentation,
        cancel_token: "CancellationToken | None",
        checkpointer: Any = None,
    ) -> JumpAnalysis:
        """Whole-sequence analysis, with optional localisation front-stage.

        With ``localization.enabled`` the video is first segmented into
        attempt windows and each window runs through the classic
        seven-stage path independently (see :meth:`_analyze_localized`);
        otherwise the clip is analysed as one attempt, exactly as the
        paper assumes.
        """
        if self.config.localization.enabled:
            return self._analyze_localized(
                video, annotation, rng, instrumentation, cancel_token
            )
        return self._analyze_window(
            video, annotation, rng, instrumentation, cancel_token, checkpointer
        )

    def _analyze_window(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None,
        rng: np.random.Generator,
        instrumentation: Instrumentation,
        cancel_token: "CancellationToken | None",
        checkpointer: Any = None,
    ) -> JumpAnalysis:
        """The classic whole-sequence path: run all seven stages.

        With a ``checkpointer``, a stage checkpoint left by a previous
        (interrupted) run restores the pipeline value, the context
        artifacts and the rng bit-generator state, and the runner skips
        the completed prefix — so the resumed run draws the same random
        stream and lands on the same report as an uninterrupted one.
        """
        config_dict = self.config.to_dict()
        resolved_hash = config_hash(config_dict)
        context = StageContext(
            instrumentation=instrumentation,
            cancel_token=cancel_token,
        )
        context.artifacts["annotation"] = annotation
        context.artifacts["rng"] = rng
        context.metadata["config"] = config_dict
        context.metadata["config_hash"] = resolved_hash

        value: Any = video
        start_after: str | None = None
        if checkpointer is not None:
            checkpointer.set_multi_actor(self.config.tracking.enabled)
            saved = checkpointer.load()
            if saved is not None:
                from .resilience.checkpoint import restore_rng

                context.artifacts.update(saved.artifacts)
                restore_rng(rng, saved.rng_state)
                value = saved.value
                start_after = saved.stage
                instrumentation.count("resilience.resumes", 1)
                instrumentation.event(
                    "resilience/resumed", stage=saved.stage
                )
        outcome = self._runner.run(
            value,
            context=context,
            start_after=start_after,
            checkpoint=checkpointer,
        )

        artifacts: dict[str, Any] = outcome.context.artifacts
        tracking: TrackingResult = artifacts["tracking"]
        tracks: tuple[TrackAnalysis, ...] = artifacts.get("tracks", ())
        diagnostics = self._build_diagnostics(tracking, outcome.trace)
        self._augment_diagnostics(diagnostics, tracks)
        return JumpAnalysis(
            segmentations=artifacts["segmentations"],
            background=artifacts["background"],
            annotation=artifacts["annotation"],
            tracking=tracking,
            poses=artifacts["poses"],
            events=artifacts["events"],
            report=artifacts["report"],
            measurement=artifacts["measurement"],
            trace=outcome.trace,
            config=config_dict,
            config_hash=resolved_hash,
            diagnostics=diagnostics,
            tracks=tracks,
        )

    def _analyze_localized(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None,
        rng: np.random.Generator,
        instrumentation: Instrumentation,
        cancel_token: "CancellationToken | None",
    ) -> JumpAnalysis:
        """Find the attempts in a long clip and analyse each one.

        Every window runs the classic seven-stage path over its
        sub-clip, sequentially and against the *same* rng — a clip
        whose single window spans the whole video therefore draws the
        identical random stream and reproduces the classic result
        byte-for-byte (the single-attempt parity pin).  The caller's
        ``annotation`` anchors only a window that starts at frame 0;
        later windows fall back to the automatic initialiser (a
        hand-drawn frame-0 stick figure has no meaning mid-clip).
        Checkpointing is not threaded through the multi-window path —
        localised runs are re-run from scratch on resume.
        """
        if len(video) == 0:
            raise VideoError(
                "cannot analyze a zero-frame video; the sequence needs at "
                "least one frame to segment and anchor the stick model"
            )
        with instrumentation.span("localization"):
            result = localize_attempts(video, self.config.localization)
        instrumentation.count("localization.windows", len(result.windows))
        if not result.windows:
            return self._no_attempts_analysis(
                video, annotation, result, instrumentation
            )
        primary_index = result.primary_index
        attempts: list[AttemptAnalysis] = []
        for index, window in enumerate(result.windows):
            if window.start == 0 and window.end == len(video):
                sub_video = video  # identity, not a copy: parity anchor
            else:
                sub_video = video.clip(window.start, window.end)
            sub_annotation = annotation if window.start == 0 else None
            analysis = self._analyze_window(
                sub_video, sub_annotation, rng, instrumentation, cancel_token
            )
            attempts.append(
                AttemptAnalysis(
                    attempt_id=f"a{index}",
                    window=window,
                    analysis=analysis,
                    primary=index == primary_index,
                )
            )
        primary = attempts[primary_index].analysis
        diagnostics = dict(primary.diagnostics)
        diagnostics["attempts"] = [
            {
                "attempt_id": a.attempt_id,
                "start": a.window.start,
                "end": a.window.end,
                "confidence": a.window.confidence,
                "primary": a.primary,
                "score": a.score,
                "degraded": a.analysis.degraded,
            }
            for a in attempts
        ]
        diagnostics["degraded"] = bool(
            diagnostics.get("degraded")
            or any(a.analysis.degraded for a in attempts)
        )
        return replace(
            primary,
            attempts=tuple(attempts),
            localization=result,
            diagnostics=diagnostics,
        )

    def _no_attempts_analysis(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None,
        result: LocalizationResult,
        instrumentation: Instrumentation,
    ) -> JumpAnalysis:
        """A clean empty analysis for a clip with no detected activity.

        A zero-motion video is a *valid input* to a localising
        analyzer, not an error: the result carries an empty ``attempts``
        array, an empty report, and ``diagnostics["no_attempts"]`` so
        every consumer (service payloads, CLI) renders it gracefully.
        """
        from .scoring.phases import StageWindows

        instrumentation.event("localization/no_attempts")
        config_dict = self.config.to_dict()
        resolved_hash = config_hash(config_dict)
        if annotation is None:
            annotation = FirstFrameAnnotation(
                pose=StickPose.standing(
                    x0=video.width / 2.0, y0=video.height / 2.0
                ),
                dims=default_body(),
            )
        return JumpAnalysis(
            segmentations=(),
            background=np.zeros_like(
                np.asarray(video[0], dtype=np.float64)
            ),
            annotation=annotation,
            tracking=TrackingResult(poses=(), records=(), health=()),
            poses=(),
            events=JumpEvents(
                takeoff_frame=0,
                landing_frame=0,
                peak_frame=0,
                ground_height=0.0,
            ),
            report=JumpReport(
                results=(),
                windows=StageWindows.paper_default(),
                profile=self.config.profile,
            ),
            measurement=JumpMeasurement(
                distance=0.0,
                takeoff_line_x=0.0,
                landing_heel_x=0.0,
                landing_frame=0,
                relative_to_stature=0.0,
            ),
            trace=RunTrace(
                stages=(),
                metadata={
                    "config": config_dict,
                    "config_hash": resolved_hash,
                },
            ),
            config=config_dict,
            config_hash=resolved_hash,
            diagnostics={
                "degraded": False,
                "no_attempts": True,
                "unhealthy_frames": [],
                "flagged_frames": [],
                "health_summary": {},
                "frame_health": [],
                "degraded_stages": [],
                "attempts": [],
            },
            localization=result,
        )

    @staticmethod
    def _build_diagnostics(
        tracking: TrackingResult, trace: RunTrace
    ) -> dict[str, Any]:
        """Health summary of one analysis (JSON-ready)."""
        return {
            "degraded": tracking.degraded or trace.degraded,
            "unhealthy_frames": tracking.unhealthy_frames(),
            "flagged_frames": tracking.flagged_frames(),
            "health_summary": tracking.health_summary(),
            "frame_health": [entry.to_dict() for entry in tracking.health],
            "degraded_stages": list(trace.degraded_stages),
        }

    @staticmethod
    def _augment_diagnostics(
        diagnostics: dict[str, Any], tracks: tuple[TrackAnalysis, ...]
    ) -> None:
        """Fold per-track health into a diagnostics dict (multi mode)."""
        if not tracks:
            return
        diagnostics["tracks"] = [
            {
                "track_id": t.track_id,
                "state": t.state,
                "start_frame": t.start_frame,
                "frames": t.frames,
                "degraded": t.degraded,
            }
            for t in tracks
        ]
        diagnostics["degraded"] = bool(
            diagnostics["degraded"] or any(t.degraded for t in tracks)
        )


def analyze_video(
    video: VideoSequence,
    annotation: FirstFrameAnnotation | None = None,
    config: AnalyzerConfig | None = None,
    rng: np.random.Generator | None = None,
    instrumentation: Instrumentation | None = None,
) -> JumpAnalysis:
    """One-call convenience wrapper around :class:`JumpAnalyzer`."""
    return JumpAnalyzer(config).analyze(
        video, annotation=annotation, rng=rng, instrumentation=instrumentation
    )
