"""End-to-end jump analysis: video → silhouettes → poses → report.

:class:`JumpAnalyzer` chains the three parts of the paper's system
(Section 1): human detection (Section 2), pose estimation (Section 3)
and scoring (Section 4), plus the trajectory analysis extensions.

The first-frame stick model must come from somewhere, exactly as in
the paper ("a trained person is asked to draw the stick figure for the
human object in the first frame"): pass a
:class:`~repro.model.annotation.FirstFrameAnnotation`, or let the
analyzer fall back to the automatic moment-based initialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .analysis.events import JumpEvents, detect_events
from .analysis.trajectory import PoseTrajectory
from .errors import SegmentationError
from .ga.temporal import TemporalPoseTracker, TrackerConfig, TrackingResult
from .model.annotation import FirstFrameAnnotation, auto_annotate
from .model.pose import StickPose
from .scoring.distance import JumpMeasurement, measure_jump
from .scoring.report import JumpReport, JumpScorer
from .segmentation.pipeline import (
    FrameSegmentation,
    SegmentationConfig,
    SegmentationPipeline,
)
from .video.sequence import VideoSequence


@dataclass(frozen=True, slots=True)
class AnalyzerConfig:
    """Configuration of the full pipeline."""

    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    tracker: TrackerConfig = field(
        default_factory=lambda: TrackerConfig(
            containment_margin=1,
            min_inside_fraction=0.95,
            containment_samples=7,
        )
    )
    # Trajectory filtering before scoring.  "median" (default) removes
    # single-frame tracking spikes without shaving multi-frame extremes
    # — important because every rule aggregates with max/min over a
    # stage window.  "mean" is a plain moving average (it systematically
    # flattens the extremes the thresholds test); "kalman" is the
    # constant-velocity RTS smoother; "none" scores the raw track.
    smoothing_mode: str = "median"
    smoothing_window: int = 3

    def __post_init__(self) -> None:
        from .errors import ConfigurationError

        if self.smoothing_mode not in ("median", "mean", "kalman", "none"):
            raise ConfigurationError(
                "smoothing_mode must be median/mean/kalman/none, got "
                f"{self.smoothing_mode!r}"
            )


@dataclass(frozen=True, slots=True)
class JumpAnalysis:
    """Everything the pipeline produced for one video."""

    segmentations: tuple[FrameSegmentation, ...]
    background: np.ndarray
    annotation: FirstFrameAnnotation
    tracking: TrackingResult
    poses: tuple[StickPose, ...]  # smoothed track actually scored
    events: JumpEvents
    report: JumpReport
    measurement: JumpMeasurement

    @property
    def silhouettes(self) -> list[np.ndarray]:
        """Final person mask of every frame."""
        return [seg.person for seg in self.segmentations]


class JumpAnalyzer:
    """The complete standing-long-jump analysis system."""

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config or AnalyzerConfig()

    def analyze(
        self,
        video: VideoSequence,
        annotation: FirstFrameAnnotation | None = None,
        rng: np.random.Generator | None = None,
    ) -> JumpAnalysis:
        """Run segmentation, tracking, event detection and scoring.

        ``annotation`` provides the first-frame stick model (pose +
        body dimensions).  When omitted, the automatic moment-based
        initialiser runs on the first silhouette — convenient, but a
        human-drawn model is what the paper assumes and tracks better.
        """
        rng = rng if rng is not None else np.random.default_rng(0)

        segmenter = SegmentationPipeline(self.config.segmentation)
        segmentations = segmenter.segment_video(video)
        silhouettes = [seg.person for seg in segmentations]
        if not silhouettes[0].any():
            raise SegmentationError(
                "no human object found in the first frame; cannot anchor "
                "the stick model"
            )

        if annotation is None:
            annotation = auto_annotate(silhouettes[0])

        tracker = TemporalPoseTracker(annotation.dims, self.config.tracker)
        tracking = tracker.track(silhouettes, annotation.pose, rng=rng)

        poses: tuple[StickPose, ...]
        if self.config.smoothing_mode != "none" and self.config.smoothing_window > 1:
            trajectory = PoseTrajectory.from_poses(tracking.poses)
            if self.config.smoothing_mode == "median":
                trajectory = trajectory.median_filtered(self.config.smoothing_window)
            elif self.config.smoothing_mode == "kalman":
                from .analysis.kalman import kalman_smooth

                trajectory = kalman_smooth(trajectory)
            else:
                trajectory = trajectory.smoothed(self.config.smoothing_window)
            poses = tuple(trajectory.to_poses())
        else:
            poses = tracking.poses

        events = detect_events(poses, annotation.dims)
        report = JumpScorer().score(poses, takeoff_frame=events.takeoff_frame)
        measurement = measure_jump(
            poses, annotation.dims, landing_frame=len(poses) - 1
        )
        return JumpAnalysis(
            segmentations=tuple(segmentations),
            background=segmenter.background,
            annotation=annotation,
            tracking=tracking,
            poses=poses,
            events=events,
            report=report,
            measurement=measurement,
        )


def analyze_video(
    video: VideoSequence,
    annotation: FirstFrameAnnotation | None = None,
    config: AnalyzerConfig | None = None,
    rng: np.random.Generator | None = None,
) -> JumpAnalysis:
    """One-call convenience wrapper around :class:`JumpAnalyzer`."""
    return JumpAnalyzer(config).analyze(video, annotation=annotation, rng=rng)
