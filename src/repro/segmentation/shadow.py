"""HSV shadow detection and removal (paper Section 2, Step 5, Eqs. 1–2).

A foreground pixel ``p`` of frame ``k`` is shadow when all three hold::

    α ≤ F_k(p).V / B_k(p).V ≤ β          (a shadow darkens, but not to black)
    |F_k(p).S − B_k(p).S| ≤ τ_S          (saturation barely changes)
    DH_k(p) ≤ τ_H                        (hue barely changes, Eq. 2)

with ``DH = min(|F.H − B.H|, 360 − |F.H − B.H|)``.  The parameters
α, β, τ_S, τ_H "are determined via experiments" — the ablation bench
:mod:`benchmarks.test_ablation_shadow` sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..imaging.color import hue_distance, rgb_to_hsv
from ..imaging.image import ensure_mask, ensure_rgb, ensure_same_shape


@dataclass(frozen=True, slots=True)
class ShadowMaskConfig:
    """The four experimental parameters of Eq. 1."""

    alpha: float = 0.40
    beta: float = 0.90
    tau_s: float = 0.12
    tau_h: float = 40.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < self.beta < 1.0:
            raise ConfigurationError(
                f"need 0 < alpha < beta < 1, got alpha={self.alpha}, beta={self.beta}"
            )
        if not 0.0 < self.tau_s <= 1.0:
            raise ConfigurationError(f"tau_s must be in (0, 1], got {self.tau_s}")
        if not 0.0 < self.tau_h <= 180.0:
            raise ConfigurationError(f"tau_h must be in (0, 180], got {self.tau_h}")


def shadow_mask(
    frame: np.ndarray,
    background: np.ndarray,
    foreground: np.ndarray,
    config: ShadowMaskConfig | None = None,
) -> np.ndarray:
    """Eq. 1: the shadow mask ``SM_k`` restricted to foreground pixels."""
    config = config or ShadowMaskConfig()
    frame = ensure_rgb(frame, "frame")
    background = ensure_rgb(background, "background")
    foreground = ensure_mask(foreground, "foreground")
    ensure_same_shape(frame, background, "frame and background")
    if frame.shape[:2] != foreground.shape:
        raise ConfigurationError(
            f"frame {frame.shape[:2]} and foreground {foreground.shape} differ"
        )

    frame_hsv = rgb_to_hsv(frame)
    back_hsv = rgb_to_hsv(background)

    back_v = back_hsv[..., 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(back_v > 0, frame_hsv[..., 2] / np.maximum(back_v, 1e-9), np.inf)
    value_ok = (config.alpha <= ratio) & (ratio <= config.beta)
    saturation_ok = (
        np.abs(frame_hsv[..., 1] - back_hsv[..., 1]) <= config.tau_s
    )
    hue_ok = hue_distance(frame_hsv[..., 0], back_hsv[..., 0]) <= config.tau_h

    return foreground & value_ok & saturation_ok & hue_ok


def remove_shadows(
    frame: np.ndarray,
    background: np.ndarray,
    foreground: np.ndarray,
    config: ShadowMaskConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Step 5: drop shadow pixels from the foreground.

    Returns ``(person_mask, detected_shadow_mask)``.
    """
    detected = shadow_mask(frame, background, foreground, config)
    return foreground & ~detected, detected
