"""Foreground cleanup (paper Section 2, Steps 3–4).

Step 3 removes noise pixels by 8-neighbour counting, then deletes
small connected spots ("since we are looking for human objects,
smaller spots can be removed from the scene").  Step 4 fills small
holes with the 4-neighbour rule; complete topological hole filling is
available as an extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..imaging.components import remove_small_components
from ..imaging.holes import fill_holes
from ..imaging.neighbors import fill_single_pixel_holes, remove_noise_pixels


@dataclass(frozen=True, slots=True)
class CleanupConfig:
    """Parameters of the paper's Steps 3 and 4."""

    # Keep a pixel when strictly more than this many of its 8 neighbours
    # are foreground.  3 removes speckle and 2-pixel clumps but keeps
    # 3-pixel-wide diagonal limbs (a child's forearm at this resolution)
    # intact; 4 visibly erodes them.
    min_neighbors: int = 3
    min_spot_area: int = 30  # connected regions below this are deleted
    hole_fill_iterations: int = 2  # passes of the 4-neighbour fill rule
    fill_all_holes: bool = False  # extension: topological hole fill

    def __post_init__(self) -> None:
        if not 0 <= self.min_neighbors <= 8:
            raise ConfigurationError(
                f"min_neighbors must be in [0, 8], got {self.min_neighbors}"
            )
        if self.min_spot_area < 0:
            raise ConfigurationError(
                f"min_spot_area must be >= 0, got {self.min_spot_area}"
            )
        if self.hole_fill_iterations < 0:
            raise ConfigurationError(
                f"hole_fill_iterations must be >= 0, got {self.hole_fill_iterations}"
            )


@dataclass(frozen=True, slots=True)
class CleanupStages:
    """The mask after each cleanup stage (mirrors Fig. 2 b–d)."""

    after_noise_removal: np.ndarray
    after_spot_removal: np.ndarray
    after_hole_fill: np.ndarray


def step_noise_removal(mask: np.ndarray, config: CleanupConfig) -> np.ndarray:
    """Step 3a: the 8-neighbour noise rule."""
    return remove_noise_pixels(mask, min_neighbors=config.min_neighbors)


def step_spot_removal(mask: np.ndarray, config: CleanupConfig) -> np.ndarray:
    """Step 3b: delete small connected spots."""
    return remove_small_components(mask, min_area=config.min_spot_area)


def step_hole_fill(mask: np.ndarray, config: CleanupConfig) -> np.ndarray:
    """Step 4: the 4-neighbour fill (plus optional topological fill)."""
    filled = fill_single_pixel_holes(mask, iterations=config.hole_fill_iterations)
    if config.fill_all_holes:
        filled = fill_holes(filled)
    return filled


def clean_foreground(
    mask: np.ndarray,
    config: CleanupConfig | None = None,
) -> CleanupStages:
    """Apply Steps 3–4 to a raw foreground mask, keeping every stage."""
    config = config or CleanupConfig()

    after_noise = step_noise_removal(mask, config)
    after_spots = step_spot_removal(after_noise, config)
    after_holes = step_hole_fill(after_spots, config)
    return CleanupStages(
        after_noise_removal=after_noise,
        after_spot_removal=after_spots,
        after_hole_fill=after_holes,
    )
