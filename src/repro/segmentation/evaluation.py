"""Quantitative evaluation of segmentation against synthetic ground truth.

The paper judges Figs. 1–3 visually; these helpers turn the same
comparisons into numbers: background error (Fig. 1), per-stage
foreground quality (Fig. 2), and shadow detection/discrimination rates
plus final silhouette IoU (Fig. 3 / Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pipeline import FrameSegmentation
from ..imaging.metrics import ConfusionCounts, confusion, rmse, shadow_detection_rates
from ..video.synthesis.dataset import SyntheticJump


@dataclass(frozen=True, slots=True)
class StageScores:
    """Precision/recall/F1/IoU of every pipeline stage of one frame."""

    raw_foreground: ConfusionCounts
    after_noise_removal: ConfusionCounts
    after_spot_removal: ConfusionCounts
    after_hole_fill: ConfusionCounts
    person: ConfusionCounts

    def f1_by_stage(self) -> dict[str, float]:
        """F1 per stage, in pipeline order."""
        return {
            "raw_foreground": self.raw_foreground.f1,
            "after_noise_removal": self.after_noise_removal.f1,
            "after_spot_removal": self.after_spot_removal.f1,
            "after_hole_fill": self.after_hole_fill.f1,
            "person": self.person.f1,
        }


def score_stages(seg: FrameSegmentation, jump: SyntheticJump, index: int) -> StageScores:
    """Score every stage of one segmented frame.

    Stages before shadow removal are scored against the *moving* mask
    (person + shadow: that is what they are supposed to extract); the
    final person mask is scored against the person-only mask.
    """
    moving = jump.foreground_mask(index)
    person = jump.person_masks[index]
    return StageScores(
        raw_foreground=confusion(seg.raw_foreground, moving),
        after_noise_removal=confusion(seg.after_noise_removal, moving),
        after_spot_removal=confusion(seg.after_spot_removal, moving),
        after_hole_fill=confusion(seg.after_hole_fill, moving),
        person=confusion(seg.person, person),
    )


@dataclass(frozen=True, slots=True)
class SequenceEvaluation:
    """Aggregate quality of a segmented sequence.

    ``shadow_detection`` is *conditional*: among true shadow pixels
    that reached the shadow-removal step as foreground candidates, the
    fraction classified as shadow by Eq. 1.  (Shadow pixels that were
    already absorbed into the background — e.g. the static shadow of
    the jumper standing still — never threaten the silhouette, so they
    are excluded from the denominator.)  ``shadow_leakage`` is the
    end-to-end failure measure: the fraction of true shadow pixels that
    survive into the final person mask.
    """

    background_rmse: float
    person_iou: tuple[float, ...]
    person_f1: tuple[float, ...]
    shadow_detection: tuple[float, ...]
    shadow_discrimination: tuple[float, ...]
    shadow_leakage: tuple[float, ...]

    @property
    def mean_person_iou(self) -> float:
        """Mean final-silhouette IoU over all frames."""
        return float(np.mean(self.person_iou))

    @property
    def mean_shadow_detection(self) -> float:
        """Mean conditional shadow detection rate."""
        return float(np.mean(self.shadow_detection))

    @property
    def mean_shadow_discrimination(self) -> float:
        """Mean fraction of true person pixels kept (not called shadow)."""
        return float(np.mean(self.shadow_discrimination))

    @property
    def mean_shadow_leakage(self) -> float:
        """Mean fraction of true shadow pixels leaking into the silhouette."""
        return float(np.mean(self.shadow_leakage))


def evaluate_sequence(
    segmentations: list[FrameSegmentation],
    jump: SyntheticJump,
    background: np.ndarray,
) -> SequenceEvaluation:
    """Score a whole segmented jump against its ground truth."""
    if len(segmentations) != jump.num_frames:
        raise ValueError(
            f"{len(segmentations)} segmentations for {jump.num_frames} frames"
        )
    ious: list[float] = []
    f1s: list[float] = []
    detections: list[float] = []
    discriminations: list[float] = []
    leakages: list[float] = []
    for index, seg in enumerate(segmentations):
        counts = confusion(seg.person, jump.person_masks[index])
        ious.append(counts.iou)
        f1s.append(counts.f1)
        # Conditional detection: only shadow pixels that are foreground
        # candidates can (and need to) be classified by Eq. 1.
        candidates = jump.shadow_masks[index] & seg.after_hole_fill
        detection, discrimination = shadow_detection_rates(
            seg.detected_shadow,
            candidates,
            jump.person_masks[index],
        )
        detections.append(detection)
        discriminations.append(discrimination)
        true_shadow = jump.shadow_masks[index]
        total_shadow = int(true_shadow.sum())
        leakages.append(
            int((seg.person & true_shadow).sum()) / total_shadow
            if total_shadow
            else 0.0
        )
    return SequenceEvaluation(
        background_rmse=rmse(background, jump.background),
        person_iou=tuple(ious),
        person_f1=tuple(f1s),
        shadow_detection=tuple(detections),
        shadow_discrimination=tuple(discriminations),
        shadow_leakage=tuple(leakages),
    )
