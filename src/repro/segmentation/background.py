"""Background estimation (paper Section 2, Step 1).

"The background can be estimated by change detection.  The pixels with
a very small change in two consecutive frames are saved as part of the
background.  This process goes from the first two frames to the final
two frames in the video sequence."

The paper leaves the aggregation of the saved observations open, and
the choice matters: a jumper who stands still for the first frames is
temporally stable too, so naive averaging bakes a person-shaped *ghost*
into the background (exactly the artefact Cucchiara et al. [3] — the
paper's own reference — analyse).  Three aggregation modes are
provided:

* ``"longest_run"`` (default) — per pixel, keep the mean of the longest
  temporally *contiguous* run of stable pairs.  The person-standing run
  is broken by the crouch and the takeoff, while the empty-background
  run after the jumper leaves is unbroken, so the true background wins.
  Ties prefer the later run (the background after the person exits).
* ``"mean"`` — average all stable observations (a literal reading of
  the paper).
* ``"median"`` — per-pixel median of stable observations.

Pixels with no stable pair at all fall back to the temporal median of
the whole sequence.  :class:`MedianBackgroundEstimator` (plain temporal
median, no change detection) is the classical baseline for the Fig. 1
bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, VideoError
from ..video.sequence import VideoSequence

_AGGREGATIONS = ("longest_run", "mean", "median")


@dataclass(frozen=True, slots=True)
class BackgroundResult:
    """An estimated background plus diagnostics."""

    background: np.ndarray  # (H, W, 3) float
    support: np.ndarray  # (H, W) int: number of stable observations
    fallback_mask: np.ndarray  # (H, W) bool: pixels that used the fallback

    @property
    def coverage(self) -> float:
        """Fraction of pixels estimated from change detection."""
        return float((~self.fallback_mask).mean())


@dataclass(frozen=True, slots=True)
class ChangeDetectionConfig:
    """Step-1 parameters."""

    threshold: float = 0.05
    aggregation: str = "longest_run"

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError(
                f"change threshold must be in (0, 1), got {self.threshold}"
            )
        if self.aggregation not in _AGGREGATIONS:
            raise ConfigurationError(
                f"aggregation must be one of {_AGGREGATIONS}, got {self.aggregation!r}"
            )


class ChangeDetectionBackgroundEstimator:
    """The paper's Step 1: accumulate temporally stable pixels."""

    def __init__(self, config: ChangeDetectionConfig | None = None) -> None:
        self.config = config or ChangeDetectionConfig()

    def estimate(self, video: VideoSequence) -> BackgroundResult:
        """Estimate the background of a whole sequence."""
        if len(video) < 2:
            raise VideoError("change detection needs at least two frames")
        frames = video.frames
        num_pairs = len(video) - 1
        height, width = video.height, video.width

        # Per-pair stability mask and observation (mean of the pair).
        stable = np.empty((num_pairs, height, width), dtype=bool)
        values = np.empty((num_pairs, height, width, 3), dtype=np.float64)
        for k in range(num_pairs):
            change = np.abs(frames[k + 1] - frames[k]).max(axis=-1)
            stable[k] = change < self.config.threshold
            values[k] = 0.5 * (frames[k] + frames[k + 1])

        support = stable.sum(axis=0).astype(np.int32)
        fallback = support == 0

        if self.config.aggregation == "mean":
            total = (values * stable[..., None]).sum(axis=0)
            background = np.zeros((height, width, 3), dtype=np.float64)
            covered = ~fallback
            background[covered] = total[covered] / support[covered, None]
        elif self.config.aggregation == "median":
            masked = np.where(stable[..., None], values, np.nan)
            with np.errstate(all="ignore"):
                background = np.nanmedian(masked, axis=0)
            background = np.nan_to_num(background, nan=0.0)
        else:  # longest_run
            background = self._longest_run(stable, values)

        if fallback.any():
            median = np.median(frames, axis=0)
            background[fallback] = median[fallback]
        return BackgroundResult(
            background=np.clip(background, 0.0, 1.0),
            support=support,
            fallback_mask=fallback,
        )

    @staticmethod
    def _longest_run(stable: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Mean of the longest contiguous run of stable pairs, per pixel."""
        num_pairs, height, width = stable.shape
        cur_len = np.zeros((height, width), dtype=np.int32)
        cur_sum = np.zeros((height, width, 3), dtype=np.float64)
        best_len = np.zeros((height, width), dtype=np.int32)
        best_sum = np.zeros((height, width, 3), dtype=np.float64)

        for k in range(num_pairs):
            s = stable[k]
            cur_len = np.where(s, cur_len + 1, 0)
            cur_sum = np.where(s[..., None], cur_sum + values[k], 0.0)
            # ">=" so a tie prefers the *later* run: after the jumper
            # leaves, the empty background should win.
            better = (cur_len >= best_len) & (cur_len > 0)
            best_len = np.where(better, cur_len, best_len)
            best_sum = np.where(better[..., None], cur_sum, best_sum)

        background = np.zeros((height, width, 3), dtype=np.float64)
        covered = best_len > 0
        background[covered] = best_sum[covered] / best_len[covered, None]
        return background


class MedianBackgroundEstimator:
    """Baseline: per-pixel temporal median over the whole sequence."""

    def estimate(self, video: VideoSequence) -> BackgroundResult:
        """Estimate the background as the per-pixel median frame."""
        if len(video) < 1:
            raise VideoError("cannot estimate background of an empty video")
        background = np.median(video.frames, axis=0)
        support = np.full((video.height, video.width), len(video), dtype=np.int32)
        fallback = np.zeros((video.height, video.width), dtype=bool)
        return BackgroundResult(
            background=np.clip(background, 0.0, 1.0),
            support=support,
            fallback_mask=fallback,
        )
