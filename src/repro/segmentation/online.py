"""Online background estimation — Step 1 without the whole video.

The batch estimators in :mod:`repro.segmentation.background` consume a
complete :class:`~repro.video.sequence.VideoSequence`.  Streaming
ingestion delivers frames one at a time, so Step 1 is restructured here
as an *online model*: observe frames as they arrive, report when enough
evidence has accumulated, and freeze into the exact
:class:`~repro.segmentation.background.BackgroundResult` the per-frame
steps (2–5) already consume.  Two implementations:

* :class:`WarmupBackgroundModel` — buffer the observed frames and, on
  :meth:`~WarmupBackgroundModel.freeze`, run the configured *batch*
  estimator over the buffer.  Fed the whole sequence this is
  byte-identical to ``SegmentationPipeline.fit`` — the parity anchor of
  the streaming refactor; fed only a warm-up prefix it is the
  "freeze after N frames" mode the streaming analyzer uses.
* :class:`RunningBackgroundModel` — O(1)-memory incremental change
  detection.  The ``mean`` and ``longest_run`` aggregations are exact
  streaming reformulations of the batch algorithm (the longest-run scan
  is already a per-pair recurrence); only the no-stable-pair fallback
  differs — the batch estimator uses the temporal *median* frame, which
  cannot be kept in O(1) memory, so this model substitutes the running
  *mean* frame for those pixels.  The ``median`` aggregation is
  rejected up front for the same reason.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .background import (
    BackgroundResult,
    ChangeDetectionConfig,
)
from ..errors import ConfigurationError, StreamError, VideoError
from ..video.sequence import VideoSequence


@runtime_checkable
class OnlineBackgroundModel(Protocol):
    """Step 1 as an incremental consumer of frames.

    ``observe`` folds one frame into the model; ``ready`` turns True
    once the model has seen enough frames to freeze; ``freeze`` yields
    the final :class:`~repro.segmentation.background.BackgroundResult`
    (idempotent — repeated calls return the same result).  Observing
    after a freeze raises :class:`~repro.errors.StreamError`.
    """

    def observe(self, frame: np.ndarray) -> None:
        """Fold one RGB frame into the model."""
        ...

    @property
    def frames_seen(self) -> int:
        """Number of frames observed so far."""
        ...

    @property
    def ready(self) -> bool:
        """True once enough frames accumulated to freeze."""
        ...

    def freeze(self) -> BackgroundResult:
        """Finalise the model into a background estimate."""
        ...


class WarmupBackgroundModel:
    """Buffer frames, then freeze through a batch estimator.

    ``estimator`` is any object with an
    ``estimate(video) -> BackgroundResult`` method (the two batch
    estimators).  ``warmup_frames`` is the buffer size after which
    :attr:`ready` turns True; ``0`` means "never ready on its own" —
    the owner decides when to freeze, which is how the batch path
    buffers a whole sequence.
    """

    def __init__(self, estimator, warmup_frames: int = 0) -> None:
        self._estimator = estimator
        self.warmup_frames = int(warmup_frames)
        self._buffer: list[np.ndarray] = []
        self._video: VideoSequence | None = None
        self._frozen: BackgroundResult | None = None

    def observe(self, frame: np.ndarray) -> None:
        if self._frozen is not None:
            raise StreamError("background model already frozen")
        self._buffer.append(np.asarray(frame))

    def observe_video(self, video: VideoSequence) -> None:
        """Adopt a whole sequence without re-buffering it (batch path)."""
        if self._frozen is not None:
            raise StreamError("background model already frozen")
        if self._buffer or self._video is not None:
            self._buffer.extend(video)
        else:
            self._video = video

    @property
    def frames_seen(self) -> int:
        buffered = len(self._buffer)
        if self._video is not None:
            buffered += len(self._video)
        return buffered

    @property
    def ready(self) -> bool:
        return self.warmup_frames > 0 and self.frames_seen >= self.warmup_frames

    def freeze(self) -> BackgroundResult:
        if self._frozen is None:
            if self._video is not None:
                video = self._video
            elif self._buffer:
                video = VideoSequence(self._buffer)
            else:
                raise VideoError(
                    "cannot freeze a background model that saw no frames"
                )
            self._frozen = self._estimator.estimate(video)
            self._buffer = []
            self._video = None
        return self._frozen


class RunningBackgroundModel:
    """Incremental change detection with O(1) memory in stream length.

    Keeps only the previous frame plus per-pixel accumulators (stable
    support, stable sum, longest-run state, running frame sum), so an
    unbounded stream can feed it.  See the module docstring for how it
    relates to the batch estimator.
    """

    def __init__(
        self,
        config: ChangeDetectionConfig | None = None,
        min_frames: int = 2,
    ) -> None:
        self.config = config or ChangeDetectionConfig()
        if self.config.aggregation == "median":
            raise ConfigurationError(
                "the 'median' aggregation needs the whole sequence and "
                "cannot run incrementally; use WarmupBackgroundModel or "
                "the 'mean'/'longest_run' aggregations"
            )
        self.min_frames = max(2, int(min_frames))
        self._frames_seen = 0
        self._prev: np.ndarray | None = None
        self._frozen: BackgroundResult | None = None
        # Allocated lazily at the first frame, once the shape is known.
        self._support: np.ndarray | None = None
        self._stable_sum: np.ndarray | None = None
        self._cur_len: np.ndarray | None = None
        self._cur_sum: np.ndarray | None = None
        self._best_len: np.ndarray | None = None
        self._best_sum: np.ndarray | None = None
        self._frame_sum: np.ndarray | None = None

    @property
    def frames_seen(self) -> int:
        return self._frames_seen

    @property
    def ready(self) -> bool:
        return self._frames_seen >= self.min_frames

    def observe(self, frame: np.ndarray) -> None:
        if self._frozen is not None:
            raise StreamError("background model already frozen")
        frame = np.asarray(frame, dtype=np.float64)
        if self._prev is None:
            height, width = frame.shape[:2]
            self._support = np.zeros((height, width), dtype=np.int32)
            self._stable_sum = np.zeros((height, width, 3), dtype=np.float64)
            self._cur_len = np.zeros((height, width), dtype=np.int32)
            self._cur_sum = np.zeros((height, width, 3), dtype=np.float64)
            self._best_len = np.zeros((height, width), dtype=np.int32)
            self._best_sum = np.zeros((height, width, 3), dtype=np.float64)
            self._frame_sum = np.zeros((height, width, 3), dtype=np.float64)
        else:
            change = np.abs(frame - self._prev).max(axis=-1)
            stable = change < self.config.threshold
            value = 0.5 * (self._prev + frame)
            self._support += stable
            self._stable_sum += np.where(stable[..., None], value, 0.0)
            # Longest-run recurrence, identical to the batch scan: ">="
            # so a tie prefers the later run (the empty background after
            # the jumper leaves should win).
            self._cur_len = np.where(stable, self._cur_len + 1, 0)
            self._cur_sum = np.where(
                stable[..., None], self._cur_sum + value, 0.0
            )
            better = (self._cur_len >= self._best_len) & (self._cur_len > 0)
            self._best_len = np.where(better, self._cur_len, self._best_len)
            self._best_sum = np.where(
                better[..., None], self._cur_sum, self._best_sum
            )
        self._frame_sum += frame
        self._prev = frame
        self._frames_seen += 1

    def freeze(self) -> BackgroundResult:
        if self._frozen is not None:
            return self._frozen
        if self._frames_seen < 2:
            raise VideoError("change detection needs at least two frames")
        support = self._support
        fallback = support == 0
        height, width = support.shape
        background = np.zeros((height, width, 3), dtype=np.float64)
        if self.config.aggregation == "mean":
            covered = ~fallback
            background[covered] = (
                self._stable_sum[covered] / support[covered, None]
            )
        else:  # longest_run
            covered = self._best_len > 0
            background[covered] = (
                self._best_sum[covered] / self._best_len[covered, None]
            )
        if fallback.any():
            mean_frame = self._frame_sum / float(self._frames_seen)
            background[fallback] = mean_frame[fallback]
        self._frozen = BackgroundResult(
            background=np.clip(background, 0.0, 1.0),
            support=support,
            fallback_mask=fallback,
        )
        return self._frozen
