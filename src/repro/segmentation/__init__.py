"""Human-object segmentation: the five-step pipeline of Section 2."""

from .background import (
    BackgroundResult,
    ChangeDetectionBackgroundEstimator,
    ChangeDetectionConfig,
    MedianBackgroundEstimator,
)
from .cleanup import CleanupConfig, CleanupStages, clean_foreground
from .online import (
    OnlineBackgroundModel,
    RunningBackgroundModel,
    WarmupBackgroundModel,
)
from .evaluation import (
    SequenceEvaluation,
    StageScores,
    evaluate_sequence,
    score_stages,
)
from .pipeline import FrameSegmentation, SegmentationConfig, SegmentationPipeline
from .shadow import ShadowMaskConfig, remove_shadows, shadow_mask
from .subtraction import SubtractionConfig, difference_image, subtract_background

__all__ = [
    "BackgroundResult",
    "ChangeDetectionBackgroundEstimator",
    "ChangeDetectionConfig",
    "MedianBackgroundEstimator",
    "OnlineBackgroundModel",
    "RunningBackgroundModel",
    "WarmupBackgroundModel",
    "CleanupConfig",
    "CleanupStages",
    "clean_foreground",
    "SequenceEvaluation",
    "StageScores",
    "evaluate_sequence",
    "score_stages",
    "FrameSegmentation",
    "SegmentationConfig",
    "SegmentationPipeline",
    "ShadowMaskConfig",
    "remove_shadows",
    "shadow_mask",
    "SubtractionConfig",
    "difference_image",
    "subtract_background",
]
