"""Background subtraction (paper Section 2, Step 2).

"The background is subtracted from each frame to obtain the foreground
of each frame."  A pixel is foreground when its maximum per-channel
absolute difference from the background exceeds a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..imaging.image import ensure_rgb, ensure_same_shape


@dataclass(frozen=True, slots=True)
class SubtractionConfig:
    """Foreground decision threshold on the per-channel difference.

    ``mode="fixed"`` uses ``threshold`` directly (the paper's implicit
    hand-tuned constant).  ``mode="otsu"`` picks the threshold per
    frame from the difference-image histogram (Otsu), clamped to
    ``[min_threshold, max_threshold]`` so a frame with no foreground
    does not binarise its noise floor.
    """

    threshold: float = 0.09
    mode: str = "fixed"
    min_threshold: float = 0.05
    max_threshold: float = 0.30

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError(
                f"subtraction threshold must be in (0, 1), got {self.threshold}"
            )
        if self.mode not in ("fixed", "otsu"):
            raise ConfigurationError(
                f"mode must be 'fixed' or 'otsu', got {self.mode!r}"
            )
        if not 0.0 < self.min_threshold <= self.max_threshold < 1.0:
            raise ConfigurationError(
                "need 0 < min_threshold <= max_threshold < 1, got "
                f"{self.min_threshold} and {self.max_threshold}"
            )


def difference_image(frame: np.ndarray, background: np.ndarray) -> np.ndarray:
    """Maximum per-channel absolute difference ``(H, W)`` in [0, 1]."""
    frame = ensure_rgb(frame, "frame")
    background = ensure_rgb(background, "background")
    ensure_same_shape(frame, background, "frame and background")
    return np.abs(frame - background).max(axis=-1)


def subtract_background(
    frame: np.ndarray,
    background: np.ndarray,
    config: SubtractionConfig | None = None,
) -> np.ndarray:
    """Step 2: the raw foreground mask of one frame."""
    config = config or SubtractionConfig()
    difference = difference_image(frame, background)
    if config.mode == "otsu":
        from ..imaging.threshold import otsu_threshold

        threshold = float(
            np.clip(
                otsu_threshold(difference),
                config.min_threshold,
                config.max_threshold,
            )
        )
    else:
        threshold = config.threshold
    return difference > threshold
