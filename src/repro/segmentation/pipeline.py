"""The full five-step human-segmentation pipeline of Section 2.

``SegmentationPipeline.fit`` runs Step 1 (background estimation) once
for the whole sequence; ``segment`` then applies Steps 2–5 to a frame
and returns every intermediate mask, which is what the Fig. 2 / Fig. 3
benches plot.  A final (optional, on by default) largest-component
selection yields the single jumper silhouette the pose estimator needs.

The per-frame steps are modelled as named **sub-stages** (see
:meth:`SegmentationPipeline.sub_stage_names`) so the runtime's
instrumentation can time and count each paper step independently:
``segmentation/subtract``, ``segmentation/noise_removal``,
``segmentation/spot_removal``, ``segmentation/hole_fill``,
``segmentation/shadow`` and ``segmentation/components``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .background import (
    BackgroundResult,
    ChangeDetectionBackgroundEstimator,
    ChangeDetectionConfig,
    MedianBackgroundEstimator,
)
from .online import WarmupBackgroundModel
from .cleanup import (
    CleanupConfig,
    step_hole_fill,
    step_noise_removal,
    step_spot_removal,
)
from .shadow import ShadowMaskConfig, remove_shadows
from .subtraction import SubtractionConfig, subtract_background
from ..errors import ReproError, SegmentationError
from ..imaging.components import label_components
from ..perf import shm
from ..perf.executors import ParallelConfig, parallel_map
from ..registry import Registry
from ..runtime import Instrumentation
from ..video.sequence import VideoSequence

#: Per-frame segmentation sub-steps, selectable by name via
#: ``segmentation.steps``.  Each step is ``fn(state, config)`` over the
#: per-frame state dict (``frame``, ``background``, ``mask``, plus the
#: intermediate masks it writes).
SEGMENTATION_STEPS: Registry = Registry("segmentation step")

#: The paper's Steps 2–5, in order — the default ``steps`` value.
DEFAULT_STEPS = (
    "subtract",
    "noise_removal",
    "spot_removal",
    "hole_fill",
    "shadow",
    "components",
)


@dataclass(frozen=True, slots=True)
class SegmentationConfig:
    """All parameters of the five-step pipeline."""

    change_detection: ChangeDetectionConfig = field(
        default_factory=ChangeDetectionConfig
    )
    subtraction: SubtractionConfig = field(default_factory=SubtractionConfig)
    cleanup: CleanupConfig = field(default_factory=CleanupConfig)
    shadow: ShadowMaskConfig = field(default_factory=ShadowMaskConfig)
    use_median_background: bool = False  # baseline switch for Fig. 1 bench
    # Align frames to the first frame by phase correlation before
    # anything else.  Off by default (the paper assumes a tripod); turn
    # on for handheld footage — an unstabilised shaky sequence destroys
    # change-detection background estimation.
    stabilize: bool = False
    stabilize_max_shift: int = 8
    keep_largest_component: bool = True
    # A component is kept when its area is at least this fraction of
    # the largest one; cleanup can sever the jumper at a thin junction,
    # so strictly keeping one component would drop half the body.
    component_keep_fraction: float = 0.3
    # Multi-actor mode: with max_components > 1 the final step stops
    # collapsing to the dominant region and instead keeps the union of
    # the top-N components (area >= min_component_area each), emitting
    # them as per-component silhouette candidates on the
    # FrameSegmentation for the tracking layer to associate.  The
    # default (1) preserves the paper's one-jumper behaviour exactly.
    max_components: int = 1
    min_component_area: int = 40
    remove_shadows: bool = True
    # Per-frame sub-steps, by registry name and in execution order.
    # Dropping a name skips that paper step; registered extensions can
    # be spliced in without touching the pipeline class.
    steps: tuple[str, ...] = DEFAULT_STEPS

    def __post_init__(self) -> None:
        unknown = [name for name in self.steps if name not in SEGMENTATION_STEPS]
        if unknown:
            known = ", ".join(SEGMENTATION_STEPS.names())
            raise SegmentationError(
                f"unknown segmentation step(s) {unknown}; choose from: {known}"
            )
        if "subtract" not in self.steps:
            raise SegmentationError(
                "the 'subtract' step is mandatory (every later step "
                "consumes its foreground mask)"
            )
        if self.max_components < 1:
            raise SegmentationError(
                f"max_components must be >= 1, got {self.max_components}"
            )
        if self.min_component_area < 1:
            raise SegmentationError(
                f"min_component_area must be >= 1, got {self.min_component_area}"
            )


@dataclass(frozen=True, slots=True)
class FrameSegmentation:
    """Every intermediate mask of one frame (Fig. 2 a–d and Fig. 3)."""

    raw_foreground: np.ndarray  # Step 2 (Fig. 2a)
    after_noise_removal: np.ndarray  # Step 3, neighbour rule (Fig. 2b)
    after_spot_removal: np.ndarray  # Step 3, small spots (Fig. 2c)
    after_hole_fill: np.ndarray  # Step 4 (Fig. 2d)
    detected_shadow: np.ndarray  # Step 5 shadow mask
    person: np.ndarray  # final silhouette (Fig. 3)
    # Per-component silhouette candidates (multi-actor mode only, i.e.
    # ``max_components > 1``): one boolean mask per kept component,
    # largest first.  ``person`` is their union.  Empty in the paper's
    # single-jumper configuration.
    candidates: tuple[np.ndarray, ...] = ()

    def stages(self) -> dict[str, np.ndarray]:
        """All masks keyed by stage name, in pipeline order."""
        return {
            "raw_foreground": self.raw_foreground,
            "after_noise_removal": self.after_noise_removal,
            "after_spot_removal": self.after_spot_removal,
            "after_hole_fill": self.after_hole_fill,
            "person": self.person,
        }


# ----------------------------------------------------------------------
# The per-frame sub-steps (Steps 2–5), registered by name.  Each reads
# and writes the per-frame state dict; ``state["mask"]`` is the running
# foreground mask every step consumes and updates.
# ----------------------------------------------------------------------
@SEGMENTATION_STEPS.register("subtract")
def _step_subtract(state: dict[str, Any], config: SegmentationConfig) -> None:
    state["raw_foreground"] = subtract_background(
        state["frame"], state["background"], config.subtraction
    )
    state["mask"] = state["raw_foreground"]


@SEGMENTATION_STEPS.register("noise_removal")
def _step_noise_removal(state: dict[str, Any], config: SegmentationConfig) -> None:
    state["after_noise_removal"] = step_noise_removal(state["mask"], config.cleanup)
    state["mask"] = state["after_noise_removal"]


@SEGMENTATION_STEPS.register("spot_removal")
def _step_spot_removal(state: dict[str, Any], config: SegmentationConfig) -> None:
    state["after_spot_removal"] = step_spot_removal(state["mask"], config.cleanup)
    state["mask"] = state["after_spot_removal"]


@SEGMENTATION_STEPS.register("hole_fill")
def _step_hole_fill(state: dict[str, Any], config: SegmentationConfig) -> None:
    state["after_hole_fill"] = step_hole_fill(state["mask"], config.cleanup)
    state["mask"] = state["after_hole_fill"]


@SEGMENTATION_STEPS.register("shadow")
def _step_shadow(state: dict[str, Any], config: SegmentationConfig) -> None:
    if config.remove_shadows:
        person, detected = remove_shadows(
            state["frame"], state["background"], state["mask"], config.shadow
        )
    else:
        person = state["mask"]
        detected = np.zeros_like(person)
    state["detected_shadow"] = detected
    state["mask"] = person


@SEGMENTATION_STEPS.register("components")
def _step_components(state: dict[str, Any], config: SegmentationConfig) -> None:
    if config.max_components > 1:
        before = state["mask"]
        labels, count = label_components(before)
        if count == 0:
            state["candidates"] = ()
            state["mask"] = np.zeros_like(before, dtype=bool)
            state["components_total"] = 0
            state["components_rejected"] = 0
            state["rejected_area"] = 0
            return
        areas = np.bincount(labels.ravel(), minlength=count + 1)
        # Same ordering contract as imaging.top_n_components: area
        # descending, ties broken by raster-order label.
        ranked = sorted(
            (
                label
                for label in range(1, count + 1)
                if areas[label] >= config.min_component_area
            ),
            key=lambda label: (-areas[label], label),
        )[: config.max_components]
        candidates = tuple(labels == label for label in ranked)
        union = np.zeros_like(before, dtype=bool)
        for candidate in candidates:
            union |= candidate
        state["candidates"] = candidates
        state["mask"] = union
        state["components_total"] = count
        state["components_rejected"] = count - len(candidates)
        state["rejected_area"] = int(
            sum(int(areas[label]) for label in range(1, count + 1))
            - sum(int(areas[label]) for label in ranked)
        )
        return
    if config.keep_largest_component:
        before = state["mask"]
        labels, count = label_components(before)
        if count == 0:
            state["mask"] = np.zeros_like(before, dtype=bool)
            state["components_total"] = 0
            state["components_rejected"] = 0
            state["rejected_area"] = 0
            return
        areas = np.bincount(labels.ravel(), minlength=count + 1)
        areas[0] = 0
        keep = areas >= config.component_keep_fraction * areas.max()
        keep[0] = False
        state["mask"] = keep[labels]
        state["components_total"] = count
        state["components_rejected"] = int(count - keep.sum())
        state["rejected_area"] = int(areas[~keep].sum())


class SegmentationPipeline:
    """Steps 1–5 of the paper, orchestrated over a video sequence.

    The per-frame sub-steps are resolved by name from
    :data:`SEGMENTATION_STEPS` according to ``config.steps``, so a
    config can skip or reorder paper steps (and extensions can register
    new ones) without touching this class.

    Pass an :class:`~repro.runtime.Instrumentation` to time every
    sub-stage and count silhouette pixels; without one a silent
    collector is used.
    """

    def __init__(
        self,
        config: SegmentationConfig | None = None,
        instrumentation: Instrumentation | None = None,
        parallel: ParallelConfig | None = None,
    ) -> None:
        self.config = config or SegmentationConfig()
        self.instrumentation = instrumentation or Instrumentation()
        self.parallel = parallel or ParallelConfig()
        self._background_result: BackgroundResult | None = None

    # ------------------------------------------------------------------
    # Step 1
    # ------------------------------------------------------------------
    def _estimator(
        self,
    ) -> MedianBackgroundEstimator | ChangeDetectionBackgroundEstimator:
        """The batch Step-1 estimator this config selects."""
        if self.config.use_median_background:
            return MedianBackgroundEstimator()
        return ChangeDetectionBackgroundEstimator(self.config.change_detection)

    def background_model(self, warmup_frames: int = 0) -> WarmupBackgroundModel:
        """A fresh online Step-1 model matching this pipeline's config.

        The model buffers observed frames and freezes them through the
        configured batch estimator, so freezing after the whole sequence
        is byte-identical to :meth:`fit`.  ``warmup_frames`` sets when
        the model reports :attr:`~WarmupBackgroundModel.ready` (``0``:
        the owner decides).
        """
        return WarmupBackgroundModel(
            self._estimator(), warmup_frames=warmup_frames
        )

    def fit(self, video: VideoSequence) -> BackgroundResult:
        """Estimate the background (Step 1) and remember it."""
        with self.instrumentation.span("segmentation/fit_background"):
            model = self.background_model()
            model.observe_video(video)
            self._background_result = model.freeze()
        return self._background_result

    def set_background(self, result: BackgroundResult) -> None:
        """Adopt a background frozen elsewhere.

        Used by the streaming analyzer (which freezes an
        :class:`~repro.segmentation.online.OnlineBackgroundModel` after
        its warm-up) and by the process-pool workers (which rebuild the
        fitted pipeline from a shipped background).
        """
        self._background_result = result

    @property
    def background_result(self) -> BackgroundResult:
        """The full Step-1 result (requires :meth:`fit` or
        :meth:`set_background`)."""
        if self._background_result is None:
            raise SegmentationError("call fit() before reading the background")
        return self._background_result

    @property
    def background(self) -> np.ndarray:
        """The estimated background image (requires :meth:`fit`)."""
        return self.background_result.background

    # ------------------------------------------------------------------
    # Steps 2–5, as named sub-stages over a per-frame state dict
    # ------------------------------------------------------------------
    def _sub_stages(
        self,
    ) -> tuple[tuple[str, Callable[[dict[str, Any], SegmentationConfig], None]], ...]:
        return tuple(
            (name, SEGMENTATION_STEPS.get(name)) for name in self.config.steps
        )

    def sub_stage_names(self) -> tuple[str, ...]:
        """Names of the per-frame sub-stages, in execution order."""
        return tuple(self.config.steps)

    def segment(self, frame: np.ndarray) -> FrameSegmentation:
        """Apply the configured per-frame steps (default: Steps 2–5)."""
        return self._segment_with(frame, self.instrumentation)

    def _segment_with(
        self, frame: np.ndarray, instrumentation: Instrumentation
    ) -> FrameSegmentation:
        state: dict[str, Any] = {"frame": frame, "background": self.background}
        for name, step in self._sub_stages():
            with instrumentation.span(f"segmentation/{name}"):
                step(state, self.config)
        state["person"] = state["mask"]

        instrumentation.count("segmentation.frames", 1)
        instrumentation.count(
            "segmentation.person_pixels", float(state["person"].sum())
        )
        # Discarded actors/noise blobs are an observable, not a silent
        # drop: /metrics and --profile report how many components the
        # final step rejected and how much silhouette area went with
        # them.
        if "components_rejected" in state:
            instrumentation.count(
                "segmentation.components_total", state["components_total"]
            )
            instrumentation.count(
                "segmentation.components_rejected",
                state["components_rejected"],
            )
            instrumentation.count(
                "segmentation.rejected_area", float(state["rejected_area"])
            )
        # Steps skipped by config fall back to the nearest upstream
        # mask, so the FrameSegmentation record stays total.
        raw = state["raw_foreground"]
        after_noise = state.get("after_noise_removal", raw)
        after_spot = state.get("after_spot_removal", after_noise)
        after_hole = state.get("after_hole_fill", after_spot)
        return FrameSegmentation(
            raw_foreground=raw,
            after_noise_removal=after_noise,
            after_spot_removal=after_spot,
            after_hole_fill=after_hole,
            detected_shadow=state.get(
                "detected_shadow", np.zeros_like(state["person"])
            ),
            person=state["person"],
            candidates=tuple(state.get("candidates", ())),
        )

    def segment_video(self, video: VideoSequence) -> list[FrameSegmentation]:
        """Fit on the sequence, then segment every frame.

        With ``stabilize`` enabled, frames are first aligned to frame 0
        by phase correlation; the returned masks are shifted back into
        each original frame's coordinates.
        """
        offsets: list[tuple[int, int]] | None = None
        if self.config.stabilize:
            from ..imaging.registration import stabilize_frames

            with self.instrumentation.span("segmentation/stabilize"):
                aligned, offsets = stabilize_frames(
                    video.frames, max_shift=self.config.stabilize_max_shift
                )
            video = VideoSequence(aligned)

        self.fit(video)
        frames = list(video)
        parallel = self.parallel
        if parallel.is_serial or len(frames) <= 1:
            segmentations = [self.segment(frame) for frame in frames]
        else:
            # Each worker records into a private collector (the shared
            # instrumentation is not synchronised) and ships it back
            # with the frame's masks; the collectors are merged after
            # the fan-out, so per-step spans and counters survive
            # parallel execution.  Merged span seconds are summed CPU
            # time across workers, which can exceed the wall-clock
            # ``segmentation/parallel_frames`` span that brackets the
            # whole batch.
            with self.instrumentation.span("segmentation/parallel_frames"):
                if parallel.backend == "threads":
                    results = parallel_map(
                        self._segment_collect, frames, parallel
                    )
                else:
                    results = self._segment_frames_processes(frames, parallel)
            segmentations = [seg for seg, _ in results]
            for _, worker_instrumentation in results:
                self.instrumentation.merge(worker_instrumentation)

        if offsets is not None:
            from ..imaging.registration import shift_image

            undone: list[FrameSegmentation] = []
            for seg, (drow, dcol) in zip(segmentations, offsets):
                undone.append(
                    FrameSegmentation(
                        raw_foreground=shift_image(seg.raw_foreground, -drow, -dcol),
                        after_noise_removal=shift_image(
                            seg.after_noise_removal, -drow, -dcol
                        ),
                        after_spot_removal=shift_image(
                            seg.after_spot_removal, -drow, -dcol
                        ),
                        after_hole_fill=shift_image(seg.after_hole_fill, -drow, -dcol),
                        detected_shadow=shift_image(seg.detected_shadow, -drow, -dcol),
                        person=shift_image(seg.person, -drow, -dcol),
                        candidates=tuple(
                            shift_image(candidate, -drow, -dcol)
                            for candidate in seg.candidates
                        ),
                    )
                )
            segmentations = undone
        return segmentations

    def _segment_collect(
        self, frame: np.ndarray
    ) -> tuple[FrameSegmentation, Instrumentation]:
        """One frame with a private collector, returned for merging."""
        instrumentation = Instrumentation()
        return self._segment_with(frame, instrumentation), instrumentation

    # ------------------------------------------------------------------
    # Processes backend: shared-memory fan-out with pickled fallback
    # ------------------------------------------------------------------
    def _segment_frames_processes(
        self, frames: list[np.ndarray], parallel: ParallelConfig
    ) -> list[tuple[FrameSegmentation, Instrumentation]]:
        """Fan frames out to a process pool, zero-copy when possible.

        The shared-memory path is strictly an optimisation: any failure
        to create, attach, or survive the fan-out (no /dev/shm, a
        SIGKILLed worker breaking the pool, ...) degrades to the
        pickled-copy path with a logged warning and a bump of the
        ``shm_fallbacks`` counter surfaced in ``/metrics``.  Genuine
        segmentation errors propagate unchanged on both paths.
        """
        # The arenas only pay off when the fan-out actually crosses a
        # process boundary; a pool capped to one worker (single-CPU
        # host) runs in-process, where the arena copies are pure cost.
        crosses_processes = parallel.pool_size(len(frames)) > 1
        if crosses_processes and parallel.shared_memory and shm.shm_available():
            try:
                return self._segment_frames_shm(frames, parallel)
            except shm.SharedMemoryUnavailable as exc:
                reason = f"{type(exc).__name__}: {exc}"
            except ReproError:
                raise
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
            shm.record_fallback(reason)
            self.instrumentation.count("segmentation.shm_fallbacks", 1)
        return parallel_map(
            _segment_in_worker,
            frames,
            parallel,
            initializer=_init_segmentation_worker,
            initargs=(self.config, self._background_result),
        )

    def _segment_frames_shm(
        self, frames: list[np.ndarray], parallel: ParallelConfig
    ) -> list[tuple[FrameSegmentation, Instrumentation]]:
        """Segment via shared-memory arenas: descriptors out, masks back.

        Frames live in one read-only arena; each worker writes its six
        stage masks into a ``(T, 6, H, W)`` result arena at the frame's
        index, so the only pickled payloads are ~100-byte descriptors
        outbound and (index, candidates, instrumentation) inbound.  The
        mask stack is copied out before the arenas are unlinked —
        returned arrays must outlive the segments.
        """
        stack = np.ascontiguousarray(np.stack(frames))
        height, width = stack.shape[1], stack.shape[2]
        frames_arena = shm.SharedFrameArena.create(stack)
        masks_arena: shm.SharedFrameArena | None = None
        try:
            masks_arena = shm.SharedFrameArena.create_empty(
                (len(frames), len(_SHM_MASK_FIELDS), height, width), bool
            )
            results = parallel_map(
                _segment_shm_in_worker,
                frames_arena.descriptors(),
                parallel,
                initializer=_init_segmentation_shm_worker,
                initargs=(
                    self.config,
                    self._background_result,
                    masks_arena.descriptor(),
                ),
            )
            mask_stacks = np.array(masks_arena.array, copy=True)
        finally:
            # The degenerate in-process path attaches through the
            # worker cache in this very process; drop those mappings
            # before unlinking so nothing pins the dead segments.
            shm.detach_all()
            frames_arena.close()
            frames_arena.unlink()
            if masks_arena is not None:
                masks_arena.close()
                masks_arena.unlink()

        collected: list[tuple[FrameSegmentation, Instrumentation]] = []
        for index, candidates, instrumentation in results:
            masks = mask_stacks[index]
            collected.append(
                (
                    FrameSegmentation(
                        raw_foreground=masks[0],
                        after_noise_removal=masks[1],
                        after_spot_removal=masks[2],
                        after_hole_fill=masks[3],
                        detected_shadow=masks[4],
                        person=masks[5],
                        candidates=candidates,
                    ),
                    instrumentation,
                )
            )
        return collected

    def silhouettes(self, video: VideoSequence) -> list[np.ndarray]:
        """Convenience: just the final person mask of every frame."""
        return [seg.person for seg in self.segment_video(video)]


# ----------------------------------------------------------------------
# Process-backend workers.  The fitted pipeline is rebuilt once per
# worker from (config, background) shipped through the pool initializer,
# so frames are the only per-task payload crossing the process boundary.
# ----------------------------------------------------------------------
_WORKER_PIPELINE: SegmentationPipeline | None = None


def _init_segmentation_worker(
    config: SegmentationConfig, background: BackgroundResult
) -> None:
    global _WORKER_PIPELINE
    pipeline = SegmentationPipeline(config)
    pipeline.set_background(background)
    _WORKER_PIPELINE = pipeline


def _segment_in_worker(
    frame: np.ndarray,
) -> tuple[FrameSegmentation, Instrumentation]:
    if _WORKER_PIPELINE is None:  # pragma: no cover - initializer contract
        raise SegmentationError("segmentation worker used before initialisation")
    return _WORKER_PIPELINE._segment_collect(frame)


# Mask fields written into the shared result arena, in slot order; the
# parent reconstructs FrameSegmentation from the same order.
_SHM_MASK_FIELDS = (
    "raw_foreground",
    "after_noise_removal",
    "after_spot_removal",
    "after_hole_fill",
    "detected_shadow",
    "person",
)

_WORKER_MASKS: shm.FrameDescriptor | None = None


def _init_segmentation_shm_worker(
    config: SegmentationConfig,
    background: BackgroundResult,
    masks_descriptor: shm.FrameDescriptor,
) -> None:
    global _WORKER_MASKS
    _init_segmentation_worker(config, background)
    _WORKER_MASKS = masks_descriptor


def _segment_shm_in_worker(
    descriptor: shm.FrameDescriptor,
) -> tuple[int, tuple[np.ndarray, ...], Instrumentation]:
    """Segment one shared frame; masks go back through the arena.

    Only the frame index, the (usually empty) multi-actor candidate
    masks and the worker's instrumentation cross the pipe — the six
    stage masks are written straight into the shared result arena.
    """
    if _WORKER_PIPELINE is None or _WORKER_MASKS is None:
        # pragma: no cover - initializer contract
        raise SegmentationError("segmentation worker used before initialisation")
    frame = shm.attached_frame(descriptor)
    segmentation, instrumentation = _WORKER_PIPELINE._segment_collect(frame)
    masks = shm.attached_array(_WORKER_MASKS)
    for slot, field_name in enumerate(_SHM_MASK_FIELDS):
        masks[descriptor.index, slot] = getattr(segmentation, field_name)
    return descriptor.index, segmentation.candidates, instrumentation
