"""Temporal localisation: find the attempts in a long video.

The paper's contract is "frame 1 is pre-takeoff, the last frame is the
landing" — real footage has dead time and multiple attempts.  This
package locates the action: per-frame motion-energy and
silhouette-centroid signals (:mod:`repro.localization.signals`,
reusing the Step-1 change-detection machinery), a hysteresis segmenter
that turns the energy signal into
:class:`~repro.localization.windows.AttemptWindow` spans, and a typed
:class:`~repro.localization.config.LocalizationConfig` the analyzer
consumes as a front-stage (``AnalyzerConfig.localization``).

See ``docs/profiles.md`` for the signal pipeline and window semantics.
"""

from .config import LocalizationConfig
from .signals import centroid_track, motion_energy
from .windows import (
    AttemptWindow,
    LocalizationResult,
    find_attempt_windows,
    localize_attempts,
)

__all__ = [
    "LocalizationConfig",
    "AttemptWindow",
    "LocalizationResult",
    "centroid_track",
    "find_attempt_windows",
    "localize_attempts",
    "motion_energy",
]
