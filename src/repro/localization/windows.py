"""Attempt-window segmentation of the motion-energy signal."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .config import LocalizationConfig
from .signals import centroid_track, motion_energy
from ..video.sequence import VideoSequence


@dataclass(frozen=True, slots=True)
class AttemptWindow:
    """One candidate attempt: a half-open frame span with confidence."""

    start: int
    end: int  # exclusive
    confidence: float

    @property
    def frames(self) -> int:
        """Number of frames in the window."""
        return self.end - self.start

    def iou(self, other: "AttemptWindow") -> float:
        """Temporal intersection-over-union with another window."""
        inter = min(self.end, other.end) - max(self.start, other.start)
        if inter <= 0:
            return 0.0
        union = max(self.end, other.end) - min(self.start, other.start)
        return inter / union

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "start": self.start,
            "end": self.end,
            "frames": self.frames,
            "confidence": self.confidence,
        }


@dataclass(frozen=True, slots=True)
class LocalizationResult:
    """Everything one localisation pass produced."""

    windows: tuple[AttemptWindow, ...]  # temporal order
    energy: tuple[float, ...]  # per-frame motion energy
    #: Resolved hysteresis thresholds of this clip.
    seed_threshold: float
    floor: float
    num_frames: int
    #: True when more than ``max_attempts`` windows were found and the
    #: lowest-confidence ones were dropped.
    truncated: bool = False

    @property
    def primary_index(self) -> int | None:
        """Index of the highest-confidence window (ties: earliest)."""
        if not self.windows:
            return None
        best = max(range(len(self.windows)),
                   key=lambda i: (self.windows[i].confidence, -i))
        return best

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the ``localization`` payload block)."""
        return {
            "enabled": True,
            "num_frames": self.num_frames,
            "windows": [w.to_dict() for w in self.windows],
            "primary": self.primary_index,
            "seed_threshold": self.seed_threshold,
            "floor": self.floor,
            "truncated": self.truncated,
        }


def _runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` spans of True runs in ``mask``."""
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return [(int(edges[i]), int(edges[i + 1])) for i in range(0, len(edges), 2)]


def find_attempt_windows(
    energy: np.ndarray, config: LocalizationConfig
) -> tuple[list[tuple[int, int]], float, float]:
    """Segment an energy signal into raw attempt spans.

    Returns ``(spans, seed_threshold, floor)`` — spans are half-open,
    temporally ordered, merged and padded but *unscored* (confidence
    needs the centroid signal; see :func:`localize_attempts`).
    """
    floor = config.activity_floor
    n = len(energy)
    above = energy > floor
    if n == 0 or not above.any():
        return [], floor, floor
    # Robust reference: a high quantile of above-floor energies, so a
    # single freak frame (e.g. a scene cut) cannot raise the seed bar
    # past every real attempt.
    reference = float(np.percentile(energy[above], 90.0))
    seed_threshold = max(floor, config.activity_fraction * reference)
    seeds = energy >= seed_threshold
    if not seeds.any():
        return [], seed_threshold, floor
    # Hysteresis: keep above-floor runs that contain at least one seed.
    spans = [
        (start, end)
        for start, end in _runs(above)
        if seeds[start:end].any()
    ]
    # Merge runs separated by short quiet gaps.
    merged: list[tuple[int, int]] = []
    for start, end in spans:
        if merged and start - merged[-1][1] <= config.merge_gap:
            merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    # Drop flicker before padding, so an isolated spike cannot grow a
    # window out of pure context frames.
    merged = [
        (s, e) for s, e in merged if e - s >= config.min_window_frames
    ]
    # Pad with context and re-merge any overlaps padding created.
    padded: list[tuple[int, int]] = []
    for start, end in merged:
        start = max(0, start - config.pad_before)
        end = min(n, end + config.pad_after)
        if padded and start <= padded[-1][1]:
            padded[-1] = (padded[-1][0], end)
        else:
            padded.append((start, end))
    return padded, seed_threshold, floor


def localize_attempts(
    video: VideoSequence, config: LocalizationConfig | None = None
) -> LocalizationResult:
    """Find the attempt windows of a long video.

    Computes the motion-energy signal, segments it (see
    :func:`find_attempt_windows`), and scores every window with a
    deterministic confidence blending its mean energy against the clip
    reference with the silhouette-centroid travel across the window —
    an energetic window whose subject actually *goes somewhere* ranks
    above one that merely flickers.  A clip with no activity yields an
    empty window tuple (the analyzer's clean ``no_attempts`` path),
    never an exception.
    """
    config = config or LocalizationConfig()
    energy = motion_energy(video, config.pixel_threshold)
    spans, seed_threshold, floor = find_attempt_windows(energy, config)
    windows: list[AttemptWindow] = []
    if spans:
        centroids = centroid_track(video, config.pixel_threshold)
        diagonal = float(np.hypot(video.width, video.height))
        peak = float(max(energy.max(), 1e-12))
        for start, end in spans:
            window_energy = float(energy[start:end].mean()) / peak
            valid = ~np.isnan(centroids[start:end, 0])
            if valid.sum() >= 2:
                first = centroids[start:end][valid][0]
                last = centroids[start:end][valid][-1]
                travel = float(np.hypot(*(last - first)))
                # A quarter of the frame diagonal is "travelled plenty".
                travel_score = min(1.0, travel / (0.25 * diagonal))
            else:
                travel_score = 0.0
            confidence = 0.6 * min(1.0, window_energy) + 0.4 * travel_score
            windows.append(AttemptWindow(start, end, float(confidence)))
    truncated = len(windows) > config.max_attempts
    if truncated:
        keep = sorted(
            sorted(range(len(windows)),
                   key=lambda i: windows[i].confidence,
                   reverse=True)[: config.max_attempts]
        )
        windows = [windows[i] for i in keep]
    return LocalizationResult(
        windows=tuple(windows),
        energy=tuple(float(e) for e in energy),
        seed_threshold=seed_threshold,
        floor=floor,
        num_frames=len(video),
        truncated=truncated,
    )
