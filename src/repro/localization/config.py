"""Typed configuration of the temporal localisation front-stage."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class LocalizationConfig:
    """Find-the-attempt behaviour of the analyzer.

    Off by default: the paper's contract is "the clip *is* the jump",
    and that path stays untouched.  With ``enabled``, the analyzer
    first scans the whole video for activity (see
    :mod:`repro.localization.signals`), segments it into
    :class:`~repro.localization.windows.AttemptWindow` spans, and
    analyses each window independently — long clips with dead time and
    multiple attempts become an ``attempts`` array on the analysis.

    The segmenter is a hysteresis (Schmitt-trigger) threshold on the
    motion-energy signal:

    * a frame whose changed-pixel fraction reaches
      ``max(activity_floor, activity_fraction * reference)`` *seeds* a
      window (``reference`` is a robust high quantile of the
      above-floor energies, so one freak frame cannot raise the bar
      for everything else);
    * the window extends outward over every neighbouring frame still
      at or above ``activity_floor`` — so the quiet wind-up and settle
      around an energetic jump stay inside its window;
    * runs closer than ``merge_gap`` frames merge, each window is
      padded by ``pad_before`` / ``pad_after`` context frames, and
      anything shorter than ``min_window_frames`` is dropped as noise.

    All knobs change results, so the whole block participates in
    ``config_hash``.
    """

    enabled: bool = False
    #: Per-pixel change threshold (max-channel |frame[t] − frame[t−1]|,
    #: frames in [0, 1]) — the Step-1 change test, but deliberately
    #: *coarser* than segmentation's 0.05: localisation only needs to
    #: see the person move, so the threshold sits above sensor noise
    #: and transient light blobs (NoiseConfig.blob_strength 0.18) and
    #: below person-vs-background contrast.
    pixel_threshold: float = 0.20
    #: Absolute changed-pixel fraction below which a frame is dead time
    #: (the hysteresis *low* threshold).
    activity_floor: float = 0.002
    #: Seed threshold as a fraction of the clip's reference energy
    #: (the hysteresis *high* threshold).
    activity_fraction: float = 0.25
    #: Windows shorter than this are dropped (scoring needs >= 4
    #: frames; real attempts are much longer).
    min_window_frames: int = 6
    #: Active runs separated by at most this many quiet frames merge.
    merge_gap: int = 4
    #: Context frames prepended / appended to every window.
    pad_before: int = 4
    pad_after: int = 3
    #: Hard cap on emitted windows (highest-confidence kept, temporal
    #: order preserved); ``LocalizationResult.truncated`` records a hit.
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.pixel_threshold < 1.0:
            raise ConfigurationError(
                "localization.pixel_threshold must be in (0, 1), got "
                f"{self.pixel_threshold}"
            )
        if not 0.0 <= self.activity_floor < 1.0:
            raise ConfigurationError(
                "localization.activity_floor must be in [0, 1), got "
                f"{self.activity_floor}"
            )
        if not 0.0 < self.activity_fraction <= 1.0:
            raise ConfigurationError(
                "localization.activity_fraction must be in (0, 1], got "
                f"{self.activity_fraction}"
            )
        if self.min_window_frames < 4:
            raise ConfigurationError(
                "localization.min_window_frames must be >= 4 (scoring "
                f"needs four poses), got {self.min_window_frames}"
            )
        if self.merge_gap < 0:
            raise ConfigurationError(
                f"localization.merge_gap must be >= 0, got {self.merge_gap}"
            )
        if self.pad_before < 0 or self.pad_after < 0:
            raise ConfigurationError(
                "localization.pad_before/pad_after must be >= 0, got "
                f"{self.pad_before}/{self.pad_after}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"localization.max_attempts must be >= 1, got {self.max_attempts}"
            )
