"""Per-frame activity signals over a long video.

Two cheap whole-clip signals drive temporal localisation:

* **motion energy** — the fraction of pixels whose max-channel
  difference from the previous frame exceeds a threshold.  This is the
  Step-1 change-detection test (see
  :class:`~repro.segmentation.online.RunningBackgroundModel`) reduced
  to one scalar per frame: dead time sits at ~0, any articulated
  movement lifts it well clear.
* **silhouette centroid** — the per-frame foreground centroid against
  a background frozen from the *whole* clip through the running
  background model.  A real attempt moves the centroid (horizontally
  for a jump, vertically for a chair rise); flicker does not — window
  confidence uses centroid travel to rank windows.
"""

from __future__ import annotations

import numpy as np

from ..segmentation.background import ChangeDetectionConfig
from ..segmentation.online import RunningBackgroundModel
from ..video.sequence import VideoSequence


def motion_energy(
    video: VideoSequence, pixel_threshold: float = 0.05
) -> np.ndarray:
    """Changed-pixel fraction per frame (``energy[0]`` is 0).

    ``energy[t]`` is the fraction of pixels where the max-channel
    absolute difference between frames ``t`` and ``t-1`` exceeds
    ``pixel_threshold`` — the same per-pixel test Step 1 uses to find
    *stable* pixels, inverted into an activity measure.
    """
    energy = np.zeros(len(video), dtype=np.float64)
    prev: np.ndarray | None = None
    for index, frame in enumerate(video):
        frame = np.asarray(frame, dtype=np.float64)
        if prev is not None:
            changed = np.abs(frame - prev).max(axis=-1) > pixel_threshold
            energy[index] = float(changed.mean())
        prev = frame
    return energy


def centroid_track(
    video: VideoSequence, pixel_threshold: float = 0.05
) -> np.ndarray:
    """Foreground-centroid ``(x, y)`` per frame; NaN where empty.

    The background is estimated once over the whole clip with the
    O(1)-memory :class:`~repro.segmentation.online.RunningBackgroundModel`
    (dead time dominates a long clip, so the stable-pixel background is
    clean), then each frame's foreground mask is its max-channel
    difference from that background thresholded at ``pixel_threshold``.
    """
    track = np.full((len(video), 2), np.nan, dtype=np.float64)
    if len(video) < 2:
        return track
    model = RunningBackgroundModel(
        ChangeDetectionConfig(threshold=pixel_threshold)
    )
    for frame in video:
        model.observe(frame)
    background = model.freeze().background
    for index, frame in enumerate(video):
        frame = np.asarray(frame, dtype=np.float64)
        mask = np.abs(frame - background).max(axis=-1) > pixel_threshold
        ys, xs = np.nonzero(mask)
        if xs.size:
            track[index, 0] = float(xs.mean())
            track[index, 1] = float(ys.mean())
    return track
