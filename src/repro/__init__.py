"""repro — a full reproduction of *Motion Analysis for the Standing
Long Jump* (Hsu et al., ICDCSW 2006).

The library implements the paper's three-part system end to end, plus
the synthetic-video substrate and ground truth needed to evaluate it:

* :mod:`repro.segmentation` — the five-step human segmentation of
  Section 2 (change-detection background, subtraction, noise/spot/hole
  cleanup, HSV shadow removal);
* :mod:`repro.model` / :mod:`repro.ga` — the stick model and GA pose
  estimation of Section 3, including the temporal tracker;
* :mod:`repro.scoring` — the standards and rules of Section 4 with
  report generation;
* :mod:`repro.video.synthesis` — parametric standing-long-jump videos
  with exact silhouette/shadow/pose ground truth;
* :mod:`repro.imaging` — the from-scratch image-processing substrate;
* :mod:`repro.analysis` — trajectory smoothing, event detection and
  flight kinematics;
* :mod:`repro.runtime` — the composable stage runtime (Stage /
  PipelineRunner / Instrumentation) every layer is composed from;
* :mod:`repro.pipeline` — the end-to-end :class:`JumpAnalyzer`;
* :mod:`repro.streaming` — the push-based frame-at-a-time core
  (:class:`StreamingAnalyzer`) that batch ``analyze`` wraps, with
  provisional mid-stream estimates;
* :mod:`repro.localization` — temporal attempt localisation: find the
  jump(s) inside a long clip before analysing each window;
* :mod:`repro.profiles` — the movement-profile registry that lifts the
  paper's standards/rules tables into a pluggable
  :class:`MovementProfile` (``standing_long_jump``, ``sit_to_stand``);
* :mod:`repro.service` / :mod:`repro.client` / :mod:`repro.jobs` — the
  versioned ``/v1`` HTTP service the paper sketches as future work,
  its typed client, and the asynchronous job subsystem.

The intended entry points are re-exported here and frozen in
``repro.__all__`` (snapshot-tested); see ``docs/api.md`` for the tour.

Quickstart::

    from repro import JumpAnalyzer, synthesize_jump, simulate_human_annotation

    jump = synthesize_jump()
    annotation = simulate_human_annotation(
        jump.motion.poses[0], jump.dims, mask=jump.person_masks[0]
    )
    analysis = JumpAnalyzer().analyze(jump.video, annotation=annotation)
    print(analysis.report.render_text())
"""

from .errors import (
    CancelledError,
    CircuitOpen,
    ConfigurationError,
    ImageError,
    ModelError,
    ReproError,
    ScoringError,
    SegmentationError,
    StreamError,
    TrackingError,
    VideoError,
)
from .config import (
    config_from_dict,
    config_hash,
    config_to_dict,
    get_preset,
    preset_names,
    resolve_config,
)
from .ga import (
    GAConfig,
    GeneticAlgorithm,
    SingleFrameConfig,
    TemporalPoseTracker,
    TrackerConfig,
    TrackingResult,
    TrackingSession,
    estimate_single_frame,
)
from .model import (
    AngleWindows,
    BodyDimensions,
    FirstFrameAnnotation,
    SilhouetteFitness,
    StickPose,
    auto_annotate,
    default_body,
    simulate_human_annotation,
)
from .evaluation import (
    DetectionEvaluation,
    MOTEvaluation,
    TrackingEvaluation,
    evaluate_detection,
    evaluate_mot,
    evaluate_tracking,
)
from .localization import (
    AttemptWindow,
    LocalizationConfig,
    LocalizationResult,
    localize_attempts,
    motion_energy,
)
from .pipeline import (
    AnalyzerConfig,
    AttemptAnalysis,
    JumpAnalysis,
    JumpAnalyzer,
    RobustnessConfig,
    StreamingConfig,
    analyze_video,
    multi_actor_config,
)
from .profiles import (
    MOVEMENT_PROFILES,
    MovementProfile,
    get_profile,
    profile_names,
)
from .tracking import (
    AssociationResult,
    Track,
    TrackAnalysis,
    TrackManager,
    TrackingConfig,
    associate,
    box_iou,
)
from .streaming import FrameUpdate, ProvisionalEstimate, StreamingAnalyzer
from .runtime import (
    FunctionStage,
    Instrumentation,
    LoggingSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    PipelineRunner,
    RunTrace,
    Stage,
    StageContext,
    StageTiming,
)
from .scoring import (
    RULES,
    JumpMeasurement,
    JumpReport,
    JumpScorer,
    PixelCalibration,
    StageWindows,
    Standard,
    grade_distance,
    measure_jump,
)
from .segmentation import (
    OnlineBackgroundModel,
    RunningBackgroundModel,
    SegmentationConfig,
    SegmentationPipeline,
    WarmupBackgroundModel,
)
from .jobs import (
    FrameQueue,
    FrameQueueFull,
    JobManager,
    JobsConfig,
    JobState,
    JobStore,
    JobStoreBackend,
    SharedDirectoryBackend,
    SingleProcessBackend,
    StreamIdleTimeout,
)
from .service import (
    API_VERSION,
    ServiceConfig,
    ServiceHandle,
    encode_video,
    decode_video,
    request_analysis,
    route_table,
    serve,
)
from .client import (
    ClientError,
    JobFailedError,
    JobTimeoutError,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from .resilience import (
    CHECKPOINT_STAGES,
    CircuitBreaker,
    JobCheckpointer,
    ServiceLifecycle,
    StageCheckpoint,
    Watchdog,
)
from .video import VideoSequence
from .video.synthesis import (
    JumpParameters,
    JumpStyle,
    LongClip,
    LongClipConfig,
    MultiActorJump,
    MultiActorJumpConfig,
    SitToStandClip,
    SitToStandClipConfig,
    SyntheticJump,
    SyntheticJumpConfig,
    synthesize_flawed_jump,
    synthesize_idle_clip,
    synthesize_jump,
    synthesize_long_clip,
    synthesize_multi_jump,
    synthesize_sit_to_stand,
)

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "CancelledError",
    "ClientError",
    "ConfigurationError",
    "ImageError",
    "ModelError",
    "ReproError",
    "ScoringError",
    "SegmentationError",
    "StreamError",
    "TrackingError",
    "VideoError",
    "GAConfig",
    "GeneticAlgorithm",
    "SingleFrameConfig",
    "TemporalPoseTracker",
    "TrackerConfig",
    "TrackingResult",
    "TrackingSession",
    "estimate_single_frame",
    "AngleWindows",
    "BodyDimensions",
    "FirstFrameAnnotation",
    "SilhouetteFitness",
    "StickPose",
    "auto_annotate",
    "default_body",
    "simulate_human_annotation",
    "AnalyzerConfig",
    "AttemptAnalysis",
    "AttemptWindow",
    "JumpAnalysis",
    "JumpAnalyzer",
    "LocalizationConfig",
    "LocalizationResult",
    "MOVEMENT_PROFILES",
    "MovementProfile",
    "RobustnessConfig",
    "StreamingConfig",
    "analyze_video",
    "get_profile",
    "localize_attempts",
    "motion_energy",
    "multi_actor_config",
    "profile_names",
    "AssociationResult",
    "Track",
    "TrackAnalysis",
    "TrackManager",
    "TrackingConfig",
    "associate",
    "box_iou",
    "FrameUpdate",
    "ProvisionalEstimate",
    "StreamingAnalyzer",
    "FunctionStage",
    "Instrumentation",
    "LoggingSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PipelineRunner",
    "RunTrace",
    "Stage",
    "StageContext",
    "StageTiming",
    "DetectionEvaluation",
    "MOTEvaluation",
    "TrackingEvaluation",
    "evaluate_detection",
    "evaluate_mot",
    "evaluate_tracking",
    "JumpMeasurement",
    "JumpReport",
    "JumpScorer",
    "PixelCalibration",
    "RULES",
    "StageWindows",
    "Standard",
    "grade_distance",
    "measure_jump",
    "OnlineBackgroundModel",
    "RunningBackgroundModel",
    "SegmentationConfig",
    "SegmentationPipeline",
    "WarmupBackgroundModel",
    "FrameQueue",
    "FrameQueueFull",
    "JobFailedError",
    "JobManager",
    "JobState",
    "JobStore",
    "JobStoreBackend",
    "JobTimeoutError",
    "JobsConfig",
    "SharedDirectoryBackend",
    "SingleProcessBackend",
    "StreamIdleTimeout",
    "CHECKPOINT_STAGES",
    "CircuitBreaker",
    "CircuitOpen",
    "JobCheckpointer",
    "RetryPolicy",
    "ServiceLifecycle",
    "StageCheckpoint",
    "Watchdog",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "config_from_dict",
    "config_hash",
    "config_to_dict",
    "decode_video",
    "encode_video",
    "get_preset",
    "preset_names",
    "request_analysis",
    "resolve_config",
    "route_table",
    "serve",
    "VideoSequence",
    "JumpParameters",
    "JumpStyle",
    "LongClip",
    "LongClipConfig",
    "MultiActorJump",
    "MultiActorJumpConfig",
    "SitToStandClip",
    "SitToStandClipConfig",
    "SyntheticJump",
    "SyntheticJumpConfig",
    "synthesize_flawed_jump",
    "synthesize_idle_clip",
    "synthesize_jump",
    "synthesize_long_clip",
    "synthesize_multi_jump",
    "synthesize_sit_to_stand",
    "__version__",
]
