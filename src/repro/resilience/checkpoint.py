"""Crash-safe job state: input spools and per-stage checkpoints.

Two kinds of on-disk state live under one per-job directory
(``<checkpoint_dir>/<job_id>/``):

* an **input spool** written at submit time (``input.npz`` +
  ``meta.json`` for batch jobs; a ``frames/chunk_*.npy`` sequence plus
  an ``eof`` marker for streaming jobs).  The :class:`~repro.jobs.store.JobStore`
  persistence file only carries job *metadata* — without the spool a
  restarted process has nothing to re-run, which is why jobs without
  one still fail as ``Interrupted`` on restart (the PR-5 behaviour).

* a **stage checkpoint** written by :class:`JobCheckpointer` at every
  :class:`~repro.runtime.PipelineRunner` stage boundary.  On restart a
  resumed job replays from the last completed stage instead of from
  frame zero.

Checkpoint format (documented in ``docs/robustness.md``): the commit
marker is ``checkpoint.json`` — scalars, the serialised annotation,
per-frame health and the numpy bit-generator state — next to a
``checkpoint.npz`` holding the bulky arrays (person-mask stack,
background, candidate masks, pose/record genes).  Both are written to
temporary names and ``os.replace``-d (arrays first, JSON last), so a
crash mid-write leaves the previous checkpoint intact, never a torn
one.

Fidelity contract: silhouette *intermediates* (Fig. 2 a–d working
masks) are not preserved across a resume — they are reproducible and
appear in no wire payload — so a restored
:class:`~repro.segmentation.pipeline.FrameSegmentation` carries the
final person mask in all foreground slots and an empty shadow mask.
Every payload-bearing artifact (poses, events, report, measurement,
annotation, health, config hash) round-trips exactly; with the rng
bit-generator state restored, stages re-run after the checkpoint draw
the same random stream, making the resumed report byte-identical to
the uninterrupted run (``trace`` timings aside).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import ReproError
from ..serialization import annotation_from_dict, annotation_to_dict

#: Stages worth checkpointing, in pipeline order.  The tail stages
#: (smoothing/events/scoring/measurement) run in milliseconds — a
#: checkpoint there would cost more than it saves.
CHECKPOINT_STAGES = ("segmentation", "annotation", "tracking")

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True, slots=True)
class StageCheckpoint:
    """One restored checkpoint: where to resume and with what."""

    stage: str
    config_hash: str
    value: Any  # the stage-boundary pipeline value
    artifacts: dict[str, Any]  # context artifacts to re-seed
    rng_state: dict[str, Any] | None  # numpy bit-generator state


def _segmentation_from_person(
    person: np.ndarray, candidates: tuple[np.ndarray, ...]
):
    """Rebuild a FrameSegmentation from its payload-bearing masks."""
    from ..segmentation.pipeline import FrameSegmentation

    person = person.astype(bool)
    return FrameSegmentation(
        raw_foreground=person,
        after_noise_removal=person,
        after_spot_removal=person,
        after_hole_fill=person,
        detected_shadow=np.zeros_like(person),
        person=person,
        candidates=candidates,
    )


def _health_to_dicts(health) -> list[dict[str, Any]]:
    return [entry.to_dict() for entry in health]


def _health_from_dicts(entries) -> tuple:
    from ..ga.temporal import FrameHealth

    return tuple(
        FrameHealth(
            frame_index=int(entry["frame"]),
            status=str(entry["status"]),
            reason=str(entry.get("reason", "")),
            recovery=entry.get("recovery"),
            fitness=(
                None if entry.get("fitness") is None else float(entry["fitness"])
            ),
        )
        for entry in entries
    )


class JobCheckpointer:
    """Persist/restore one job's pipeline state at stage boundaries.

    Instances are handed to :meth:`PipelineRunner.run` as the
    ``checkpoint`` hook (they are callable) and queried by the worker
    on restart through :meth:`load`.  All writes are atomic; a failed
    write degrades the run (counted, evented) rather than failing it —
    the runner wraps the call accordingly.

    Multi-actor runs (``tracking.enabled``) checkpoint through
    ``annotation`` only: the per-track analyses built inside the
    tracking stage have no wire codec yet, so tracking re-runs on
    resume (deterministic under the restored rng state).
    """

    def __init__(
        self, directory: str | Path, job_id: str, config_hash: str
    ) -> None:
        self._dir = Path(directory) / job_id
        self._job_id = job_id
        self._config_hash = config_hash
        self.writes = 0  # stages persisted by this instance
        self._multi = False

    @property
    def directory(self) -> Path:
        """This job's spool/checkpoint directory."""
        return self._dir

    def set_multi_actor(self, multi: bool) -> None:
        """Skip the tracking checkpoint for multi-actor runs."""
        self._multi = bool(multi)

    # ------------------------------------------------------------------
    # Writing (the PipelineRunner `checkpoint` hook)
    # ------------------------------------------------------------------
    def __call__(self, stage: str, value: Any, context) -> None:
        if stage not in CHECKPOINT_STAGES:
            return
        if stage == "tracking" and self._multi:
            return
        arrays: dict[str, np.ndarray] = {}
        meta: dict[str, Any] = {
            "version": _CHECKPOINT_VERSION,
            "job_id": self._job_id,
            "config_hash": self._config_hash,
            "stage": stage,
        }

        segmentations = context.artifacts.get("segmentations", ())
        persons = [seg.person for seg in segmentations]
        arrays["persons"] = np.stack(persons) if persons else np.zeros((0, 0, 0), bool)
        arrays["background"] = np.asarray(context.artifacts.get("background"))
        counts = [len(seg.candidates) for seg in segmentations]
        arrays["candidate_counts"] = np.asarray(counts, dtype=np.int64)
        flat = [c for seg in segmentations for c in seg.candidates]
        arrays["candidates"] = (
            np.stack(flat) if flat else np.zeros((0, 0, 0), bool)
        )

        annotation = context.artifacts.get("annotation")
        meta["annotation"] = (
            None if annotation is None else annotation_to_dict(annotation)
        )

        rng = context.artifacts.get("rng")
        meta["rng_state"] = (
            None if rng is None else _jsonable(rng.bit_generator.state)
        )

        if stage == "tracking":
            tracking = context.artifacts["tracking"]
            arrays["poses_genes"] = np.stack(
                [pose.to_genes() for pose in tracking.poses]
            )
            arrays["record_frames"] = np.asarray(
                [record.frame_index for record in tracking.records],
                dtype=np.int64,
            )
            arrays["record_genes"] = (
                np.stack([r.pose.to_genes() for r in tracking.records])
                if tracking.records
                else np.zeros((0, 0))
            )
            arrays["record_fitness"] = np.asarray(
                [record.fitness for record in tracking.records], dtype=float
            )
            meta["health"] = _health_to_dicts(tracking.health)

        self._dir.mkdir(parents=True, exist_ok=True)
        npz_tmp = self._dir / "checkpoint.npz.tmp"
        with open(npz_tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(npz_tmp, self._dir / "checkpoint.npz")
        json_tmp = self._dir / "checkpoint.json.tmp"
        json_tmp.write_text(json.dumps(meta))
        os.replace(json_tmp, self._dir / "checkpoint.json")
        self.writes += 1

    # ------------------------------------------------------------------
    # Restoring
    # ------------------------------------------------------------------
    def load(self) -> StageCheckpoint | None:
        """The last committed checkpoint, or None (missing/mismatched).

        A checkpoint written under a different config hash is ignored:
        resuming stage k of config A under config B would silently mix
        pipelines.
        """
        marker = self._dir / "checkpoint.json"
        arrays_path = self._dir / "checkpoint.npz"
        if not marker.exists() or not arrays_path.exists():
            return None
        try:
            meta = json.loads(marker.read_text())
        except (OSError, ValueError):
            return None
        if meta.get("version") != _CHECKPOINT_VERSION:
            return None
        if meta.get("config_hash") != self._config_hash:
            return None
        stage = meta.get("stage")
        if stage not in CHECKPOINT_STAGES:
            return None
        try:
            return self._restore(stage, meta, arrays_path)
        except (OSError, ValueError, KeyError, ReproError):
            # A torn or stale checkpoint falls back to a clean re-run.
            return None

    def _restore(
        self, stage: str, meta: dict[str, Any], arrays_path: Path
    ) -> StageCheckpoint:
        from ..model.pose import StickPose

        with np.load(arrays_path) as archive:
            persons = archive["persons"].astype(bool)
            background = archive["background"]
            counts = archive["candidate_counts"].astype(int)
            flat_candidates = archive["candidates"].astype(bool)
            extra = {
                key: archive[key]
                for key in (
                    "poses_genes",
                    "record_frames",
                    "record_genes",
                    "record_fitness",
                )
                if key in archive.files
            }

        segmentations = []
        cursor = 0
        for index in range(persons.shape[0]):
            count = int(counts[index]) if index < len(counts) else 0
            candidates = tuple(
                flat_candidates[cursor + offset] for offset in range(count)
            )
            cursor += count
            segmentations.append(
                _segmentation_from_person(persons[index], candidates)
            )

        artifacts: dict[str, Any] = {
            "segmentations": tuple(segmentations),
            "background": background,
        }
        annotation = meta.get("annotation")
        if annotation is not None:
            artifacts["annotation"] = annotation_from_dict(annotation)
        value: Any = [seg.person for seg in segmentations]

        if stage == "tracking":
            tracking = self._restore_tracking(meta, extra, StickPose)
            artifacts["tracking"] = tracking
            value = tracking.poses

        return StageCheckpoint(
            stage=stage,
            config_hash=str(meta["config_hash"]),
            value=value,
            artifacts=artifacts,
            rng_state=meta.get("rng_state"),
        )

    @staticmethod
    def _restore_tracking(meta, extra, StickPose):
        """Rebuild a TrackingResult from its checkpointed arrays.

        Search histories are not preserved (they feed no payload);
        each record's SearchResult is reduced to its best genes and
        fitness.
        """
        from ..ga.convergence import SearchResult
        from ..ga.temporal import FrameTrackingRecord, TrackingResult

        poses = tuple(
            StickPose.from_genes(genes) for genes in extra["poses_genes"]
        )
        records = tuple(
            FrameTrackingRecord(
                frame_index=int(frame),
                pose=StickPose.from_genes(genes),
                fitness=float(fitness),
                search=SearchResult(
                    best_genes=np.asarray(genes, dtype=float),
                    best_fitness=float(fitness),
                ),
            )
            for frame, genes, fitness in zip(
                extra["record_frames"],
                extra["record_genes"],
                extra["record_fitness"],
            )
        )
        health = _health_from_dicts(meta.get("health", []))
        return TrackingResult(poses=poses, records=records, health=health)

    def clear(self) -> None:
        """Delete this job's checkpoint files (terminal job)."""
        for name in ("checkpoint.json", "checkpoint.npz"):
            try:
                (self._dir / name).unlink()
            except OSError:
                pass


def _jsonable(value: Any) -> Any:
    """numpy bit-generator state → plain JSON types (ints stay exact)."""
    if isinstance(value, dict):
        return {key: _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(entry) for entry in value.tolist()]
    return value


def restore_rng(rng: np.random.Generator, state: dict[str, Any] | None) -> None:
    """Load a checkpointed bit-generator state into ``rng`` (if any)."""
    if state is not None:
        rng.bit_generator.state = state


# ----------------------------------------------------------------------
# Input spools: what a restarted process re-runs a job *from*.
# ----------------------------------------------------------------------
def spool_input(
    directory: str | Path,
    job_id: str,
    *,
    mode: str,
    seed: int,
    config: dict[str, Any] | None,
    annotation: dict[str, Any] | None,
    frames: np.ndarray | None = None,
) -> Path:
    """Persist a job's inputs so a restart can re-submit it.

    Batch jobs spool their whole video (``input.npz``); streaming jobs
    spool only ``meta.json`` here and accumulate frame chunks through
    :func:`spool_stream_chunk` as they arrive.
    """
    job_dir = Path(directory) / job_id
    job_dir.mkdir(parents=True, exist_ok=True)
    if frames is not None:
        tmp = job_dir / "input.npz.tmp"
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, frames=np.asarray(frames))
        os.replace(tmp, job_dir / "input.npz")
    meta = {
        "mode": mode,
        "seed": int(seed),
        "config": config,
        "annotation": annotation,
    }
    tmp = job_dir / "meta.json.tmp"
    tmp.write_text(json.dumps(meta))
    os.replace(tmp, job_dir / "meta.json")
    return job_dir


def load_input_meta(directory: str | Path, job_id: str) -> dict[str, Any] | None:
    """The spooled submit-time metadata, or None when never spooled."""
    path = Path(directory) / job_id / "meta.json"
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def load_input_frames(directory: str | Path, job_id: str) -> np.ndarray | None:
    """The spooled batch video, or None."""
    path = Path(directory) / job_id / "input.npz"
    if not path.exists():
        return None
    with np.load(path) as archive:
        return archive["frames"]


def spool_stream_chunk(
    directory: str | Path, job_id: str, index: int, frames: np.ndarray
) -> None:
    """Append one pushed frame chunk to a streaming job's spool."""
    chunk_dir = Path(directory) / job_id / "frames"
    chunk_dir.mkdir(parents=True, exist_ok=True)
    tmp = chunk_dir / f"chunk_{index:06d}.npy.tmp"
    with open(tmp, "wb") as handle:
        np.save(handle, np.asarray(frames))
    os.replace(tmp, chunk_dir / f"chunk_{index:06d}.npy")


def spool_stream_eof(directory: str | Path, job_id: str) -> None:
    """Record that the client already sent eof (marker file)."""
    job_dir = Path(directory) / job_id
    job_dir.mkdir(parents=True, exist_ok=True)
    (job_dir / "eof").touch()


def load_stream_spool(
    directory: str | Path, job_id: str
) -> tuple[list[np.ndarray], bool]:
    """Replay a streaming job's spool: (frames in push order, eof?).

    The received-frame count and the background-model state are both
    implied by the replay — feeding the same frames through the same
    (deterministic) streaming analyzer reconstructs the model exactly.
    """
    job_dir = Path(directory) / job_id
    frames: list[np.ndarray] = []
    chunk_dir = job_dir / "frames"
    if chunk_dir.is_dir():
        for path in sorted(chunk_dir.glob("chunk_*.npy")):
            chunk = np.load(path)
            frames.extend(np.asarray(frame) for frame in chunk)
    return frames, (job_dir / "eof").exists()


def stream_chunk_count(directory: str | Path, job_id: str) -> int:
    """How many chunks are already spooled (next chunk index)."""
    chunk_dir = Path(directory) / job_id / "frames"
    if not chunk_dir.is_dir():
        return 0
    return len(list(chunk_dir.glob("chunk_*.npy")))


def has_spool(directory: str | Path, job_id: str) -> bool:
    """True when the job's inputs were spooled (it is resumable)."""
    return (Path(directory) / job_id / "meta.json").exists()


def clear_spool(directory: str | Path, job_id: str) -> None:
    """Delete a terminal job's spool directory entirely."""
    import shutil

    shutil.rmtree(Path(directory) / job_id, ignore_errors=True)
