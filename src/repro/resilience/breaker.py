"""A per-configuration circuit breaker for the job subsystem.

When one configuration keeps failing (a pathological override, a
poisoned preset), re-admitting work under it burns pool slots on
analyses that will fail again.  The breaker counts *consecutive*
failures per ``config_hash``; at ``threshold`` it opens and submission
fast-fails with :class:`~repro.errors.CircuitOpen` (the service maps
it to 503 ``circuit_open`` + ``Retry-After``).  After
``cooldown_seconds`` one probe job is let through half-open: success
closes the circuit, failure re-opens it for another cooldown.

Keying on the config hash keeps healthy configurations flowing while a
broken one is quarantined — the breaker never punishes the service as
a whole.
"""

from __future__ import annotations

import threading
import time

from ..errors import CircuitOpen

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class _Circuit:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Consecutive-failure breaker keyed on configuration hash.

    ``threshold <= 0`` disables the breaker (every check passes).
    Thread-safe: admission checks and worker outcome reports arrive
    from different threads.
    """

    def __init__(
        self,
        threshold: int = 0,
        cooldown_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.threshold = int(threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._circuits: dict[str, _Circuit] = {}
        self.trips = 0  # lifetime open transitions (metrics)

    @property
    def enabled(self) -> bool:
        """True when a positive threshold was configured."""
        return self.threshold > 0

    def check(self, key: str) -> None:
        """Admission gate: raise :class:`CircuitOpen` when tripped.

        Half-open admission lets exactly one probe through per
        cooldown; concurrent submitters under the same key still
        fast-fail until the probe reports back.
        """
        if not self.enabled:
            return
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state == _CLOSED:
                return
            remaining = (
                circuit.opened_at + self.cooldown_seconds - self._clock()
            )
            if circuit.state == _OPEN and remaining <= 0:
                circuit.state = _HALF_OPEN
                circuit.probing = False
            if circuit.state == _HALF_OPEN and not circuit.probing:
                circuit.probing = True  # this submission is the probe
                return
            raise CircuitOpen(
                f"circuit open for config {key[:12]}: "
                f"{circuit.failures} consecutive failures",
                retry_after=max(1.0, remaining),
            )

    def record_success(self, key: str) -> None:
        """A job under ``key`` finished cleanly; close its circuit."""
        if not self.enabled:
            return
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is not None:
                circuit.state = _CLOSED
                circuit.failures = 0
                circuit.probing = False

    def record_failure(self, key: str) -> None:
        """A job under ``key`` failed; maybe open its circuit."""
        if not self.enabled:
            return
        with self._lock:
            circuit = self._circuits.setdefault(key, _Circuit())
            circuit.failures += 1
            was_open = circuit.state == _OPEN
            if circuit.failures >= self.threshold or circuit.state == _HALF_OPEN:
                circuit.state = _OPEN
                circuit.opened_at = self._clock()
                circuit.probing = False
                if not was_open:
                    self.trips += 1

    def snapshot(self) -> dict:
        """Metrics view: open circuits and lifetime trips."""
        with self._lock:
            open_keys = [
                key
                for key, circuit in self._circuits.items()
                if circuit.state != _CLOSED
            ]
            return {
                "enabled": self.enabled,
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "trips": self.trips,
                "open": sorted(open_keys),
            }
