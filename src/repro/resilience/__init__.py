"""Crash-safe lifecycle for the service and its jobs.

The analysis pipeline learned to degrade-not-die in PR 3; this package
gives the *process around it* the same property:

* :mod:`~repro.resilience.checkpoint` — per-stage job checkpoints and
  input spools, so a restart resumes work instead of failing it;
* :mod:`~repro.resilience.drain` — graceful shutdown: refuse new work,
  finish in-flight jobs, persist the queue;
* :mod:`~repro.resilience.watchdog` — soft per-job deadlines that reap
  hung analyses and reclaim their pool slots;
* :mod:`~repro.resilience.breaker` — a per-config-hash circuit breaker
  that quarantines a failing configuration behind 503 + Retry-After.

Ops-level fault injection for all of the above lives in
:mod:`repro.faults.ops` (``slj chaos --ops``).
"""

from .breaker import CircuitBreaker
from .checkpoint import (
    CHECKPOINT_STAGES,
    JobCheckpointer,
    StageCheckpoint,
    clear_spool,
    has_spool,
    load_input_frames,
    load_input_meta,
    load_stream_spool,
    restore_rng,
    spool_input,
    spool_stream_chunk,
    spool_stream_eof,
    stream_chunk_count,
)
from .drain import ServiceLifecycle
from .watchdog import Watchdog

__all__ = [
    "CHECKPOINT_STAGES",
    "CircuitBreaker",
    "JobCheckpointer",
    "ServiceLifecycle",
    "StageCheckpoint",
    "Watchdog",
    "clear_spool",
    "has_spool",
    "load_input_frames",
    "load_input_meta",
    "load_stream_spool",
    "restore_rng",
    "spool_input",
    "spool_stream_chunk",
    "spool_stream_eof",
    "stream_chunk_count",
]
