"""Service lifecycle: uptime, graceful drain, shutdown accounting.

One :class:`ServiceLifecycle` lives on the HTTP server object.  It
starts in ``running``; :meth:`begin_drain` (SIGTERM, or
``ServiceHandle.stop(drain=True)``) flips it to ``draining``:

* new submissions — ``POST /v1/analyze``, ``/v1/analyze/batch``,
  ``/v1/jobs``, ``/v1/jobs/stream`` — are refused with 503
  ``draining`` + ``Retry-After`` (reads, frame pushes, eof and cancel
  keep working so in-flight jobs can complete);
* ``GET /v1/health`` reports ``status: "shutting_down"`` so load
  balancers stop routing;
* the stopping thread waits up to the drain deadline for in-flight
  work to finish; still-queued jobs stay ``submitted`` in the
  persistence file and are picked up on the next start.
"""

from __future__ import annotations

import threading
import time


class ServiceLifecycle:
    """Thread-safe service phase + uptime + shutdown counters."""

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self.started_at = clock()
        self._draining = threading.Event()
        # Pool futures cancelled by a non-drain stop() — work accepted
        # but never run, the loss /metrics must make visible.
        self.cancelled_at_shutdown = 0

    @property
    def draining(self) -> bool:
        """True once a drain (or stop) has begun."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Enter draining mode (idempotent)."""
        self._draining.set()

    def uptime_seconds(self) -> float:
        """Seconds since the service started."""
        return max(0.0, self._clock() - self.started_at)

    def wait_drained(
        self, is_idle, timeout: float, poll_seconds: float = 0.05
    ) -> bool:
        """Poll ``is_idle()`` until it holds or ``timeout`` elapses.

        Returns True when the service went idle (all in-flight and
        queued jobs reached a terminal state) within the deadline.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            if is_idle():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_seconds)
