"""Per-job soft deadlines: detect hung analyses, reclaim their slots.

A wedged GA (or a fault-injected sleep) holds a
:class:`~repro.perf.pool.WorkerPool` slot forever — cooperative
cancellation only helps between stages, and a stage stuck *inside* a
call never reaches the next boundary.  The :class:`Watchdog` scans the
running jobs on a fixed cadence; any job past its soft deadline is
failed with diagnostics (``WatchdogTimeout``, the stage it was stuck
in, elapsed seconds), its cancellation token is tripped (in case the
stage does eventually yield), and its pool slot is *reclaimed* — the
pool temporarily grows by one so new work keeps flowing, shrinking
back when the zombie thread finally exits.  Zero slots leak either
way, which `slj chaos --ops` gates on.
"""

from __future__ import annotations

import threading


class Watchdog:
    """Scan running jobs and reap any past the soft deadline.

    ``deadline_seconds <= 0`` disables the watchdog entirely (the
    default — deadlines are workload-specific).  The scan itself is
    delegated to :meth:`JobWorkerPool.reap_overdue`, which owns the
    store/token/pool plumbing; this class only provides the thread.
    """

    def __init__(
        self,
        worker,
        deadline_seconds: float,
        interval_seconds: float = 0.5,
    ) -> None:
        self._worker = worker
        self.deadline_seconds = float(deadline_seconds)
        self.interval_seconds = float(interval_seconds)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def enabled(self) -> bool:
        """True when a positive deadline was configured."""
        return self.deadline_seconds > 0

    def start(self) -> None:
        """Start the scan thread (no-op when disabled or running)."""
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="slj-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the scan thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def scan_once(self) -> list[str]:
        """One synchronous scan (tests); returns reaped job ids."""
        return self._worker.reap_overdue(self.deadline_seconds)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self._worker.reap_overdue(self.deadline_seconds)
            except Exception:  # pragma: no cover - scan must never die
                pass
