"""Thread-safe job storage: in-memory LRU + optional JSON persistence.

The store owns every :class:`~repro.jobs.models.Job` record and all of
its mutation; workers and HTTP handlers only ever call store methods,
so one reentrant lock serialises the whole lifecycle.

* **Deterministic ids** — ``j<seq>-<digest>``: a monotone sequence
  number plus a content digest of the submission (video bytes, seed,
  config hash).  Two stores fed the same submissions in the same order
  mint identical ids, which keeps job tests and replayed traffic
  stable.
* **LRU bound** — beyond ``capacity``, the oldest *terminal* jobs are
  evicted first; running/queued jobs are never evicted (their workers
  hold them).
* **TTL** — terminal jobs expire ``ttl_seconds`` after finishing.
  Expired ids are remembered (bounded) so the service can answer a
  structured ``410 result_expired`` instead of a bare 404.
* **Persistence** — with ``persist_path`` the store mirrors itself to
  a JSON file on every state transition; terminal jobs (results
  included) survive a restart.  Jobs caught mid-flight are restored as
  ``failed`` with an ``Interrupted`` error — unless the owner passes a
  ``resumable`` predicate (the manager's input-spool check, see
  :mod:`repro.resilience.checkpoint`) that recognises them, in which
  case they are re-queued as ``submitted`` with ``resumed`` set and
  picked up by :meth:`~repro.jobs.manager.JobManager.recover`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from .backends import JobStoreBackend, SingleProcessBackend
from .models import Job, JobState
from ..errors import ConfigurationError

#: How many expired job ids are remembered for 410 answers.
_EXPIRED_MEMORY = 1024


class JobStore:
    """Lock-guarded LRU of :class:`Job` records with TTL + persistence.

    Storage is delegated to a :class:`~repro.jobs.backends.JobStoreBackend`:
    the default :class:`~repro.jobs.backends.SingleProcessBackend`
    reproduces the historical in-memory + JSON-snapshot behaviour; a
    *shared* backend (``backend.shared``) keeps one record per job in
    a directory N replicas read concurrently, in which case this
    store's dict only holds **locally owned** jobs (created streams,
    claimed batch work) and every other read falls through to the
    backend's records.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_seconds: float = 3600.0,
        persist_path: str | Path | None = None,
        clock: Callable[[], float] = time.time,
        resumable: Callable[[str], bool] | None = None,
        backend: JobStoreBackend | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"job store capacity must be >= 1, got {capacity}")
        if ttl_seconds <= 0:
            raise ConfigurationError(
                f"job store ttl_seconds must be > 0, got {ttl_seconds}"
            )
        if backend is not None and persist_path is not None:
            raise ConfigurationError(
                "pass either persist_path or an explicit backend, not both"
            )
        self._capacity = capacity
        self._ttl = ttl_seconds
        self._backend = backend or SingleProcessBackend(persist_path)
        self._clock = clock
        self._resumable = resumable or (lambda _job_id: False)
        self._lock = threading.RLock()
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._expired: OrderedDict[str, str] = OrderedDict()
        self._seq = 0
        self.resumed_count = 0  # jobs re-queued across restarts (metrics)
        self._load()

    @property
    def clock(self) -> Callable[[], float]:
        """The store's time source (shared by the watchdog)."""
        return self._clock

    @property
    def backend(self) -> JobStoreBackend:
        """The storage backend records live in."""
        return self._backend

    @property
    def shared(self) -> bool:
        """True when multiple replicas share this store's records."""
        return self._backend.shared

    # ------------------------------------------------------------------
    # Creation / identity
    # ------------------------------------------------------------------
    @staticmethod
    def digest_of(*parts: bytes | str) -> str:
        """Stable content digest over the submission's identifying parts."""
        hasher = hashlib.sha256()
        for part in parts:
            if isinstance(part, str):
                part = part.encode("utf-8")
            hasher.update(part)
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def create(
        self,
        digest: str,
        seed: int = 0,
        config_hash: str = "",
        mode: str = "batch",
    ) -> dict[str, Any]:
        """Mint a new ``submitted`` job; returns its status payload.

        With a shared backend the sequence number comes from the
        backend's atomic counter (so replicas never collide) and the
        record is written for everyone to see; it enters this store's
        local dict only when this replica executes it (streams, or a
        batch job claimed via :meth:`adopt`).
        """
        with self._lock:
            self._evict_expired()
            if self.shared:
                seq = self._backend.allocate_seq()
                self._seq = max(self._seq, seq)
            else:
                self._seq += 1
                seq = self._seq
            job_id = f"j{seq:05d}-{digest[:10]}"
            job = Job(
                id=job_id,
                created_at=self._clock(),
                seed=seed,
                config_hash=config_hash,
                mode=mode,
            )
            if self.shared:
                self._backend.write_job(job.to_record())
                return job.to_dict()
            self._jobs[job_id] = job
            self._enforce_capacity()
            self._save()
            return job.to_dict()

    # ------------------------------------------------------------------
    # Shared-backend queue surface
    # ------------------------------------------------------------------
    def enqueue(self, job_id: str) -> None:
        """Publish a submitted job for any replica to claim."""
        self._backend.enqueue(job_id)

    def claim_next(self, owner: str) -> str | None:
        """Claim the oldest queued job for ``owner`` (at most one winner)."""
        return self._backend.claim_next(owner)

    def adopt(self, job_id: str) -> dict[str, Any] | None:
        """Take local ownership of a shared record (after a claim).

        Returns the job's status payload, or ``None`` when the record
        vanished.  The caller decides what to do with non-``submitted``
        states (e.g. a job cancelled while queued).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                record = self._backend.read_job(job_id)
                if record is None:
                    return None
                job = Job.from_record(record)
                self._jobs[job_id] = job
                self._enforce_capacity()
            return job.to_dict()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def payload(
        self, job_id: str, include_result: bool = False
    ) -> dict[str, Any] | None:
        """Status payload of one job, or ``None`` when unknown/expired.

        Shared backend: a job this replica doesn't own locally is read
        fresh from its backend record, so any replica can answer status
        and result polls regardless of which replica ran the job.
        """
        with self._lock:
            self._evict_expired()
            job = self._jobs.get(job_id)
            if job is None and self.shared:
                record = self._backend.read_job(job_id)
                if record is not None:
                    job = Job.from_record(record)
            return job.to_dict(include_result=include_result) if job else None

    def is_expired(self, job_id: str) -> bool:
        """True when the job existed but its TTL has evicted it."""
        with self._lock:
            self._evict_expired()
            return job_id in self._expired

    def list_payload(
        self, limit: int = 50, state: str | None = None
    ) -> list[dict[str, Any]]:
        """Newest-first bounded listing of job summaries (no results)."""
        if state is not None and state not in JobState.ALL:
            raise ConfigurationError(
                f"unknown job state {state!r}; states are {list(JobState.ALL)}"
            )
        with self._lock:
            self._evict_expired()
            out: list[dict[str, Any]] = []
            for job in reversed(self._visible_jobs()):
                if state is not None and job.state != state:
                    continue
                out.append(job.to_dict())
                if len(out) >= limit:
                    break
            return out

    def _visible_jobs(self) -> list[Job]:
        """Every job a reader should see, oldest first (lock held).

        Local jobs win over their backend record — the local copy has
        the live progress block that is deliberately never persisted.
        """
        if not self.shared:
            return list(self._jobs.values())
        merged: dict[str, Job] = {}
        for job_id in self._backend.list_job_ids():
            local = self._jobs.get(job_id)
            if local is not None:
                merged[job_id] = local
                continue
            record = self._backend.read_job(job_id)
            if record is not None:
                merged[job_id] = Job.from_record(record)
        for job_id, job in self._jobs.items():  # local-only stragglers
            merged.setdefault(job_id, job)
        return [merged[job_id] for job_id in sorted(merged)]

    def counts(self) -> dict[str, int]:
        """Number of stored jobs per state."""
        with self._lock:
            self._evict_expired()
            out = {state: 0 for state in JobState.ALL}
            for job in self._visible_jobs():
                out[job.state] += 1
            return out

    def pending_count(self) -> int:
        """Jobs not yet terminal (queued + running)."""
        with self._lock:
            self._evict_expired()
            return sum(1 for job in self._visible_jobs() if not job.terminal)

    def queued_jobs(self) -> list[dict[str, Any]]:
        """Status payloads of every ``submitted`` job, oldest first.

        Recovery uses this to re-submit restart survivors; the payloads
        carry everything the manager needs (id, mode, seed, resumed).
        """
        with self._lock:
            self._evict_expired()
            return [
                job.to_dict()
                for job in self._jobs.values()
                if job.state == JobState.SUBMITTED
            ]

    def running_jobs(self) -> list[tuple[str, float, str | None]]:
        """``(job_id, started_at, current_stage)`` of every running job.

        The watchdog's scan set: ``started_at`` is on the store's own
        clock, so deadline arithmetic stays consistent with it.
        """
        with self._lock:
            return [
                (
                    job.id,
                    float(job.started_at or job.created_at),
                    job.progress.get("current_stage"),
                )
                for job in self._jobs.values()
                if job.state == JobState.RUNNING
            ]

    def stats(self) -> dict[str, Any]:
        """Counters for ``/metrics``."""
        with self._lock:
            counts = self.counts()
            return {
                "states": counts,
                "pending": counts[JobState.SUBMITTED] + counts[JobState.RUNNING],
                "size": sum(counts.values()),
                "capacity": self._capacity,
                "created": self._seq,
                "expired": len(self._expired),
                "resumed": self.resumed_count,
            }

    # ------------------------------------------------------------------
    # Lifecycle transitions (called by the worker pool)
    # ------------------------------------------------------------------
    def mark_running(self, job_id: str, total_stages: int = 0) -> bool:
        """``submitted`` → ``running``; False when the job was cancelled
        (or evicted) before its worker picked it up."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.SUBMITTED:
                return False
            if job.cancel_requested:
                self._finish_locked(job, JobState.CANCELLED, error={
                    "type": "CancelledError",
                    "message": "job cancelled before it started",
                })
                return False
            job.state = JobState.RUNNING
            job.started_at = self._clock()
            job.progress["total_stages"] = total_stages
            self._save(job)
            return True

    def update_progress(
        self,
        job_id: str,
        current_stage: str | None = None,
        completed_stage: str | None = None,
    ) -> None:
        """Record stage progress (not persisted — too chatty)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            progress = job.progress
            if current_stage is not None:
                progress["current_stage"] = current_stage
            if completed_stage is not None:
                done = progress["stages_completed"]
                if completed_stage not in done:
                    done.append(completed_stage)
                if progress["current_stage"] == completed_stage:
                    progress["current_stage"] = None
                total = progress["total_stages"]
                if total:
                    progress["fraction"] = round(len(done) / total, 4)

    def record_frames(self, job_id: str, count: int) -> int | None:
        """Add ``count`` to a stream job's received-frame total.

        Returns the new total, or ``None`` for unknown/terminal jobs.
        Like stage progress, this is not persisted (too chatty).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return None
            job.frames_received += count
            return job.frames_received

    def mark_eof(self, job_id: str) -> bool:
        """Record that the stream's producer signalled end-of-frames."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return False
            job.eof = True
            return True

    def set_provisional(self, job_id: str, provisional: dict[str, Any]) -> None:
        """Replace a stream job's provisional block (not persisted)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            job.provisional = dict(provisional)

    def finish(
        self,
        job_id: str,
        state: str,
        result: dict[str, Any] | None = None,
        error: dict[str, Any] | None = None,
        degraded: bool = False,
        degradation: dict[str, Any] | None = None,
    ) -> bool:
        """Move a job to a terminal state and arm its TTL.

        Returns True when the transition applied; False when the job
        is unknown or already terminal (a lost race — e.g. the
        watchdog against a normal completion — is a no-op, never a
        state flip).
        """
        if state not in JobState.TERMINAL:
            raise ConfigurationError(
                f"finish() needs a terminal state, got {state!r}"
            )
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return False
            self._finish_locked(
                job, state, result=result, error=error,
                degraded=degraded, degradation=degradation,
            )
            return True

    def _finish_locked(
        self,
        job: Job,
        state: str,
        result: dict[str, Any] | None = None,
        error: dict[str, Any] | None = None,
        degraded: bool = False,
        degradation: dict[str, Any] | None = None,
    ) -> None:
        job.state = state
        job.finished_at = self._clock()
        job.expires_at = job.finished_at + self._ttl
        job.result = result
        job.error = error
        job.degraded = degraded
        job.degradation = degradation
        if state == JobState.SUCCEEDED:
            job.progress["fraction"] = 1.0
            job.progress["current_stage"] = None
        self._save(job)

    def request_cancel(self, job_id: str) -> str | None:
        """Ask for cancellation.

        Returns ``"cancelled"`` (was still queued — cancelled on the
        spot), ``"cancelling"`` (running — its token is the worker's
        to honour), ``"finished"`` (already terminal), or ``None``
        (unknown job).
        """
        with self._lock:
            self._evict_expired()
            job = self._jobs.get(job_id)
            if job is None and self.shared:
                return self._request_cancel_remote(job_id)
            if job is None:
                return None
            if job.terminal:
                return "finished"
            job.cancel_requested = True
            if job.state == JobState.SUBMITTED:
                self._finish_locked(job, JobState.CANCELLED, error={
                    "type": "CancelledError",
                    "message": "job cancelled before it started",
                })
                return "cancelled"
            self._save(job)
            return "cancelling"

    def _request_cancel_remote(self, job_id: str) -> str | None:
        """Cancel a shared job another replica owns (lock held).

        Queued jobs are cancelled on the spot: the terminal record is
        written before any claimer adopts it, so the eventual claimer
        sees a non-``submitted`` state and skips execution (the claim
        marker race is benign either way).  For a job already running
        elsewhere the flag is written best-effort — the owner's next
        record write wins, so this is advisory, mirroring the
        single-process "the token is the worker's to honour" contract.
        """
        record = self._backend.read_job(job_id)
        if record is None:
            return None
        job = Job.from_record(record)
        if job.terminal:
            return "finished"
        job.cancel_requested = True
        if job.state == JobState.SUBMITTED:
            job.state = JobState.CANCELLED
            job.finished_at = self._clock()
            job.expires_at = job.finished_at + self._ttl
            job.error = {
                "type": "CancelledError",
                "message": "job cancelled before it started",
            }
            self._backend.write_job(job.to_record())
            return "cancelled"
        self._backend.write_job(job.to_record())
        return "cancelling"

    def cancel_requested(self, job_id: str) -> bool:
        """Whether cancellation was requested for this job."""
        with self._lock:
            job = self._jobs.get(job_id)
            return bool(job and job.cancel_requested)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _remember_expired(self, job: Job) -> None:
        self._expired[job.id] = job.state
        while len(self._expired) > _EXPIRED_MEMORY:
            self._expired.popitem(last=False)

    def _evict_expired(self, now: float | None = None) -> int:
        """Drop terminal jobs past their TTL (call with the lock held)."""
        now = self._clock() if now is None else now
        stale = [
            job for job in self._jobs.values()
            if job.terminal and job.expires_at is not None
            and job.expires_at <= now
        ]
        for job in stale:
            del self._jobs[job.id]
            self._remember_expired(job)
            if self.shared:
                self._backend.remove_job(job.id)
        if stale:
            self._save()
        return len(stale)

    def _enforce_capacity(self) -> None:
        """Evict oldest terminal jobs beyond capacity (lock held)."""
        if len(self._jobs) <= self._capacity:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self._capacity:
                break
            job = self._jobs[job_id]
            if job.terminal:
                del self._jobs[job_id]
                self._remember_expired(job)
                if self.shared:
                    self._backend.remove_job(job_id)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _save(self, job: Job | None = None) -> None:
        """Persist after a mutation (lock held).

        Non-shared: the whole store is snapshotted (historical
        behaviour, a no-op without a persist path).  Shared: only the
        changed job's record is rewritten — full snapshots would race
        other replicas' writes.
        """
        if self.shared:
            if job is not None:
                self._backend.write_job(job.to_record())
            return
        self._backend.persist_snapshot({
            "seq": self._seq,
            "jobs": [job.to_record() for job in self._jobs.values()],
            "expired": dict(self._expired),
        })

    def _load(self) -> None:
        payload = self._backend.load_snapshot()
        if payload is None:
            return
        self._seq = int(payload.get("seq", 0))
        if self.shared:
            # Records stay in the backend; claims, not restarts, decide
            # who runs queued work, so no Interrupted/resumed rewrite.
            return
        for name, state in dict(payload.get("expired", {})).items():
            self._expired[str(name)] = str(state)
        for record in payload.get("jobs", []):
            job = Job.from_record(record)
            if not job.terminal:
                if self._resumable(job.id):
                    # The inputs were spooled: re-queue instead of
                    # failing.  Progress restarts from zero (a resumed
                    # run may skip checkpointed stages, but the sink
                    # rebuilds the progress block either way).
                    job.state = JobState.SUBMITTED
                    job.started_at = None
                    job.progress = {
                        "total_stages": 0,
                        "stages_completed": [],
                        "current_stage": None,
                        "fraction": 0.0,
                    }
                    job.frames_received = 0
                    job.provisional = None
                    job.resumed = True
                    self.resumed_count += 1
                else:
                    # The previous process died mid-flight and nothing
                    # was spooled; the work is gone.
                    job.state = JobState.FAILED
                    job.error = {
                        "type": "Interrupted",
                        "message": "job interrupted by a service restart",
                    }
                    job.finished_at = self._clock()
                    job.expires_at = job.finished_at + self._ttl
            self._jobs[job.id] = job
