"""The bounded frame queue between HTTP ingest and a stream job worker.

A streaming job has two sides running at different speeds: the HTTP
handler appending frame chunks (``POST /v1/jobs/{id}/frames``) and the
pool worker folding frames into a
:class:`~repro.streaming.StreamingAnalyzer`.  :class:`FrameQueue` is
the hand-off — a small, bounded, condition-variable queue with the
exact semantics the service needs:

* **Backpressure, not buffering** — ``put`` never blocks; when the
  queue is full it raises :class:`FrameQueueFull`, which the service
  maps to ``429`` + ``Retry-After`` so the producer slows down instead
  of the server swallowing unbounded video.
* **EOF as a state** — ``close()`` marks the end of the stream; the
  consumer's ``get`` drains the remaining frames and then returns
  ``None`` exactly once per call.  Pushing after close raises
  :class:`~repro.errors.StreamError` (→ 409).
* **Idle timeout** — a producer that goes away without ``eof`` must
  not pin a pool slot forever; ``get(timeout)`` raises
  :class:`StreamIdleTimeout` so the worker can fail the job and return
  its thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..errors import ConfigurationError, ReproError, StreamError


class FrameQueueFull(ReproError):
    """The stream's frame queue is at capacity (maps to HTTP 429)."""


class StreamIdleTimeout(ReproError):
    """No frame and no EOF arrived within the idle timeout."""


class FrameQueue:
    """A bounded, closeable frame queue (see module docstring)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"frame queue capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._cond = threading.Condition()
        self._frames: deque[np.ndarray] = deque()
        self._closed = False
        self._total = 0

    @property
    def capacity(self) -> int:
        """Maximum frames held at once."""
        return self._capacity

    @property
    def closed(self) -> bool:
        """True once EOF (or cancellation) closed the queue."""
        with self._cond:
            return self._closed

    def size(self) -> int:
        """Frames currently queued (pushed but not yet consumed)."""
        with self._cond:
            return len(self._frames)

    def total_put(self) -> int:
        """Frames accepted over the queue's lifetime."""
        with self._cond:
            return self._total

    def put(self, frames) -> int:
        """Append frames; returns the queue depth after the append.

        All-or-nothing: when the chunk would overflow the bound,
        nothing is queued and :class:`FrameQueueFull` is raised — the
        producer retries the whole chunk after ``Retry-After``.
        """
        frames = list(frames)
        with self._cond:
            if self._closed:
                raise StreamError(
                    "the stream is closed; no more frames are accepted"
                )
            if len(self._frames) + len(frames) > self._capacity:
                raise FrameQueueFull(
                    f"frame queue holds {len(self._frames)}/"
                    f"{self._capacity} frames and cannot take "
                    f"{len(frames)} more; retry shortly"
                )
            self._frames.extend(frames)
            self._total += len(frames)
            self._cond.notify_all()
            return len(self._frames)

    def close(self) -> None:
        """Mark EOF (idempotent); queued frames remain consumable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def get(self, timeout: float) -> np.ndarray | None:
        """The next frame, ``None`` at EOF, or :class:`StreamIdleTimeout`.

        Waits up to ``timeout`` seconds for a frame or the close flag;
        the timeout resets on every call, so it bounds *idle* time, not
        total stream duration.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._frames:
                    return self._frames.popleft()
                if self._closed:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StreamIdleTimeout(
                        f"no frame and no eof for {timeout:g}s"
                    )
                self._cond.wait(remaining)
