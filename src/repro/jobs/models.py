"""Job records, states and the :class:`JobsConfig` knobs.

A *job* is one asynchronous analysis request moving through the
lifecycle::

    submitted ──> running ──> succeeded
                     │  └───> failed
                     └──────> cancelled   (also reachable from submitted)

Terminal jobs carry either a ``result`` (the serialized analysis) or a
structured ``error``; every job carries per-stage ``progress`` sourced
from the pipeline's instrumentation events.  Records are plain mutable
dataclasses — all mutation happens under the owning
:class:`~repro.jobs.store.JobStore`'s lock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError


class JobState:
    """String constants for the job lifecycle."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL: tuple[str, ...] = (SUBMITTED, RUNNING, SUCCEEDED, FAILED, CANCELLED)
    TERMINAL: tuple[str, ...] = (SUCCEEDED, FAILED, CANCELLED)


def _new_progress() -> dict[str, Any]:
    return {
        "total_stages": 0,
        "stages_completed": [],
        "current_stage": None,
        "fraction": 0.0,
    }


@dataclass(frozen=True, slots=True)
class JobsConfig:
    """Behaviour of the asynchronous job subsystem.

    Wired into :class:`~repro.service.ServiceConfig` (and therefore
    into ``config_to_dict`` / ``config_from_dict``), so a service's
    job policy is part of its declarative configuration.
    """

    # Serve the /v1/jobs endpoints at all (503 ``jobs_disabled`` when off).
    enabled: bool = True
    # LRU capacity of the job store (terminal jobs evicted oldest-first).
    max_jobs: int = 256
    # Seconds a finished job (and its result) stays retrievable; after
    # this the job answers a structured 410.
    result_ttl_seconds: float = 3600.0
    # Refuse new submissions beyond this many non-terminal jobs (503).
    max_queued: int = 64
    # Optional JSON file the store mirrors itself into; terminal jobs
    # (results included) survive a service restart.
    persist_path: str | None = None
    # Shared-directory job store (see repro.jobs.backends) N service
    # replicas drain together: submissions are enqueued there and any
    # replica claims them (atomic rename — zero double-claims).
    # Requires checkpoint_dir, since the claiming replica rebuilds the
    # job from its input spool.  Mutually exclusive with persist_path.
    store_dir: str | None = None
    # Cadence at which a replica polls the shared queue for claimable
    # work (store_dir mode only).
    store_drain_interval_seconds: float = 0.25
    # Bounded per-job frame queue for streaming jobs; chunks that would
    # overflow it answer 429 until the worker drains the backlog.
    stream_queue_frames: int = 64
    # A running stream job that sees no frame and no eof for this long
    # fails (freeing its pool slot) instead of waiting forever.
    stream_idle_timeout_seconds: float = 30.0
    # Directory for input spools and per-stage checkpoints (see
    # repro.resilience.checkpoint).  None (default) disables both:
    # jobs interrupted by a restart keep failing as ``Interrupted``.
    checkpoint_dir: str | None = None
    # With a checkpoint_dir, re-submit interrupted jobs automatically
    # when the service starts (JobManager.recover).
    resume_on_start: bool = True
    # Soft per-job deadline: a running job older than this is failed
    # by the watchdog (WatchdogTimeout) and its pool slot reclaimed.
    # 0 disables the watchdog — deadlines are workload-specific.
    job_deadline_seconds: float = 0.0
    # Cadence of the watchdog scan thread.
    watchdog_interval_seconds: float = 0.5
    # Circuit breaker: this many *consecutive* failures under one
    # config_hash trip it (503 circuit_open until a cooldown probe
    # passes).  0 disables the breaker.
    breaker_threshold: int = 0
    breaker_cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_jobs < 1:
            raise ConfigurationError("jobs.max_jobs must be >= 1")
        if self.result_ttl_seconds <= 0:
            raise ConfigurationError("jobs.result_ttl_seconds must be > 0")
        if self.max_queued < 1:
            raise ConfigurationError("jobs.max_queued must be >= 1")
        if self.stream_queue_frames < 1:
            raise ConfigurationError("jobs.stream_queue_frames must be >= 1")
        if self.stream_idle_timeout_seconds <= 0:
            raise ConfigurationError(
                "jobs.stream_idle_timeout_seconds must be > 0"
            )
        if self.job_deadline_seconds < 0:
            raise ConfigurationError("jobs.job_deadline_seconds must be >= 0")
        if self.watchdog_interval_seconds <= 0:
            raise ConfigurationError(
                "jobs.watchdog_interval_seconds must be > 0"
            )
        if self.breaker_threshold < 0:
            raise ConfigurationError("jobs.breaker_threshold must be >= 0")
        if self.breaker_cooldown_seconds <= 0:
            raise ConfigurationError(
                "jobs.breaker_cooldown_seconds must be > 0"
            )
        if self.store_dir is not None:
            if self.persist_path is not None:
                raise ConfigurationError(
                    "jobs.store_dir and jobs.persist_path are mutually "
                    "exclusive (the shared store persists per-job records)"
                )
            if self.checkpoint_dir is None:
                raise ConfigurationError(
                    "jobs.store_dir requires jobs.checkpoint_dir: claiming "
                    "replicas rebuild jobs from the input spool"
                )
        if self.store_drain_interval_seconds <= 0:
            raise ConfigurationError(
                "jobs.store_drain_interval_seconds must be > 0"
            )


@dataclass(slots=True)
class Job:
    """One asynchronous analysis and everything known about it."""

    id: str
    state: str = JobState.SUBMITTED
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    expires_at: float | None = None
    seed: int = 0
    config_hash: str = ""
    progress: dict[str, Any] = field(default_factory=_new_progress)
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    degraded: bool = False
    degradation: dict[str, Any] | None = None
    cancel_requested: bool = False
    # True when the job survived a service restart: it was re-queued
    # from its input spool instead of failing as ``Interrupted``.
    resumed: bool = False
    # Streaming jobs ("mode": "stream"): frames appended over HTTP run
    # through the push-based pipeline as they arrive.
    mode: str = "batch"
    frames_received: int = 0
    eof: bool = False
    provisional: dict[str, Any] | None = None

    @property
    def terminal(self) -> bool:
        """True once the job reached a final state."""
        return self.state in JobState.TERMINAL

    def to_dict(self, include_result: bool = False) -> dict[str, Any]:
        """JSON-ready status payload (result omitted unless asked)."""
        payload: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "mode": self.mode,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "expires_at": self.expires_at,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "progress": {
                "total_stages": self.progress["total_stages"],
                "stages_completed": list(self.progress["stages_completed"]),
                "current_stage": self.progress["current_stage"],
                "fraction": self.progress["fraction"],
            },
            "error": dict(self.error) if self.error else None,
            "degraded": self.degraded,
            "degradation": dict(self.degradation) if self.degradation else None,
            "cancel_requested": self.cancel_requested,
            "resumed": self.resumed,
        }
        if self.mode == "stream":
            payload["stream"] = {
                "frames_received": self.frames_received,
                "eof": self.eof,
                "provisional": (
                    dict(self.provisional) if self.provisional else None
                ),
            }
        if include_result:
            payload["result"] = self.result
        return payload

    def to_record(self) -> dict[str, Any]:
        """Full persistence form (result always included)."""
        record = self.to_dict(include_result=True)
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Job":
        """Inverse of :meth:`to_record` (for the file-backed store)."""
        progress = record.get("progress") or _new_progress()
        stream = record.get("stream") or {}
        return cls(
            id=str(record["id"]),
            state=str(record.get("state", JobState.SUBMITTED)),
            created_at=float(record.get("created_at", 0.0)),
            started_at=record.get("started_at"),
            finished_at=record.get("finished_at"),
            expires_at=record.get("expires_at"),
            seed=int(record.get("seed", 0)),
            config_hash=str(record.get("config_hash", "")),
            progress={
                "total_stages": int(progress.get("total_stages", 0)),
                "stages_completed": list(progress.get("stages_completed", [])),
                "current_stage": progress.get("current_stage"),
                "fraction": float(progress.get("fraction", 0.0)),
            },
            result=record.get("result"),
            error=record.get("error"),
            degraded=bool(record.get("degraded", False)),
            degradation=record.get("degradation"),
            cancel_requested=bool(record.get("cancel_requested", False)),
            resumed=bool(record.get("resumed", False)),
            mode=str(record.get("mode", "batch")),
            frames_received=int(stream.get("frames_received", 0)),
            eof=bool(stream.get("eof", False)),
            provisional=stream.get("provisional"),
        )
