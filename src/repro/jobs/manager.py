"""The facade the service (and tests) talk to.

:class:`JobManager` wires a :class:`~repro.jobs.store.JobStore` and a
:class:`~repro.jobs.worker.JobWorkerPool` together behind one small
API: submit, read, cancel, list.  It owns admission control (the
``max_queued`` backpressure bound) but no HTTP concerns — status codes
live in :mod:`repro.service`.
"""

from __future__ import annotations

import os
import threading
import uuid
from typing import Any, Callable

from .backends import SharedDirectoryBackend
from .models import JobsConfig, JobState
from .store import JobStore
from .stream import FrameQueue
from .worker import JobWorkerPool
from ..errors import ReproError, StreamError
from ..perf.pool import WorkerPool
from ..resilience import (
    CircuitBreaker,
    JobCheckpointer,
    Watchdog,
    has_spool,
    load_input_frames,
    load_input_meta,
    load_stream_spool,
    spool_input,
    spool_stream_chunk,
    spool_stream_eof,
    stream_chunk_count,
)
from ..serialization import analysis_payload, annotation_to_dict


class JobQueueFull(ReproError):
    """Too many jobs already queued or running (maps to HTTP 503)."""


class JobManager:
    """Owns the job store and worker pool for one service instance.

    With ``config.checkpoint_dir`` the manager also owns crash safety:
    submissions are spooled to disk, the pipeline checkpoints at stage
    boundaries, restart survivors are re-queued (``resumed``) instead
    of failed, and :meth:`recover` re-submits them.  The watchdog and
    the per-config circuit breaker live here too — the service only
    maps their refusals to status codes.
    """

    def __init__(
        self,
        config: JobsConfig,
        pool: WorkerPool,
        metrics: Any | None = None,
        serializer: Callable[[Any], dict[str, Any]] = analysis_payload,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config
        resumable = None
        if config.checkpoint_dir and config.resume_on_start:
            directory = config.checkpoint_dir

            def resumable(job_id: str) -> bool:
                return has_spool(directory, job_id)

        store_kwargs: dict[str, Any] = {
            "capacity": config.max_jobs,
            "ttl_seconds": config.result_ttl_seconds,
            "resumable": resumable,
        }
        if config.store_dir:
            store_kwargs["backend"] = SharedDirectoryBackend(config.store_dir)
        else:
            store_kwargs["persist_path"] = config.persist_path
        if clock is not None:
            store_kwargs["clock"] = clock
        self.store = JobStore(**store_kwargs)
        # This replica's identity on claim markers in the shared store.
        self.owner = f"{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self._drain_thread: threading.Thread | None = None
        self._drain_stop = threading.Event()
        self.claimed_count = 0  # jobs this replica claimed from the queue
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown_seconds=config.breaker_cooldown_seconds,
        )
        self.workers = JobWorkerPool(
            pool,
            self.store,
            metrics=metrics,
            serializer=serializer,
            breaker=self.breaker,
        )
        self.watchdog = Watchdog(
            self.workers,
            deadline_seconds=config.job_deadline_seconds,
            interval_seconds=config.watchdog_interval_seconds,
        )
        self.watchdog.start()
        # job id -> FrameQueue for streaming jobs; pruned lazily once
        # the job is terminal (its queue is closed by the worker).
        self._streams: dict[str, FrameQueue] = {}
        self._streams_lock = threading.Lock()
        # Next spool chunk index per streaming job (seeded from disk
        # on recovery so resumed streams append, never overwrite).
        self._chunk_counts: dict[str, int] = {}

    def close(self) -> None:
        """Stop background machinery (watchdog + shared-queue drain)."""
        self._drain_stop.set()
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=5)
            self._drain_thread = None
        self.watchdog.stop()

    # ------------------------------------------------------------------
    # Crash-safety helpers
    # ------------------------------------------------------------------
    def _checkpointer(self, job_id: str, config_hash: str) -> JobCheckpointer | None:
        if not self.config.checkpoint_dir:
            return None
        return JobCheckpointer(self.config.checkpoint_dir, job_id, config_hash)

    @staticmethod
    def _analyzer_config_dict(analyzer: Any) -> dict[str, Any] | None:
        """The analyzer's resolved config as a dict, when it has one."""
        config = getattr(analyzer, "config", None)
        to_dict = getattr(config, "to_dict", None)
        return to_dict() if callable(to_dict) else None

    def _spool_submission(
        self,
        job_id: str,
        mode: str,
        analyzer: Any,
        annotation: Any,
        seed: int,
        frames: Any = None,
    ) -> None:
        """Persist a submission's inputs (only with a checkpoint_dir)."""
        if not self.config.checkpoint_dir:
            return
        spool_input(
            self.config.checkpoint_dir,
            job_id,
            mode=mode,
            seed=seed,
            config=self._analyzer_config_dict(analyzer),
            annotation=(
                None if annotation is None else annotation_to_dict(annotation)
            ),
            frames=frames,
        )

    # ------------------------------------------------------------------
    def submit_analysis(
        self,
        analyzer: Any,
        video: Any,
        annotation: Any = None,
        seed: int = 0,
        digest: str = "",
        config_hash: str = "",
    ) -> dict[str, Any]:
        """Admit one job and queue it; returns the submitted payload.

        Raises :class:`JobQueueFull` when ``max_queued`` non-terminal
        jobs already exist — the job is *not* created, so a rejected
        submission leaves no trace.
        """
        if self.store.pending_count() >= self.config.max_queued:
            raise JobQueueFull(
                f"{self.config.max_queued} jobs already queued or running; "
                "retry later"
            )
        self.breaker.check(config_hash)
        payload = self.store.create(
            digest or "0" * 10, seed=seed, config_hash=config_hash
        )
        self._spool_submission(
            payload["id"],
            "batch",
            analyzer,
            annotation,
            seed,
            frames=getattr(video, "frames", None),
        )
        if self.store.shared:
            # Shared store: the submission is published to the queue
            # and *any* replica (possibly this one, via its drain loop)
            # claims and runs it from the input spool.
            self.store.enqueue(payload["id"])
            return payload
        self.workers.submit(
            payload["id"],
            analyzer,
            video,
            annotation=annotation,
            seed=seed,
            checkpointer=self._checkpointer(payload["id"], config_hash),
        )
        return payload

    # ------------------------------------------------------------------
    # Streaming jobs
    # ------------------------------------------------------------------
    def submit_stream(
        self,
        analyzer: Any,
        annotation: Any = None,
        seed: int = 0,
        digest: str = "",
        config_hash: str = "",
    ) -> dict[str, Any]:
        """Admit one streaming job; frames arrive via :meth:`push_frames`.

        Same :class:`JobQueueFull` admission rule as
        :meth:`submit_analysis`.  The worker starts immediately and
        waits on the job's bounded frame queue; a producer that never
        sends ``eof`` fails the job after the configured idle timeout.
        """
        if self.store.pending_count() >= self.config.max_queued:
            raise JobQueueFull(
                f"{self.config.max_queued} jobs already queued or running; "
                "retry later"
            )
        self.breaker.check(config_hash)
        payload = self.store.create(
            digest or "0" * 10,
            seed=seed,
            config_hash=config_hash,
            mode="stream",
        )
        if self.store.shared:
            # Streams always run on the replica holding the HTTP
            # connection (the frame queue lives here), so adopt the
            # record immediately instead of publishing it for claims.
            self.store.adopt(payload["id"])
        self._spool_submission(payload["id"], "stream", analyzer, annotation, seed)
        queue = FrameQueue(self.config.stream_queue_frames)
        with self._streams_lock:
            self._prune_streams_locked()
            self._streams[payload["id"]] = queue
        self.workers.submit_stream(
            payload["id"],
            analyzer,
            queue,
            annotation=annotation,
            seed=seed,
            idle_timeout=self.config.stream_idle_timeout_seconds,
            checkpointer=self._checkpointer(payload["id"], config_hash),
        )
        return payload

    def _prune_streams_locked(self) -> None:
        for job_id in list(self._streams):
            payload = self.store.payload(job_id)
            if payload is None or payload["state"] in JobState.TERMINAL:
                del self._streams[job_id]

    def stream_queue(self, job_id: str) -> FrameQueue | None:
        """The live frame queue of one streaming job, if any."""
        with self._streams_lock:
            return self._streams.get(job_id)

    def push_frames(self, job_id: str, frames: list) -> dict[str, Any]:
        """Append frames to a streaming job's queue.

        Raises :class:`~repro.jobs.stream.FrameQueueFull` at capacity
        (HTTP 429) and :class:`~repro.errors.StreamError` when the
        stream is closed or unknown (HTTP 409).
        """
        queue = self.stream_queue(job_id)
        if queue is None:
            raise StreamError(f"job {job_id!r} has no open stream")
        queued = queue.put(frames)
        self._spool_chunk(job_id, frames)
        total = self.store.record_frames(job_id, len(frames))
        return {"queued": queued, "frames_received": total}

    def _spool_chunk(self, job_id: str, frames: list) -> None:
        """Persist one accepted frame chunk (only with a checkpoint_dir).

        Spooled *after* ``queue.put`` succeeds so the spool never holds
        frames the stream rejected, and the chunk sequence mirrors the
        accepted-frame sequence exactly.
        """
        if not self.config.checkpoint_dir:
            return
        with self._streams_lock:
            index = self._chunk_counts.get(job_id)
            if index is None:
                index = stream_chunk_count(self.config.checkpoint_dir, job_id)
            self._chunk_counts[job_id] = index + 1
        spool_stream_chunk(self.config.checkpoint_dir, job_id, index, frames)

    def eof(self, job_id: str) -> None:
        """Signal end-of-frames; the worker finishes and scores the job."""
        queue = self.stream_queue(job_id)
        if queue is None:
            raise StreamError(f"job {job_id!r} has no open stream")
        if queue.closed:
            raise StreamError(f"job {job_id!r} already received eof")
        if self.config.checkpoint_dir:
            spool_stream_eof(self.config.checkpoint_dir, job_id)
        queue.close()
        self.store.mark_eof(job_id)

    def open_streams(self) -> int:
        """Streaming jobs whose frame queue is still registered."""
        with self._streams_lock:
            self._prune_streams_locked()
            return len(self._streams)

    # ------------------------------------------------------------------
    def payload(
        self, job_id: str, include_result: bool = False
    ) -> dict[str, Any] | None:
        """One job's status payload (``None`` when unknown/expired)."""
        return self.store.payload(job_id, include_result=include_result)

    def is_expired(self, job_id: str) -> bool:
        """Whether the job existed but aged out of the store."""
        return self.store.is_expired(job_id)

    def cancel(self, job_id: str) -> str | None:
        """Request cancellation; see :meth:`JobStore.request_cancel`.

        For streaming jobs the frame queue is closed *after* the token
        trips, so a worker woken by the close observes the cancel
        before it can finish the analysis.
        """
        outcome = self.store.request_cancel(job_id)
        if outcome == "cancelling":
            self.workers.cancel(job_id)
        if outcome in ("cancelling", "cancelled"):
            queue = self.stream_queue(job_id)
            if queue is not None:
                queue.close()
        return outcome

    def list_payload(
        self, limit: int = 50, state: str | None = None
    ) -> list[dict[str, Any]]:
        """Newest-first bounded job listing."""
        return self.store.list_payload(limit=limit, state=state)

    # ------------------------------------------------------------------
    # Restart recovery
    # ------------------------------------------------------------------
    def recover(self, analyzer_factory: Callable[[dict[str, Any] | None], Any]) -> list[str]:
        """Re-submit jobs the store restored as resumable.

        ``analyzer_factory`` maps a spooled config dict (or ``None``)
        to an analyzer.  Batch jobs resume from their last completed
        stage checkpoint; streaming jobs get a fresh frame queue and
        replay their spooled chunks, so a reconnecting client can keep
        pushing from ``frames_received``.  Jobs whose spool turns out
        unreadable are failed cleanly as ``Interrupted`` rather than
        left queued forever.  Returns the re-submitted job ids.
        """
        directory = self.config.checkpoint_dir
        if not directory or not self.config.resume_on_start:
            return []
        recovered: list[str] = []
        for payload in self.store.queued_jobs():
            if not payload.get("resumed"):
                continue
            job_id = payload["id"]
            meta = load_input_meta(directory, job_id)
            if meta is None:
                self._fail_unrecoverable(job_id, "input spool unreadable")
                continue
            annotation = None
            if meta.get("annotation") is not None:
                from ..serialization import annotation_from_dict

                annotation = annotation_from_dict(meta["annotation"])
            seed = int(meta.get("seed", 0))
            analyzer = analyzer_factory(meta.get("config"))
            checkpointer = self._checkpointer(
                job_id, payload.get("config_hash", "")
            )
            if meta.get("mode") == "stream":
                frames, eof = load_stream_spool(directory, job_id)
                queue = FrameQueue(self.config.stream_queue_frames)
                if eof:
                    queue.close()
                with self._streams_lock:
                    self._streams[job_id] = queue
                    self._chunk_counts[job_id] = stream_chunk_count(
                        directory, job_id
                    )
                self.workers.submit_stream(
                    job_id,
                    analyzer,
                    queue,
                    annotation=annotation,
                    seed=seed,
                    idle_timeout=self.config.stream_idle_timeout_seconds,
                    checkpointer=checkpointer,
                    replay=frames,
                    replay_eof=eof,
                )
            else:
                frames_array = load_input_frames(directory, job_id)
                if frames_array is None:
                    self._fail_unrecoverable(job_id, "frame spool unreadable")
                    continue
                from ..video.sequence import VideoSequence

                self.workers.submit(
                    job_id,
                    analyzer,
                    VideoSequence(frames_array),
                    annotation=annotation,
                    seed=seed,
                    checkpointer=checkpointer,
                )
            recovered.append(job_id)
        return recovered

    # ------------------------------------------------------------------
    # Shared-queue draining (store_dir mode)
    # ------------------------------------------------------------------
    def start_drain(
        self, analyzer_factory: Callable[[dict[str, Any] | None], Any]
    ) -> bool:
        """Start claiming queued jobs from the shared store.

        No-op (returns False) without a shared backend.  The loop polls
        ``claim_next`` every ``store_drain_interval_seconds``; each
        claimed job is rebuilt from its input spool — exactly the
        :meth:`recover` reconstruction — and handed to this replica's
        worker pool.
        """
        if not self.store.shared or self._drain_thread is not None:
            return False
        self._drain_stop.clear()
        self._drain_thread = threading.Thread(
            target=self._drain_loop,
            args=(analyzer_factory,),
            name="slj-job-drain",
            daemon=True,
        )
        self._drain_thread.start()
        return True

    def _drain_loop(
        self, analyzer_factory: Callable[[dict[str, Any] | None], Any]
    ) -> None:
        while not self._drain_stop.is_set():
            claimed = self.drain_once(analyzer_factory)
            if not claimed:
                self._drain_stop.wait(self.config.store_drain_interval_seconds)

    def drain_once(
        self, analyzer_factory: Callable[[dict[str, Any] | None], Any]
    ) -> str | None:
        """Claim and start at most one queued job; returns its id.

        Exposed separately from the background loop so tests (and
        synchronous drains) can step the queue deterministically.
        """
        job_id = self.store.claim_next(self.owner)
        if job_id is None:
            return None
        self.claimed_count += 1
        payload = self.store.adopt(job_id)
        if payload is None:
            return None
        if payload["state"] != JobState.SUBMITTED or payload["cancel_requested"]:
            # Cancelled (or otherwise resolved) while queued — the
            # claim is consumed but nothing runs.
            return None
        directory = self.config.checkpoint_dir
        meta = load_input_meta(directory, job_id) if directory else None
        if meta is None:
            self._fail_unrecoverable(job_id, "input spool unreadable")
            return None
        frames_array = load_input_frames(directory, job_id)
        if frames_array is None:
            self._fail_unrecoverable(job_id, "frame spool unreadable")
            return None
        annotation = None
        if meta.get("annotation") is not None:
            from ..serialization import annotation_from_dict

            annotation = annotation_from_dict(meta["annotation"])
        from ..video.sequence import VideoSequence

        self.workers.submit(
            job_id,
            analyzer_factory(meta.get("config")),
            VideoSequence(frames_array),
            annotation=annotation,
            seed=int(meta.get("seed", 0)),
            checkpointer=self._checkpointer(
                job_id, payload.get("config_hash", "")
            ),
        )
        return job_id

    def _fail_unrecoverable(self, job_id: str, reason: str) -> None:
        self.store.mark_running(job_id)
        self.store.finish(
            job_id,
            JobState.FAILED,
            error={
                "type": "Interrupted",
                "message": f"job could not be resumed after restart: {reason}",
            },
        )

    def stats(self) -> dict[str, Any]:
        """Job counters for ``/metrics``."""
        stats = self.store.stats()
        stats["enabled"] = self.config.enabled
        stats["max_queued"] = self.config.max_queued
        stats["backend"] = self.store.backend.kind
        stats["claimed"] = self.claimed_count
        stats["open_streams"] = self.open_streams()
        stats["watchdog_timeouts"] = self.workers.watchdog_timeouts
        stats["breaker"] = self.breaker.snapshot()
        return stats
