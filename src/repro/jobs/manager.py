"""The facade the service (and tests) talk to.

:class:`JobManager` wires a :class:`~repro.jobs.store.JobStore` and a
:class:`~repro.jobs.worker.JobWorkerPool` together behind one small
API: submit, read, cancel, list.  It owns admission control (the
``max_queued`` backpressure bound) but no HTTP concerns — status codes
live in :mod:`repro.service`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .models import JobsConfig, JobState
from .store import JobStore
from .stream import FrameQueue
from .worker import JobWorkerPool
from ..errors import ReproError, StreamError
from ..perf.pool import WorkerPool
from ..serialization import analysis_payload


class JobQueueFull(ReproError):
    """Too many jobs already queued or running (maps to HTTP 503)."""


class JobManager:
    """Owns the job store and worker pool for one service instance."""

    def __init__(
        self,
        config: JobsConfig,
        pool: WorkerPool,
        metrics: Any | None = None,
        serializer: Callable[[Any], dict[str, Any]] = analysis_payload,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config
        store_kwargs: dict[str, Any] = {
            "capacity": config.max_jobs,
            "ttl_seconds": config.result_ttl_seconds,
            "persist_path": config.persist_path,
        }
        if clock is not None:
            store_kwargs["clock"] = clock
        self.store = JobStore(**store_kwargs)
        self.workers = JobWorkerPool(
            pool, self.store, metrics=metrics, serializer=serializer
        )
        # job id -> FrameQueue for streaming jobs; pruned lazily once
        # the job is terminal (its queue is closed by the worker).
        self._streams: dict[str, FrameQueue] = {}
        self._streams_lock = threading.Lock()

    # ------------------------------------------------------------------
    def submit_analysis(
        self,
        analyzer: Any,
        video: Any,
        annotation: Any = None,
        seed: int = 0,
        digest: str = "",
        config_hash: str = "",
    ) -> dict[str, Any]:
        """Admit one job and queue it; returns the submitted payload.

        Raises :class:`JobQueueFull` when ``max_queued`` non-terminal
        jobs already exist — the job is *not* created, so a rejected
        submission leaves no trace.
        """
        if self.store.pending_count() >= self.config.max_queued:
            raise JobQueueFull(
                f"{self.config.max_queued} jobs already queued or running; "
                "retry later"
            )
        payload = self.store.create(
            digest or "0" * 10, seed=seed, config_hash=config_hash
        )
        self.workers.submit(
            payload["id"], analyzer, video, annotation=annotation, seed=seed
        )
        return payload

    # ------------------------------------------------------------------
    # Streaming jobs
    # ------------------------------------------------------------------
    def submit_stream(
        self,
        analyzer: Any,
        annotation: Any = None,
        seed: int = 0,
        digest: str = "",
        config_hash: str = "",
    ) -> dict[str, Any]:
        """Admit one streaming job; frames arrive via :meth:`push_frames`.

        Same :class:`JobQueueFull` admission rule as
        :meth:`submit_analysis`.  The worker starts immediately and
        waits on the job's bounded frame queue; a producer that never
        sends ``eof`` fails the job after the configured idle timeout.
        """
        if self.store.pending_count() >= self.config.max_queued:
            raise JobQueueFull(
                f"{self.config.max_queued} jobs already queued or running; "
                "retry later"
            )
        payload = self.store.create(
            digest or "0" * 10,
            seed=seed,
            config_hash=config_hash,
            mode="stream",
        )
        queue = FrameQueue(self.config.stream_queue_frames)
        with self._streams_lock:
            self._prune_streams_locked()
            self._streams[payload["id"]] = queue
        self.workers.submit_stream(
            payload["id"],
            analyzer,
            queue,
            annotation=annotation,
            seed=seed,
            idle_timeout=self.config.stream_idle_timeout_seconds,
        )
        return payload

    def _prune_streams_locked(self) -> None:
        for job_id in list(self._streams):
            payload = self.store.payload(job_id)
            if payload is None or payload["state"] in JobState.TERMINAL:
                del self._streams[job_id]

    def stream_queue(self, job_id: str) -> FrameQueue | None:
        """The live frame queue of one streaming job, if any."""
        with self._streams_lock:
            return self._streams.get(job_id)

    def push_frames(self, job_id: str, frames: list) -> dict[str, Any]:
        """Append frames to a streaming job's queue.

        Raises :class:`~repro.jobs.stream.FrameQueueFull` at capacity
        (HTTP 429) and :class:`~repro.errors.StreamError` when the
        stream is closed or unknown (HTTP 409).
        """
        queue = self.stream_queue(job_id)
        if queue is None:
            raise StreamError(f"job {job_id!r} has no open stream")
        queued = queue.put(frames)
        total = self.store.record_frames(job_id, len(frames))
        return {"queued": queued, "frames_received": total}

    def eof(self, job_id: str) -> None:
        """Signal end-of-frames; the worker finishes and scores the job."""
        queue = self.stream_queue(job_id)
        if queue is None:
            raise StreamError(f"job {job_id!r} has no open stream")
        if queue.closed:
            raise StreamError(f"job {job_id!r} already received eof")
        queue.close()
        self.store.mark_eof(job_id)

    def open_streams(self) -> int:
        """Streaming jobs whose frame queue is still registered."""
        with self._streams_lock:
            self._prune_streams_locked()
            return len(self._streams)

    # ------------------------------------------------------------------
    def payload(
        self, job_id: str, include_result: bool = False
    ) -> dict[str, Any] | None:
        """One job's status payload (``None`` when unknown/expired)."""
        return self.store.payload(job_id, include_result=include_result)

    def is_expired(self, job_id: str) -> bool:
        """Whether the job existed but aged out of the store."""
        return self.store.is_expired(job_id)

    def cancel(self, job_id: str) -> str | None:
        """Request cancellation; see :meth:`JobStore.request_cancel`.

        For streaming jobs the frame queue is closed *after* the token
        trips, so a worker woken by the close observes the cancel
        before it can finish the analysis.
        """
        outcome = self.store.request_cancel(job_id)
        if outcome == "cancelling":
            self.workers.cancel(job_id)
        if outcome in ("cancelling", "cancelled"):
            queue = self.stream_queue(job_id)
            if queue is not None:
                queue.close()
        return outcome

    def list_payload(
        self, limit: int = 50, state: str | None = None
    ) -> list[dict[str, Any]]:
        """Newest-first bounded job listing."""
        return self.store.list_payload(limit=limit, state=state)

    def stats(self) -> dict[str, Any]:
        """Job counters for ``/metrics``."""
        stats = self.store.stats()
        stats["enabled"] = self.config.enabled
        stats["max_queued"] = self.config.max_queued
        stats["open_streams"] = self.open_streams()
        return stats
