"""The facade the service (and tests) talk to.

:class:`JobManager` wires a :class:`~repro.jobs.store.JobStore` and a
:class:`~repro.jobs.worker.JobWorkerPool` together behind one small
API: submit, read, cancel, list.  It owns admission control (the
``max_queued`` backpressure bound) but no HTTP concerns — status codes
live in :mod:`repro.service`.
"""

from __future__ import annotations

from typing import Any, Callable

from .models import JobsConfig
from .store import JobStore
from .worker import JobWorkerPool
from ..errors import ReproError
from ..perf.pool import WorkerPool
from ..serialization import analysis_payload


class JobQueueFull(ReproError):
    """Too many jobs already queued or running (maps to HTTP 503)."""


class JobManager:
    """Owns the job store and worker pool for one service instance."""

    def __init__(
        self,
        config: JobsConfig,
        pool: WorkerPool,
        metrics: Any | None = None,
        serializer: Callable[[Any], dict[str, Any]] = analysis_payload,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config
        store_kwargs: dict[str, Any] = {
            "capacity": config.max_jobs,
            "ttl_seconds": config.result_ttl_seconds,
            "persist_path": config.persist_path,
        }
        if clock is not None:
            store_kwargs["clock"] = clock
        self.store = JobStore(**store_kwargs)
        self.workers = JobWorkerPool(
            pool, self.store, metrics=metrics, serializer=serializer
        )

    # ------------------------------------------------------------------
    def submit_analysis(
        self,
        analyzer: Any,
        video: Any,
        annotation: Any = None,
        seed: int = 0,
        digest: str = "",
        config_hash: str = "",
    ) -> dict[str, Any]:
        """Admit one job and queue it; returns the submitted payload.

        Raises :class:`JobQueueFull` when ``max_queued`` non-terminal
        jobs already exist — the job is *not* created, so a rejected
        submission leaves no trace.
        """
        if self.store.pending_count() >= self.config.max_queued:
            raise JobQueueFull(
                f"{self.config.max_queued} jobs already queued or running; "
                "retry later"
            )
        payload = self.store.create(
            digest or "0" * 10, seed=seed, config_hash=config_hash
        )
        self.workers.submit(
            payload["id"], analyzer, video, annotation=annotation, seed=seed
        )
        return payload

    # ------------------------------------------------------------------
    def payload(
        self, job_id: str, include_result: bool = False
    ) -> dict[str, Any] | None:
        """One job's status payload (``None`` when unknown/expired)."""
        return self.store.payload(job_id, include_result=include_result)

    def is_expired(self, job_id: str) -> bool:
        """Whether the job existed but aged out of the store."""
        return self.store.is_expired(job_id)

    def cancel(self, job_id: str) -> str | None:
        """Request cancellation; see :meth:`JobStore.request_cancel`."""
        outcome = self.store.request_cancel(job_id)
        if outcome == "cancelling":
            self.workers.cancel(job_id)
        return outcome

    def list_payload(
        self, limit: int = 50, state: str | None = None
    ) -> list[dict[str, Any]]:
        """Newest-first bounded job listing."""
        return self.store.list_payload(limit=limit, state=state)

    def stats(self) -> dict[str, Any]:
        """Job counters for ``/metrics``."""
        stats = self.store.stats()
        stats["enabled"] = self.config.enabled
        stats["max_queued"] = self.config.max_queued
        return stats
