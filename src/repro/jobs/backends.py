"""Pluggable persistence backends for the :class:`~repro.jobs.store.JobStore`.

The store's concurrency model never changes — one in-process lock
guards every mutation — but *where records live* is now a backend:

``SingleProcessBackend``
    The historical behaviour: an in-memory store optionally mirrored
    to one JSON snapshot file on every transition.  One process owns
    the file; replicas must not share it.

``SharedDirectoryBackend``
    A file-locked directory N service replicas (e.g. ``slj serve
    --procs N``) share.  Every job is its own JSON record written via
    tmp-file + :func:`os.replace`; submissions additionally drop a
    marker into ``queue/``; a replica claims work by atomically
    renaming the marker into ``claims/`` — :func:`os.replace` on POSIX
    guarantees exactly one renamer wins, so two replicas can never
    claim the same job.  The id sequence lives in ``index.json`` under
    an ``fcntl`` lock so replicas mint non-colliding job ids.

Layout of a shared store directory::

    store/
      index.json     {"seq": N}           (fcntl-locked via index.lock)
      index.lock
      jobs/<id>.json one record per job   (atomic replace on write)
      queue/<id>     submitted, unclaimed
      claims/<id>    claimed; content = owner id

Backends only move bytes; all lifecycle semantics (states, TTL,
capacity, cancellation) stay in the store.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Protocol

from ..errors import ConfigurationError

try:  # POSIX only; the shared backend refuses to build without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]


def _write_atomic(path: Path, payload: dict[str, Any]) -> None:
    """Write JSON so readers only ever see complete documents."""
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)


class JobStoreBackend(Protocol):
    """What a :class:`~repro.jobs.store.JobStore` needs from storage.

    ``shared`` is the behavioural switch: a shared backend stores one
    record per job (other replicas read them concurrently) and serves
    the submit queue; a non-shared backend persists whole-store
    snapshots and has no queue.
    """

    kind: str
    shared: bool

    def load_snapshot(self) -> dict[str, Any] | None:
        """The persisted snapshot (non-shared), or ``{"seq": n}`` (shared)."""
        ...

    def persist_snapshot(self, payload: dict[str, Any]) -> None:
        """Persist the whole store state (non-shared backends only)."""
        ...

    def allocate_seq(self) -> int:
        """Atomically mint the next job sequence number (shared only)."""
        ...

    def write_job(self, record: dict[str, Any]) -> None:
        """Upsert one job record."""
        ...

    def read_job(self, job_id: str) -> dict[str, Any] | None:
        """One job record, or ``None`` when unknown."""
        ...

    def remove_job(self, job_id: str) -> None:
        """Forget one job record (idempotent)."""
        ...

    def list_job_ids(self) -> list[str]:
        """Ids of every stored job record."""
        ...

    def enqueue(self, job_id: str) -> None:
        """Publish a submitted job for any replica to claim."""
        ...

    def claim_next(self, owner: str) -> str | None:
        """Atomically claim the oldest queued job, or ``None``.

        At most one replica ever gets a given id back from this call.
        """
        ...


class SingleProcessBackend:
    """The default backend: in-memory, optionally JSON-mirrored.

    Exactly reproduces the store's historical persistence: the whole
    state is rewritten (tmp + replace) on every transition, and the
    snapshot is read back once at startup.
    """

    kind = "single"
    shared = False

    def __init__(self, persist_path: str | Path | None = None) -> None:
        self._path = Path(persist_path) if persist_path else None

    def load_snapshot(self) -> dict[str, Any] | None:
        if self._path is None or not self._path.exists():
            return None
        try:
            return json.loads(self._path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"could not load job store from {self._path}: {exc}"
            ) from exc

    def persist_snapshot(self, payload: dict[str, Any]) -> None:
        if self._path is None:
            return
        tmp = self._path.with_suffix(self._path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self._path)

    # The queue/record surface is a shared-backend concept.
    def allocate_seq(self) -> int:  # pragma: no cover - store guards this
        raise ConfigurationError("single-process backend has no shared seq")

    def write_job(self, record: dict[str, Any]) -> None:
        raise ConfigurationError("single-process backend stores snapshots")

    def read_job(self, job_id: str) -> dict[str, Any] | None:
        return None

    def remove_job(self, job_id: str) -> None:
        return None

    def list_job_ids(self) -> list[str]:
        return []

    def enqueue(self, job_id: str) -> None:
        raise ConfigurationError("single-process backend has no claim queue")

    def claim_next(self, owner: str) -> str | None:
        return None


class SharedDirectoryBackend:
    """A shared-directory store N replicas drain with zero double-claims."""

    kind = "shared_directory"
    shared = True

    def __init__(self, root: str | Path) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            raise ConfigurationError(
                "the shared-directory job store needs fcntl (POSIX)"
            )
        self.root = Path(root)
        self._jobs = self.root / "jobs"
        self._queue = self.root / "queue"
        self._claims = self.root / "claims"
        for directory in (self.root, self._jobs, self._queue, self._claims):
            directory.mkdir(parents=True, exist_ok=True)
        self._index = self.root / "index.json"
        self._index_lock = self.root / "index.lock"

    # -- index ----------------------------------------------------------
    def _locked_index(self) -> Any:
        handle = open(self._index_lock, "a+")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        return handle

    def load_snapshot(self) -> dict[str, Any] | None:
        with self._locked_index():
            if not self._index.exists():
                return None
            try:
                return {"seq": int(json.loads(self._index.read_text())["seq"])}
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                return None

    def persist_snapshot(self, payload: dict[str, Any]) -> None:
        # Shared stores persist per-job; nothing snapshot-shaped to do.
        return None

    def allocate_seq(self) -> int:
        with self._locked_index():
            seq = 0
            if self._index.exists():
                try:
                    seq = int(json.loads(self._index.read_text())["seq"])
                except (OSError, json.JSONDecodeError, KeyError, ValueError):
                    seq = 0
            seq += 1
            _write_atomic(self._index, {"seq": seq})
            return seq

    # -- records --------------------------------------------------------
    def write_job(self, record: dict[str, Any]) -> None:
        _write_atomic(self._jobs / f"{record['id']}.json", record)

    def read_job(self, job_id: str) -> dict[str, Any] | None:
        path = self._jobs / f"{job_id}.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # A reader racing the atomic replace never sees this (the
            # rename is atomic); an unreadable record means tampering —
            # treat as unknown rather than poisoning every listing.
            return None

    def remove_job(self, job_id: str) -> None:
        for path in (
            self._jobs / f"{job_id}.json",
            self._queue / job_id,
            self._claims / job_id,
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def list_job_ids(self) -> list[str]:
        return sorted(path.stem for path in self._jobs.glob("*.json"))

    # -- queue ----------------------------------------------------------
    def enqueue(self, job_id: str) -> None:
        _write_atomic(self._queue / job_id, {"id": job_id})

    def claim_next(self, owner: str) -> str | None:
        # Job ids start with a zero-padded sequence number, so sorted
        # marker names are submission order.
        for marker in sorted(self._queue.iterdir()):
            if marker.name.startswith("."):
                continue
            claim = self._claims / marker.name
            try:
                # The atomic heart of multi-replica draining: rename is
                # all-or-nothing, so of N replicas racing for this
                # marker exactly one sees success and every other gets
                # FileNotFoundError and moves on.
                os.replace(marker, claim)
            except FileNotFoundError:
                continue
            claim.write_text(json.dumps({"owner": owner}))
            return marker.name
        return None

    def queued_ids(self) -> list[str]:
        """Currently unclaimed submissions, oldest first."""
        return sorted(
            path.name
            for path in self._queue.iterdir()
            if not path.name.startswith(".")
        )

    def claim_owner(self, job_id: str) -> str | None:
        """Who claimed ``job_id``, if anyone."""
        try:
            return json.loads((self._claims / job_id).read_text()).get("owner")
        except (OSError, json.JSONDecodeError):
            return None
