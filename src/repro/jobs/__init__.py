"""Asynchronous analysis jobs.

The paper's envisioned web system takes an upload and answers "with
advices" — but a real video analysis takes long enough that holding an
HTTP connection open for it is the wrong contract.  This package adds
the asynchronous one: ``POST /v1/jobs`` answers **202 + a job id**
immediately, the analysis runs on the service's shared bounded worker
pool, and the client polls ``GET /v1/jobs/{id}`` (per-stage progress
included) until the job is terminal, then fetches the result.

Layout
------
``models``
    :class:`Job` records, :class:`JobState` lifecycle constants, and
    the :class:`JobsConfig` knobs (wired into ``ServiceConfig``).
``store``
    :class:`JobStore` — lock-guarded LRU with result TTL and optional
    JSON-file persistence.
``backends``
    :class:`JobStoreBackend` storage protocol with the default
    :class:`SingleProcessBackend` (in-memory + JSON snapshot) and the
    :class:`SharedDirectoryBackend` N replicas drain together (atomic
    rename claims — zero double-claims).
``worker``
    :class:`JobWorkerPool` — runs jobs on a shared
    :class:`~repro.perf.pool.WorkerPool`, mirrors pipeline
    instrumentation into job progress, honours cooperative
    cancellation between stages.
``manager``
    :class:`JobManager` — the submit/read/cancel/list facade the HTTP
    layer talks to, plus :class:`JobQueueFull` backpressure.
``stream``
    :class:`FrameQueue` — the bounded hand-off between the streaming
    ingest endpoints (``POST /v1/jobs/{id}/frames`` / ``.../eof``) and
    the worker's :class:`~repro.streaming.StreamingAnalyzer`, with
    :class:`FrameQueueFull` (→ 429) and :class:`StreamIdleTimeout`
    (a producer that never sends ``eof`` fails the job instead of
    pinning a pool slot).
"""

from __future__ import annotations

from .backends import (
    JobStoreBackend,
    SharedDirectoryBackend,
    SingleProcessBackend,
)
from .manager import JobManager, JobQueueFull
from .models import Job, JobsConfig, JobState
from .store import JobStore
from .stream import FrameQueue, FrameQueueFull, StreamIdleTimeout
from .worker import JobProgressSink, JobWorkerPool

__all__ = [
    "FrameQueue",
    "FrameQueueFull",
    "Job",
    "JobManager",
    "JobProgressSink",
    "JobQueueFull",
    "JobState",
    "JobStore",
    "JobStoreBackend",
    "JobWorkerPool",
    "JobsConfig",
    "SharedDirectoryBackend",
    "SingleProcessBackend",
    "StreamIdleTimeout",
]
