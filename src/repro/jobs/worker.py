"""Runs jobs on the shared worker pool with progress + cancellation.

The worker is deliberately thin: every state transition goes through
the :class:`~repro.jobs.store.JobStore`, progress comes straight from
the pipeline's own :class:`~repro.runtime.Instrumentation` events (no
second bookkeeping path to drift), and cancellation is the runtime's
cooperative :class:`~repro.runtime.CancellationToken`, checked by the
:class:`~repro.runtime.runner.PipelineRunner` between stages.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from .models import JobState
from .store import JobStore
from .stream import FrameQueue, StreamIdleTimeout
from ..errors import CancelledError, ReproError
from ..perf.pool import WorkerPool
from ..runtime import CancellationToken, Instrumentation
from ..runtime.instrumentation import SpanEvent
from ..serialization import analysis_payload


class JobProgressSink:
    """Instrumentation sink that mirrors stage events into a job record.

    The runner emits a ``runtime/stage_start`` event before each stage
    and a span for each finished one; this sink translates exactly
    those two signals into the job's ``progress`` block.
    """

    __slots__ = ("_store", "_job_id", "_stages")

    def __init__(
        self, store: JobStore, job_id: str, stage_names: tuple[str, ...]
    ) -> None:
        self._store = store
        self._job_id = job_id
        self._stages = set(stage_names)

    def emit(self, event: SpanEvent) -> None:
        if event.kind == "event" and event.name == "runtime/stage_start":
            stage = event.field_dict().get("stage")
            if stage in self._stages:
                self._store.update_progress(self._job_id, current_stage=stage)
        elif event.kind == "span" and event.name in self._stages:
            self._store.update_progress(
                self._job_id, completed_stage=event.name
            )


class JobWorkerPool:
    """Executes jobs on a shared :class:`~repro.perf.pool.WorkerPool`.

    Holds one :class:`CancellationToken` per in-flight job so
    ``DELETE /v1/jobs/{id}`` can interrupt the run between pipeline
    stages without poisoning the pool: the worker catches the resulting
    :class:`~repro.errors.CancelledError`, records the terminal state,
    and returns its thread to the pool clean.
    """

    def __init__(
        self,
        pool: WorkerPool,
        store: JobStore,
        metrics: Any | None = None,
        serializer: Callable[[Any], dict[str, Any]] = analysis_payload,
    ) -> None:
        self._pool = pool
        self._store = store
        self._metrics = metrics
        self._serializer = serializer
        self._lock = threading.Lock()
        self._tokens: dict[str, CancellationToken] = {}

    def submit(
        self,
        job_id: str,
        analyzer: Any,
        video: Any,
        annotation: Any = None,
        seed: int = 0,
    ) -> None:
        """Queue one job; returns immediately."""
        token = CancellationToken()
        with self._lock:
            self._tokens[job_id] = token
        self._pool.submit(
            self._run, job_id, analyzer, video, annotation, seed, token
        )

    def submit_stream(
        self,
        job_id: str,
        analyzer: Any,
        frames: FrameQueue,
        annotation: Any = None,
        seed: int = 0,
        idle_timeout: float = 30.0,
    ) -> None:
        """Queue one streaming job fed by ``frames``; returns immediately."""
        token = CancellationToken()
        with self._lock:
            self._tokens[job_id] = token
        self._pool.submit(
            self._run_stream,
            job_id,
            analyzer,
            frames,
            annotation,
            seed,
            idle_timeout,
            token,
        )

    def cancel(self, job_id: str) -> None:
        """Trip the job's token (no-op when it already finished)."""
        with self._lock:
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel()

    def active(self) -> int:
        """Jobs currently holding a cancellation token."""
        with self._lock:
            return len(self._tokens)

    # ------------------------------------------------------------------
    def _run(
        self,
        job_id: str,
        analyzer: Any,
        video: Any,
        annotation: Any,
        seed: int,
        token: CancellationToken,
    ) -> None:
        store = self._store
        try:
            # A cancel that landed while the job sat in the queue is
            # honoured without ever starting the pipeline.
            if store.cancel_requested(job_id):
                token.cancel()
            stage_names = tuple(getattr(analyzer, "STAGES", ()))
            if not store.mark_running(job_id, total_stages=len(stage_names)):
                return  # cancelled pre-start or evicted
            if token.cancelled:
                store.finish(
                    job_id,
                    JobState.CANCELLED,
                    error={
                        "type": "CancelledError",
                        "message": "job cancelled before it started",
                    },
                )
                return
            instrumentation = Instrumentation(
                sink=JobProgressSink(store, job_id, stage_names)
            )
            analysis = analyzer.analyze(
                video,
                annotation=annotation,
                rng=np.random.default_rng(seed),
                instrumentation=instrumentation,
                cancel_token=token,
            )
            if self._metrics is not None and hasattr(analysis, "trace"):
                self._metrics.observe_trace(analysis.trace)
            result = self._serializer(analysis)
            store.finish(
                job_id,
                JobState.SUCCEEDED,
                result=result,
                degraded=bool(result.get("degraded", False)),
                degradation=result.get("degradation"),
            )
        except CancelledError as exc:
            store.finish(
                job_id,
                JobState.CANCELLED,
                error={"type": "CancelledError", "message": str(exc)},
            )
        except ReproError as exc:
            store.finish(
                job_id,
                JobState.FAILED,
                error={"type": type(exc).__name__, "message": str(exc)},
            )
        except BaseException as exc:  # the pool thread must survive
            store.finish(
                job_id,
                JobState.FAILED,
                error={"type": "InternalError", "message": str(exc)},
            )
        finally:
            with self._lock:
                self._tokens.pop(job_id, None)

    @staticmethod
    def _stream_progress(update: Any) -> dict[str, Any]:
        """The job payload's ``provisional`` block for one frame update."""
        return {
            "frames_seen": update.frames_seen,
            "phase": update.phase,
            "pose_box": (
                list(update.pose_box) if update.pose_box is not None else None
            ),
            "estimate": (
                update.provisional.to_dict()
                if update.provisional is not None
                else None
            ),
        }

    def _run_stream(
        self,
        job_id: str,
        analyzer: Any,
        frames: FrameQueue,
        annotation: Any,
        seed: int,
        idle_timeout: float,
        token: CancellationToken,
    ) -> None:
        """Drain the frame queue through a streaming analyzer.

        Mirrors :meth:`_run`'s lifecycle and error mapping; the extra
        exits are :class:`StreamIdleTimeout` (no frame and no eof →
        ``failed``, never a leaked pool slot) and a queue closed by
        cancellation (the token raises on the next push or at finish).
        """
        store = self._store
        try:
            if store.cancel_requested(job_id):
                token.cancel()
            stage_names = tuple(getattr(analyzer, "STAGES", ()))
            if not store.mark_running(job_id, total_stages=len(stage_names)):
                return  # cancelled pre-start or evicted
            if token.cancelled:
                store.finish(
                    job_id,
                    JobState.CANCELLED,
                    error={
                        "type": "CancelledError",
                        "message": "job cancelled before it started",
                    },
                )
                return
            instrumentation = Instrumentation(
                sink=JobProgressSink(store, job_id, stage_names)
            )
            stream = analyzer.open_stream(
                annotation=annotation,
                rng=np.random.default_rng(seed),
                instrumentation=instrumentation,
                cancel_token=token,
            )
            while True:
                frame = frames.get(timeout=idle_timeout)
                if frame is None:  # eof (or a cancel closed the queue)
                    break
                update = stream.push_frame(frame)
                store.set_provisional(job_id, self._stream_progress(update))
            token.raise_if_cancelled("finish")
            analysis = stream.finish()
            if self._metrics is not None and hasattr(analysis, "trace"):
                self._metrics.observe_trace(analysis.trace)
            result = self._serializer(analysis)
            store.finish(
                job_id,
                JobState.SUCCEEDED,
                result=result,
                degraded=bool(result.get("degraded", False)),
                degradation=result.get("degradation"),
            )
        except StreamIdleTimeout as exc:
            store.finish(
                job_id,
                JobState.FAILED,
                error={"type": "StreamIdleTimeout", "message": str(exc)},
            )
        except CancelledError as exc:
            store.finish(
                job_id,
                JobState.CANCELLED,
                error={"type": "CancelledError", "message": str(exc)},
            )
        except ReproError as exc:
            store.finish(
                job_id,
                JobState.FAILED,
                error={"type": type(exc).__name__, "message": str(exc)},
            )
        except BaseException as exc:  # the pool thread must survive
            store.finish(
                job_id,
                JobState.FAILED,
                error={"type": "InternalError", "message": str(exc)},
            )
        finally:
            frames.close()  # further pushes answer "stream closed"
            with self._lock:
                self._tokens.pop(job_id, None)
