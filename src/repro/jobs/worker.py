"""Runs jobs on the shared worker pool with progress + cancellation.

The worker is deliberately thin: every state transition goes through
the :class:`~repro.jobs.store.JobStore`, progress comes straight from
the pipeline's own :class:`~repro.runtime.Instrumentation` events (no
second bookkeeping path to drift), and cancellation is the runtime's
cooperative :class:`~repro.runtime.CancellationToken`, checked by the
:class:`~repro.runtime.runner.PipelineRunner` between stages.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from .models import JobState
from .store import JobStore
from .stream import FrameQueue, StreamIdleTimeout
from ..errors import CancelledError, ReproError
from ..perf.pool import WorkerPool
from ..runtime import CancellationToken, Instrumentation
from ..runtime.instrumentation import SpanEvent
from ..serialization import analysis_payload


class JobProgressSink:
    """Instrumentation sink that mirrors stage events into a job record.

    The runner emits a ``runtime/stage_start`` event before each stage
    and a span for each finished one; this sink translates exactly
    those two signals into the job's ``progress`` block.
    """

    __slots__ = ("_store", "_job_id", "_stages")

    def __init__(
        self, store: JobStore, job_id: str, stage_names: tuple[str, ...]
    ) -> None:
        self._store = store
        self._job_id = job_id
        self._stages = set(stage_names)

    def emit(self, event: SpanEvent) -> None:
        if event.kind == "event" and event.name == "runtime/stage_start":
            stage = event.field_dict().get("stage")
            if stage in self._stages:
                self._store.update_progress(self._job_id, current_stage=stage)
        elif event.kind == "span" and event.name in self._stages:
            self._store.update_progress(
                self._job_id, completed_stage=event.name
            )


class JobWorkerPool:
    """Executes jobs on a shared :class:`~repro.perf.pool.WorkerPool`.

    Holds one :class:`CancellationToken` per in-flight job so
    ``DELETE /v1/jobs/{id}`` can interrupt the run between pipeline
    stages without poisoning the pool: the worker catches the resulting
    :class:`~repro.errors.CancelledError`, records the terminal state,
    and returns its thread to the pool clean.
    """

    def __init__(
        self,
        pool: WorkerPool,
        store: JobStore,
        metrics: Any | None = None,
        serializer: Callable[[Any], dict[str, Any]] = analysis_payload,
        breaker: Any | None = None,
    ) -> None:
        self._pool = pool
        self._store = store
        self._metrics = metrics
        self._serializer = serializer
        self._breaker = breaker
        self._lock = threading.Lock()
        self._tokens: dict[str, CancellationToken] = {}
        self._reaped: set[str] = set()  # watchdog-reaped, thread zombie
        self.watchdog_timeouts = 0  # lifetime reaps (metrics)

    def submit(
        self,
        job_id: str,
        analyzer: Any,
        video: Any,
        annotation: Any = None,
        seed: int = 0,
        checkpointer: Any = None,
    ) -> None:
        """Queue one job; returns immediately."""
        token = CancellationToken()
        with self._lock:
            self._tokens[job_id] = token
        self._pool.submit(
            self._run,
            job_id,
            analyzer,
            video,
            annotation,
            seed,
            token,
            checkpointer,
        )

    def submit_stream(
        self,
        job_id: str,
        analyzer: Any,
        frames: FrameQueue,
        annotation: Any = None,
        seed: int = 0,
        idle_timeout: float = 30.0,
        checkpointer: Any = None,
        replay: list[Any] | None = None,
        replay_eof: bool = False,
    ) -> None:
        """Queue one streaming job fed by ``frames``; returns immediately.

        ``replay`` (recovery) is a list of frames spooled before a
        restart: they are pushed through the stream first — rebuilding
        the received-frame count and the background-model state — and
        the queue is drained after.  ``replay_eof`` means the producer
        already signalled end-of-frames, so the job finishes from the
        replay alone, no client required.
        """
        token = CancellationToken()
        with self._lock:
            self._tokens[job_id] = token
        self._pool.submit(
            self._run_stream,
            job_id,
            analyzer,
            frames,
            annotation,
            seed,
            idle_timeout,
            token,
            checkpointer,
            replay,
            replay_eof,
        )

    def cancel(self, job_id: str) -> None:
        """Trip the job's token (no-op when it already finished)."""
        with self._lock:
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel()

    def active(self) -> int:
        """Jobs currently holding a cancellation token."""
        with self._lock:
            return len(self._tokens)

    def reap_overdue(self, deadline_seconds: float) -> list[str]:
        """Fail every running job older than the soft deadline.

        The watchdog's one move: the job is finished as ``failed``
        (``WatchdogTimeout`` + diagnostics), its token is tripped in
        case the wedged stage eventually yields, and the pool grows a
        replacement slot — shrunk back by the job's ``finally`` block
        when the zombie thread exits, so no slot ever leaks.
        """
        now = self._store.clock()
        reaped: list[str] = []
        for job_id, started_at, stage in self._store.running_jobs():
            elapsed = now - started_at
            if elapsed < deadline_seconds:
                continue
            with self._lock:
                token = self._tokens.get(job_id)
                if token is None or job_id in self._reaped:
                    continue
            applied = self._store.finish(
                job_id,
                JobState.FAILED,
                error={
                    "type": "WatchdogTimeout",
                    "message": (
                        f"job exceeded its {deadline_seconds:g}s soft "
                        "deadline and was reaped by the watchdog"
                    ),
                    "detail": {
                        "elapsed_seconds": round(elapsed, 3),
                        "current_stage": stage,
                    },
                },
            )
            if not applied:  # finished cleanly in the meantime
                continue
            token.cancel()
            with self._lock:
                self._reaped.add(job_id)
            self._pool.reclaim_slot()
            self.watchdog_timeouts += 1
            self._report_outcome(job_id, success=False)
            reaped.append(job_id)
        return reaped

    def _report_outcome(self, job_id: str, success: bool) -> None:
        """Feed the circuit breaker (keyed on the job's config hash)."""
        if self._breaker is None:
            return
        payload = self._store.payload(job_id)
        key = (payload or {}).get("config_hash") or ""
        if success:
            self._breaker.record_success(key)
        else:
            self._breaker.record_failure(key)

    def _release(self, job_id: str) -> None:
        """Common exit: drop the token, shrink a reclaimed slot."""
        with self._lock:
            self._tokens.pop(job_id, None)
            was_reaped = job_id in self._reaped
            self._reaped.discard(job_id)
        if was_reaped:
            self._pool.release_reclaimed()

    def _cleanup_state(self, job_id: str, checkpointer: Any) -> None:
        """Drop a terminal job's checkpoint + spool (crash state only
        matters for jobs that still have work left)."""
        if checkpointer is None:
            return
        payload = self._store.payload(job_id)
        if payload is not None and payload["state"] not in JobState.TERMINAL:
            return
        try:
            from ..resilience.checkpoint import clear_spool

            checkpointer.clear()
            clear_spool(checkpointer.directory.parent, job_id)
        except Exception:  # cleanup must never poison the pool thread
            pass

    # ------------------------------------------------------------------
    def _run(
        self,
        job_id: str,
        analyzer: Any,
        video: Any,
        annotation: Any,
        seed: int,
        token: CancellationToken,
        checkpointer: Any = None,
    ) -> None:
        store = self._store
        try:
            # A cancel that landed while the job sat in the queue is
            # honoured without ever starting the pipeline.
            if store.cancel_requested(job_id):
                token.cancel()
            stage_names = tuple(getattr(analyzer, "STAGES", ()))
            if not store.mark_running(job_id, total_stages=len(stage_names)):
                return  # cancelled pre-start or evicted
            if token.cancelled:
                store.finish(
                    job_id,
                    JobState.CANCELLED,
                    error={
                        "type": "CancelledError",
                        "message": "job cancelled before it started",
                    },
                )
                return
            instrumentation = Instrumentation(
                sink=JobProgressSink(store, job_id, stage_names)
            )
            # Stub analyzers (tests) keep their narrower signature; the
            # checkpointer kwarg is only threaded when one exists.
            extra = {"checkpointer": checkpointer} if checkpointer else {}
            analysis = analyzer.analyze(
                video,
                annotation=annotation,
                rng=np.random.default_rng(seed),
                instrumentation=instrumentation,
                cancel_token=token,
                **extra,
            )
            if self._metrics is not None and hasattr(analysis, "trace"):
                self._metrics.observe_trace(analysis.trace)
            result = self._serializer(analysis)
            if store.finish(
                job_id,
                JobState.SUCCEEDED,
                result=result,
                degraded=bool(result.get("degraded", False)),
                degradation=result.get("degradation"),
            ):
                self._report_outcome(job_id, success=True)
        except CancelledError as exc:
            store.finish(
                job_id,
                JobState.CANCELLED,
                error={"type": "CancelledError", "message": str(exc)},
            )
        except ReproError as exc:
            if store.finish(
                job_id,
                JobState.FAILED,
                error={"type": type(exc).__name__, "message": str(exc)},
            ):
                self._report_outcome(job_id, success=False)
        except BaseException as exc:  # the pool thread must survive
            if store.finish(
                job_id,
                JobState.FAILED,
                error={"type": "InternalError", "message": str(exc)},
            ):
                self._report_outcome(job_id, success=False)
        finally:
            self._cleanup_state(job_id, checkpointer)
            self._release(job_id)

    @staticmethod
    def _stream_progress(update: Any) -> dict[str, Any]:
        """The job payload's ``provisional`` block for one frame update."""
        return {
            "frames_seen": update.frames_seen,
            "phase": update.phase,
            "pose_box": (
                list(update.pose_box) if update.pose_box is not None else None
            ),
            "estimate": (
                update.provisional.to_dict()
                if update.provisional is not None
                else None
            ),
        }

    def _run_stream(
        self,
        job_id: str,
        analyzer: Any,
        frames: FrameQueue,
        annotation: Any,
        seed: int,
        idle_timeout: float,
        token: CancellationToken,
        checkpointer: Any = None,
        replay: list[Any] | None = None,
        replay_eof: bool = False,
    ) -> None:
        """Drain the frame queue through a streaming analyzer.

        Mirrors :meth:`_run`'s lifecycle and error mapping; the extra
        exits are :class:`StreamIdleTimeout` (no frame and no eof →
        ``failed``, never a leaked pool slot) and a queue closed by
        cancellation (the token raises on the next push or at finish).
        """
        store = self._store
        try:
            if store.cancel_requested(job_id):
                token.cancel()
            stage_names = tuple(getattr(analyzer, "STAGES", ()))
            if not store.mark_running(job_id, total_stages=len(stage_names)):
                return  # cancelled pre-start or evicted
            if token.cancelled:
                store.finish(
                    job_id,
                    JobState.CANCELLED,
                    error={
                        "type": "CancelledError",
                        "message": "job cancelled before it started",
                    },
                )
                return
            instrumentation = Instrumentation(
                sink=JobProgressSink(store, job_id, stage_names)
            )
            extra = {"checkpointer": checkpointer} if checkpointer else {}
            stream = analyzer.open_stream(
                annotation=annotation,
                rng=np.random.default_rng(seed),
                instrumentation=instrumentation,
                cancel_token=token,
                **extra,
            )
            # Recovery replay: frames spooled before a restart rebuild
            # the stream (received count, background model) before any
            # newly pushed ones are consumed.
            for frame in replay or ():
                update = stream.push_frame(frame)
                store.record_frames(job_id, 1)
                store.set_provisional(job_id, self._stream_progress(update))
            if replay_eof:
                store.mark_eof(job_id)
            else:
                while True:
                    frame = frames.get(timeout=idle_timeout)
                    if frame is None:  # eof (or a cancel closed the queue)
                        break
                    update = stream.push_frame(frame)
                    store.set_provisional(
                        job_id, self._stream_progress(update)
                    )
            token.raise_if_cancelled("finish")
            analysis = stream.finish()
            if self._metrics is not None and hasattr(analysis, "trace"):
                self._metrics.observe_trace(analysis.trace)
            result = self._serializer(analysis)
            if store.finish(
                job_id,
                JobState.SUCCEEDED,
                result=result,
                degraded=bool(result.get("degraded", False)),
                degradation=result.get("degradation"),
            ):
                self._report_outcome(job_id, success=True)
        except StreamIdleTimeout as exc:
            if store.finish(
                job_id,
                JobState.FAILED,
                error={"type": "StreamIdleTimeout", "message": str(exc)},
            ):
                self._report_outcome(job_id, success=False)
        except CancelledError as exc:
            store.finish(
                job_id,
                JobState.CANCELLED,
                error={"type": "CancelledError", "message": str(exc)},
            )
        except ReproError as exc:
            if store.finish(
                job_id,
                JobState.FAILED,
                error={"type": type(exc).__name__, "message": str(exc)},
            ):
                self._report_outcome(job_id, success=False)
        except BaseException as exc:  # the pool thread must survive
            if store.finish(
                job_id,
                JobState.FAILED,
                error={"type": "InternalError", "message": str(exc)},
            ):
                self._report_outcome(job_id, success=False)
        finally:
            frames.close()  # further pushes answer "stream closed"
            self._cleanup_state(job_id, checkpointer)
            self._release(job_id)
