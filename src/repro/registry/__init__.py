"""String-keyed component registries (see :mod:`repro.registry.core`).

Domain registries live next to their components:

* :data:`repro.ga.strategies.SEARCH_STRATEGIES` — pose-search
  strategies selectable via ``tracker.strategy``;
* :data:`repro.segmentation.pipeline.SEGMENTATION_STEPS` — per-frame
  segmentation sub-steps selectable via ``segmentation.steps``.
"""

from .core import Registry

__all__ = ["Registry"]
