"""A minimal string-keyed component registry.

Components (search strategies, segmentation steps, …) register
themselves under a stable name; configuration then selects them *by
name* (``tracker.strategy="hill_climb"``) instead of by import path,
so call sites never change when an implementation is swapped.  Lookup
failures list every known name — a registry is only useful when its
error messages teach the valid vocabulary.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


class Registry(Generic[T]):
    """A named mapping from string keys to components.

    ``kind`` names what the registry holds ("search strategy",
    "segmentation step") and prefixes every error message.  Duplicate
    registrations are rejected outright — silently replacing a
    component under an existing name is how two modules end up fighting
    over the same key.
    """

    __slots__ = ("kind", "_components")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._components: dict[str, T] = {}

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator: register the decorated object under ``name``.

        ::

            @SEARCH_STRATEGIES.register("hill_climb")
            def _hill_climb(request): ...
        """

        def wrap(component: T) -> T:
            self.add(name, component)
            return component

        return wrap

    def add(self, name: str, component: T) -> None:
        """Register ``component`` under ``name`` (duplicates rejected)."""
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"{self.kind} names must be non-empty strings, got {name!r}"
            )
        if name in self._components:
            raise ConfigurationError(
                f"duplicate {self.kind} name {name!r}; "
                f"already registered: {', '.join(self.names())}"
            )
        self._components[name] = component

    def get(self, name: str) -> T:
        """Look a component up; unknown names list the valid ones."""
        try:
            return self._components[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none registered>"
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; choose from: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._components)

    def __contains__(self, name: object) -> bool:
        return name in self._components

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self._components)})"
