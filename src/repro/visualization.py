"""Rendering of analysis results as images — no plotting library needed.

Everything is rasterised through :mod:`repro.imaging.draw`:

* :func:`draw_pose_overlay` — a stick model drawn over a frame or mask;
* :func:`analysis_strip` — a Fig. 6/7-style horizontal strip of frames
  with tracked (and optionally ground-truth) skeletons;
* :func:`angle_chart` — a line chart of one or more angle tracks
  (degrees over frames) as an RGB image;
* :func:`segmentation_panel` — the Fig. 2 stage masks side by side.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import ImageError
from .imaging.draw import draw_capsule, draw_line, paint_mask, stick_figure_mask
from .imaging.image import blank_rgb, ensure_mask, ensure_rgb
from .model.geometry import world_to_image
from .model.pose import StickPose
from .model.sticks import BodyDimensions


def draw_pose_overlay(
    image: np.ndarray,
    pose: StickPose,
    dims: BodyDimensions,
    color: tuple[float, float, float] = (1.0, 0.25, 0.25),
    thickness: float = 1.5,
    joint_radius: float = 1.2,
) -> np.ndarray:
    """Draw a stick model over an RGB image (modified copy returned)."""
    canvas = ensure_rgb(image).copy()
    height = canvas.shape[0]
    segments = pose.segments(dims)
    seglist = [
        (
            tuple(world_to_image(segment[0], height)),
            tuple(world_to_image(segment[1], height)),
        )
        for segment in segments
    ]
    sticks = stick_figure_mask(canvas.shape[:2], seglist, thickness=thickness)
    paint_mask(canvas, sticks, color)
    if joint_radius > 0:
        joints = np.zeros(canvas.shape[:2], dtype=bool)
        for start, end in seglist:
            draw_capsule(joints, start, start, joint_radius)
            draw_capsule(joints, end, end, joint_radius)
        paint_mask(canvas, joints, (1.0, 0.85, 0.2))
    return canvas


def mask_to_rgb(mask: np.ndarray, level: float = 0.65) -> np.ndarray:
    """A boolean mask as a gray RGB image."""
    mask = ensure_mask(mask)
    return np.stack([mask.astype(np.float64) * level] * 3, axis=-1)


def analysis_strip(
    backgrounds: Sequence[np.ndarray],
    poses: Sequence[StickPose],
    dims: BodyDimensions,
    truth: Sequence[StickPose] | None = None,
    frame_indices: Sequence[int] | None = None,
) -> np.ndarray:
    """Horizontal strip of frames with skeleton overlays (Fig. 6/7 style).

    ``backgrounds`` may be RGB frames or boolean silhouettes.  When
    ``truth`` poses are given they are drawn in green under the tracked
    (red) model.
    """
    if len(backgrounds) != len(poses):
        raise ImageError(
            f"{len(backgrounds)} backgrounds for {len(poses)} poses"
        )
    indices = list(frame_indices) if frame_indices is not None else list(range(len(poses)))
    tiles = []
    for index in indices:
        base = backgrounds[index]
        canvas = (
            mask_to_rgb(base)
            if np.asarray(base).ndim == 2
            else ensure_rgb(base).copy() * 0.85
        )
        if truth is not None:
            canvas = draw_pose_overlay(
                canvas, truth[index], dims, color=(0.2, 0.9, 0.3),
                thickness=1.0, joint_radius=0.0,
            )
        canvas = draw_pose_overlay(canvas, poses[index], dims)
        tiles.append(canvas)
    return np.concatenate(tiles, axis=1)


def segmentation_panel(stages: dict[str, np.ndarray]) -> np.ndarray:
    """The Fig. 2-style stage masks concatenated horizontally."""
    if not stages:
        raise ImageError("no stages to render")
    return np.concatenate([mask_to_rgb(mask) for mask in stages.values()], axis=1)


_CHART_COLORS = (
    (0.85, 0.30, 0.25),
    (0.25, 0.50, 0.85),
    (0.25, 0.70, 0.35),
    (0.80, 0.65, 0.20),
    (0.60, 0.35, 0.75),
    (0.25, 0.70, 0.70),
    (0.55, 0.55, 0.55),
    (0.85, 0.45, 0.65),
)


def angle_chart(
    tracks: dict[str, np.ndarray],
    height: int = 160,
    width: int = 320,
    y_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Line chart of angle tracks as an RGB image.

    ``tracks`` maps a label to a 1-D array (degrees per frame).  A
    legend swatch is drawn in the top-left corner, one row per track.
    """
    if not tracks:
        raise ImageError("no tracks to chart")
    arrays = {name: np.asarray(values, dtype=np.float64) for name, values in tracks.items()}
    length = max(a.size for a in arrays.values())
    if length < 2:
        raise ImageError("tracks need at least two samples")

    lo = min(float(a.min()) for a in arrays.values())
    hi = max(float(a.max()) for a in arrays.values())
    if y_range is not None:
        lo, hi = y_range
    span = (hi - lo) or 1.0
    margin = 6

    image = blank_rgb(height, width, (0.97, 0.97, 0.97))
    # Horizontal gridlines every 45 degrees.
    grid_mask = np.zeros((height, width), dtype=bool)
    first_line = np.ceil(lo / 45.0) * 45.0
    for level in np.arange(first_line, hi + 1e-9, 45.0):
        row = (height - 1 - margin) - (level - lo) / span * (height - 2 * margin)
        draw_line(grid_mask, (row, 0), (row, width - 1), thickness=1.0)
    paint_mask(image, grid_mask, (0.85, 0.85, 0.85))

    for track_index, (name, values) in enumerate(arrays.items()):
        color = _CHART_COLORS[track_index % len(_CHART_COLORS)]
        mask = np.zeros((height, width), dtype=bool)
        xs = np.linspace(margin, width - 1 - margin, values.size)
        rows = (height - 1 - margin) - (values - lo) / span * (height - 2 * margin)
        for i in range(values.size - 1):
            draw_line(mask, (rows[i], xs[i]), (rows[i + 1], xs[i + 1]), thickness=1.4)
        # legend swatch
        draw_line(
            mask,
            (4 + 6 * track_index, 4),
            (4 + 6 * track_index, 14),
            thickness=2.5,
        )
        paint_mask(image, mask, color)
    return image
