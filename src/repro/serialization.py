"""JSON serialisation of analyses, reports and annotations.

The paper's future work is a web service ("the user will be able to
upload a video sequence ... the system will respond with advices"), so
every user-facing artefact needs a wire format: scoring reports, pose
tracks, and first-frame annotations all round-trip through plain JSON
dictionaries here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .errors import ReproError
from .model.annotation import FirstFrameAnnotation
from .model.pose import StickPose
from .model.sticks import BodyDimensions
from .scoring.report import JumpReport
from .scoring.phases import StageWindows
from .scoring.rules import RULES
from .scoring.standards import ADVICE, Standard


# ----------------------------------------------------------------------
# Poses
# ----------------------------------------------------------------------
def pose_to_dict(pose: StickPose) -> dict[str, Any]:
    """Serialise a pose."""
    return {
        "x0": pose.x0,
        "y0": pose.y0,
        "angles_deg": list(pose.angles_deg),
    }


def pose_from_dict(data: dict[str, Any]) -> StickPose:
    """Deserialise a pose."""
    try:
        return StickPose(
            x0=float(data["x0"]),
            y0=float(data["y0"]),
            angles_deg=tuple(float(a) for a in data["angles_deg"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed pose payload: {exc}") from exc


# ----------------------------------------------------------------------
# Annotations (pose + body dimensions)
# ----------------------------------------------------------------------
def annotation_to_dict(annotation: FirstFrameAnnotation) -> dict[str, Any]:
    """Serialise a first-frame annotation."""
    return {
        "pose": pose_to_dict(annotation.pose),
        "lengths": list(annotation.dims.lengths),
        "thicknesses": list(annotation.dims.thicknesses),
    }


def annotation_from_dict(data: dict[str, Any]) -> FirstFrameAnnotation:
    """Deserialise a first-frame annotation."""
    try:
        dims = BodyDimensions(
            lengths=tuple(float(v) for v in data["lengths"]),
            thicknesses=tuple(float(v) for v in data["thicknesses"]),
        )
        return FirstFrameAnnotation(pose=pose_from_dict(data["pose"]), dims=dims)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed annotation payload: {exc}") from exc


def save_annotation(path: str | Path, annotation: FirstFrameAnnotation) -> None:
    """Write an annotation to a JSON file."""
    Path(path).write_text(json.dumps(annotation_to_dict(annotation), indent=2))


def load_annotation(path: str | Path) -> FirstFrameAnnotation:
    """Read an annotation written by :func:`save_annotation`."""
    return annotation_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def report_to_dict(report: JumpReport) -> dict[str, Any]:
    """Serialise a scoring report (one entry per rule + advice)."""
    return {
        "score": report.score,
        "profile": report.profile,
        "windows": {
            "initiation": list(report.windows.initiation),
            "air_landing": list(report.windows.air_landing),
        },
        "rules": [
            {
                "rule": result.rule.rule_id,
                "standard": result.rule.standard.name,
                "description": result.rule.standard.description,
                "expression": result.rule.expression,
                "value_deg": result.value,
                "threshold_deg": result.rule.threshold,
                "passed": result.passed,
                "margin_deg": result.margin,
                "decisive_frame": result.decisive_frame,
            }
            for result in report.results
        ],
        "violated_standards": [s.name for s in report.violated_standards],
        "advice": report.advice(),
    }


def report_from_dict(data: dict[str, Any]) -> JumpReport:
    """Deserialise a scoring report.

    Rule objects are resolved from the report's movement profile
    (Table 2 for the default ``standing_long_jump``; payloads written
    before profiles existed carry no ``"profile"`` key and resolve the
    same way).
    """
    from .profiles import get_profile
    from .scoring.rules import RuleResult

    try:
        profile_name = str(data.get("profile", "standing_long_jump"))
        rules = (
            RULES
            if profile_name == "standing_long_jump"
            else get_profile(profile_name).rules
        )
        windows = StageWindows(
            initiation=tuple(data["windows"]["initiation"]),
            air_landing=tuple(data["windows"]["air_landing"]),
        )
        by_id = {rule.rule_id: rule for rule in rules}
        results = tuple(
            RuleResult(
                rule=by_id[entry["rule"]],
                value=float(entry["value_deg"]),
                passed=bool(entry["passed"]),
                margin=float(entry["margin_deg"]),
                decisive_frame=int(entry["decisive_frame"]),
            )
            for entry in data["rules"]
        )
        return JumpReport(
            results=results, windows=windows, profile=profile_name
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed report payload: {exc}") from exc


def _events_dict(events) -> dict[str, Any]:
    return {
        "takeoff_frame": events.takeoff_frame,
        "landing_frame": events.landing_frame,
        "peak_frame": events.peak_frame,
        "ground_height": events.ground_height,
    }


def _measurement_dict(measurement) -> dict[str, Any]:
    return {
        "distance_px": measurement.distance,
        "relative_to_stature": measurement.relative_to_stature,
        "takeoff_line_x": measurement.takeoff_line_x,
        "landing_heel_x": measurement.landing_heel_x,
        "landing_frame": measurement.landing_frame,
    }


def track_to_dict(track) -> dict[str, Any]:
    """Serialise one :class:`~repro.tracking.TrackAnalysis`.

    The same per-actor shape the top-level analysis fields use, plus
    the track's identity, lifecycle outcome and health summary.
    """
    return {
        "track_id": track.track_id,
        "state": track.state,
        "start_frame": track.start_frame,
        "frames": track.frames,
        "poses": [pose_to_dict(pose) for pose in track.poses],
        "events": _events_dict(track.events),
        "report": report_to_dict(track.report),
        "measurement": _measurement_dict(track.measurement),
        "annotation": annotation_to_dict(track.annotation),
        "health": {
            "degraded": track.degraded,
            "summary": track.health_summary(),
            "unhealthy_frames": track.tracking.unhealthy_frames(),
            "flagged_frames": track.tracking.flagged_frames(),
        },
    }


def _tracks_list(analysis) -> list[dict[str, Any]]:
    """The per-track report array: real tracks, or a synthesised one.

    On the classic single-jumper path (``analysis.tracks`` empty) the
    top-level fields are repackaged as one ``t0`` entry so every
    consumer sees the same ``tracks`` shape regardless of mode.
    """
    tracks = getattr(analysis, "tracks", ())
    if tracks:
        return [track_to_dict(track) for track in tracks]
    diagnostics = analysis.diagnostics
    return [
        {
            "track_id": "t0",
            "state": "confirmed",
            "start_frame": 0,
            "frames": len(analysis.poses),
            "poses": [pose_to_dict(pose) for pose in analysis.poses],
            "events": _events_dict(analysis.events),
            "report": report_to_dict(analysis.report),
            "measurement": _measurement_dict(analysis.measurement),
            "annotation": annotation_to_dict(analysis.annotation),
            "health": {
                "degraded": bool(diagnostics.get("degraded")),
                "summary": dict(diagnostics.get("health_summary", {})),
                "unhealthy_frames": list(
                    diagnostics.get("unhealthy_frames", [])
                ),
                "flagged_frames": list(diagnostics.get("flagged_frames", [])),
            },
        }
    ]


def attempt_to_dict(attempt) -> dict[str, Any]:
    """Serialise one :class:`~repro.pipeline.AttemptAnalysis`.

    The per-attempt shape mirrors the top-level analysis fields (the
    ``tracks`` pattern): window placement on the source clip, then the
    attempt's own report/events/measurement with frame indices
    *relative to the window*.
    """
    return {
        "attempt_id": attempt.attempt_id,
        "window": attempt.window.to_dict(),
        "primary": attempt.primary,
        "report": report_to_dict(attempt.analysis.report),
        "events": _events_dict(attempt.analysis.events),
        "measurement": _measurement_dict(attempt.analysis.measurement),
        "degraded": attempt.analysis.degraded,
    }


def _attempts_list(analysis) -> list[dict[str, Any]]:
    """The per-attempt array: real attempts, or a synthesised one.

    Mirrors ``tracks``: when localisation did not run (classic
    whole-clip path) the top-level fields are repackaged as one ``a0``
    entry spanning the full clip, so consumers see the same
    ``attempts`` shape regardless of mode.  A localised run that found
    nothing serialises as an empty array.
    """
    attempts = getattr(analysis, "attempts", ())
    if attempts:
        return [attempt_to_dict(attempt) for attempt in attempts]
    if getattr(analysis, "localization", None) is not None:
        return []  # localisation ran and found no attempts
    num_frames = len(analysis.poses)
    return [
        {
            "attempt_id": "a0",
            "window": {
                "start": 0,
                "end": num_frames,
                "frames": num_frames,
                "confidence": 1.0,
            },
            "primary": True,
            "report": report_to_dict(analysis.report),
            "events": _events_dict(analysis.events),
            "measurement": _measurement_dict(analysis.measurement),
            "degraded": analysis.degraded,
        }
    ]


def _localization_dict(analysis) -> dict[str, Any]:
    result = getattr(analysis, "localization", None)
    if result is None:
        return {"enabled": False}
    return result.to_dict()


def analysis_to_dict(analysis) -> dict[str, Any]:
    """Serialise the full outcome of :meth:`JumpAnalyzer.analyze`.

    Masks and frames are intentionally excluded (they are bulky and
    reproducible); the payload carries everything a client needs to
    render feedback, plus the fully-resolved configuration and its
    stable hash, so any report is reproducible from its own output
    (``slj analyze --config report.json``).

    ``tracks`` is always present: the per-actor report array on the
    multi-actor path, and a single synthesised entry mirroring the
    top-level fields on the classic path (see ``docs/tracking.md``).
    ``attempts`` and ``localization`` follow the same pattern for the
    temporal-localisation path: real per-window entries when
    localisation ran, a synthesised full-clip ``a0`` entry otherwise
    (see ``docs/profiles.md``).
    """
    return {
        "config": dict(analysis.config),
        "config_hash": analysis.config_hash,
        "report": report_to_dict(analysis.report),
        "poses": [pose_to_dict(pose) for pose in analysis.poses],
        "events": _events_dict(analysis.events),
        "measurement": _measurement_dict(analysis.measurement),
        "annotation": annotation_to_dict(analysis.annotation),
        "tracks": _tracks_list(analysis),
        "attempts": _attempts_list(analysis),
        "localization": _localization_dict(analysis),
        "trace": analysis.trace.to_dict(),
        "diagnostics": dict(analysis.diagnostics),
    }


def analysis_payload(analysis) -> dict[str, Any]:
    """The one wire format for a finished analysis.

    :func:`analysis_to_dict` plus the degradation summary: a top-level
    ``"degraded"`` flag and, when set, a ``"degradation"`` block naming
    the unhealthy frames and fallback stages.  The HTTP service, the
    async job results and the CLI ``--json`` output all emit exactly
    this shape, so a payload can be moved between them freely.
    """
    payload = analysis_to_dict(analysis)
    payload["degraded"] = analysis.degraded
    if analysis.degraded:
        diagnostics = analysis.diagnostics
        payload["degradation"] = {
            "unhealthy_frames": list(diagnostics.get("unhealthy_frames", [])),
            "flagged_frames": list(diagnostics.get("flagged_frames", [])),
            "degraded_stages": list(diagnostics.get("degraded_stages", [])),
        }
    return payload


def write_analysis_json(path: str | Path, analysis) -> None:
    """Write one analysis as indented JSON (CLI ``--json``)."""
    Path(path).write_text(json.dumps(analysis_payload(analysis), indent=2))


def standards_payload() -> dict[str, Any]:
    """The Table 1 standards and Table 2 rules as one JSON document.

    Served by ``GET /v1/standards`` and reusable by any client that
    wants to render explanations offline.
    """
    return {
        "standards": [
            {
                "name": standard.name,
                "stage": standard.stage,
                "description": standard.description,
                "advice": ADVICE[standard],
            }
            for standard in Standard
        ],
        "rules": [
            {
                "rule": rule.rule_id,
                "standard": rule.standard.name,
                "expression": rule.expression,
                "threshold_deg": rule.threshold,
                "direction": "greater" if rule.greater else "less",
            }
            for rule in RULES
        ],
    }


def profiles_payload() -> dict[str, Any]:
    """Every registered movement profile as one JSON document.

    Served by ``GET /v1/profiles``: each profile's identity plus its
    full standards/rules tables in the :func:`standards_payload`
    shape, so a client can render scoring explanations for any
    movement, not just the jump.
    """
    from .profiles import MOVEMENT_PROFILES

    profiles = []
    for name in MOVEMENT_PROFILES.names():
        profile = MOVEMENT_PROFILES.get(name)
        profiles.append(
            {
                "name": profile.name,
                "title": profile.title,
                "description": profile.description,
                "distance_label": profile.distance_label,
                "standards": [
                    {
                        "name": standard.name,
                        "stage": standard.stage,
                        "description": standard.description,
                        "advice": profile.advice[standard],
                    }
                    for standard in profile.standards
                ],
                "rules": [
                    {
                        "rule": rule.rule_id,
                        "standard": rule.standard.name,
                        "expression": rule.expression,
                        "threshold_deg": rule.threshold,
                        "direction": "greater" if rule.greater else "less",
                    }
                    for rule in profile.rules
                ],
            }
        )
    return {"profiles": profiles}
