"""The :class:`Stage` protocol and adapters.

A stage is the unit the :class:`~repro.runtime.runner.PipelineRunner`
composes: a named transform ``value -> value`` that may read and write
shared artifacts on the :class:`StageContext` and emit observations
through the run's :class:`~repro.runtime.instrumentation.Instrumentation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from .cancellation import CancellationToken
from .instrumentation import Instrumentation
from ..errors import ConfigurationError


@dataclass(slots=True)
class StageContext:
    """Mutable blackboard shared by the stages of one run.

    ``artifacts`` carries intermediate products that are not part of
    the main value flow (e.g. the estimated background next to the
    silhouette stream); ``instrumentation`` is the run's collector;
    ``metadata`` holds run-level provenance (config dict + hash) that
    the runner copies onto the resulting
    :class:`~repro.runtime.trace.RunTrace`; ``cancel_token`` (when
    set) lets the runner abort the run cooperatively between stages
    (see :mod:`repro.runtime.cancellation`).
    """

    instrumentation: Instrumentation = field(default_factory=Instrumentation)
    artifacts: dict[str, Any] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)
    cancel_token: "CancellationToken | None" = None

    def require(self, key: str) -> Any:
        """Fetch an artifact an upstream stage must have produced."""
        try:
            return self.artifacts[key]
        except KeyError:
            raise ConfigurationError(
                f"stage requires artifact {key!r} which no upstream stage "
                f"produced (have: {sorted(self.artifacts)})"
            ) from None


@runtime_checkable
class Stage(Protocol):
    """A named pipeline step: ``run(value, context) -> value``."""

    name: str

    def run(self, value: Any, context: StageContext) -> Any:
        """Transform ``value``, optionally using/extending the context."""
        ...


class FunctionStage:
    """Adapt a plain callable ``(value, context) -> value`` to a Stage."""

    __slots__ = ("name", "_fn")

    def __init__(
        self, name: str, fn: Callable[[Any, StageContext], Any]
    ) -> None:
        if not name:
            raise ConfigurationError("a stage needs a non-empty name")
        self.name = name
        self._fn = fn

    def run(self, value: Any, context: StageContext) -> Any:
        return self._fn(value, context)

    def __repr__(self) -> str:
        return f"FunctionStage({self.name!r})"


def stage(
    name: str,
) -> Callable[[Callable[[Any, StageContext], Any]], FunctionStage]:
    """Decorator form of :class:`FunctionStage`::

        @stage("scoring")
        def score(poses, ctx):
            ...
    """

    def wrap(fn: Callable[[Any, StageContext], Any]) -> FunctionStage:
        return FunctionStage(name, fn)

    return wrap
