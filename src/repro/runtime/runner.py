"""Compose stages into an observable pipeline.

:class:`PipelineRunner` is deliberately thin: it validates the stage
list once, then on every :meth:`~PipelineRunner.run` threads a value
through the stages in order, timing each one, and returns a
:class:`RunOutcome` carrying the final value, the populated
:class:`~repro.runtime.stage.StageContext`, and an immutable
:class:`~repro.runtime.trace.RunTrace`.  Every future caching,
batching or parallelism PR hooks in here, between stages, without the
stages noticing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from .instrumentation import Instrumentation
from .stage import Stage, StageContext
from .trace import RunTrace, StageTiming
from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """What one :meth:`PipelineRunner.run` produced."""

    value: Any
    trace: RunTrace
    context: StageContext


class PipelineRunner:
    """Run a fixed sequence of stages over an input value."""

    __slots__ = ("name", "_stages")

    def __init__(self, stages: Sequence[Stage], name: str = "pipeline") -> None:
        stages = tuple(stages)
        if not stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        for stage in stages:
            if not isinstance(getattr(stage, "name", None), str) or not callable(
                getattr(stage, "run", None)
            ):
                raise ConfigurationError(
                    f"{stage!r} does not implement the Stage protocol "
                    "(needs a 'name' string and a 'run' callable)"
                )
        names = [stage.name for stage in stages]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ConfigurationError(
                f"stage names must be unique, duplicated: {sorted(duplicates)}"
            )
        self.name = name
        self._stages = stages

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The composed stages, in execution order."""
        return self._stages

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Names of the composed stages, in execution order."""
        return tuple(stage.name for stage in self._stages)

    def run(
        self,
        value: Any,
        instrumentation: Instrumentation | None = None,
        context: StageContext | None = None,
    ) -> RunOutcome:
        """Thread ``value`` through every stage and trace the run.

        A fresh (silent) :class:`Instrumentation` is created when none
        is given; pass your own to choose a sink or to share one
        collector across layers.  ``context`` may be pre-seeded with
        artifacts the first stage needs.
        """
        if context is None:
            context = StageContext(
                instrumentation=instrumentation or Instrumentation()
            )
        elif instrumentation is not None:
            context.instrumentation = instrumentation
        inst = context.instrumentation

        stage_timings: list[StageTiming] = []
        run_start = time.perf_counter()
        for stage in self._stages:
            start = time.perf_counter()
            with inst.span(stage.name):
                value = stage.run(value, context)
            stage_timings.append(
                StageTiming(stage.name, time.perf_counter() - start)
            )
        total = time.perf_counter() - run_start

        trace = inst.trace(
            stages=tuple(stage_timings),
            total_seconds=total,
            metadata=context.metadata,
        )
        return RunOutcome(value=value, trace=trace, context=context)
