"""Compose stages into an observable pipeline.

:class:`PipelineRunner` is deliberately thin: it validates the stage
list once, then on every :meth:`~PipelineRunner.run` threads a value
through the stages in order, timing each one, and returns a
:class:`RunOutcome` carrying the final value, the populated
:class:`~repro.runtime.stage.StageContext`, and an immutable
:class:`~repro.runtime.trace.RunTrace`.  Every future caching,
batching or parallelism PR hooks in here, between stages, without the
stages noticing.

Stages may carry per-name :class:`~repro.runtime.policies.StagePolicy`
entries — a retry budget and/or a fallback substitute.  A run whose
stage completed through a fallback is marked *degraded* on its trace
instead of raising; without a policy (the default) failures propagate
exactly as before.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .instrumentation import Instrumentation
from .policies import StagePolicy
from .stage import Stage, StageContext
from .trace import RunTrace, StageTiming
from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """What one :meth:`PipelineRunner.run` produced."""

    value: Any
    trace: RunTrace
    context: StageContext


class PipelineRunner:
    """Run a fixed sequence of stages over an input value."""

    __slots__ = ("name", "_stages", "_policies")

    def __init__(
        self,
        stages: Sequence[Stage],
        name: str = "pipeline",
        policies: Mapping[str, StagePolicy] | None = None,
    ) -> None:
        stages = tuple(stages)
        if not stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        for stage in stages:
            if not isinstance(getattr(stage, "name", None), str) or not callable(
                getattr(stage, "run", None)
            ):
                raise ConfigurationError(
                    f"{stage!r} does not implement the Stage protocol "
                    "(needs a 'name' string and a 'run' callable)"
                )
        names = [stage.name for stage in stages]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ConfigurationError(
                f"stage names must be unique, duplicated: {sorted(duplicates)}"
            )
        policies = dict(policies or {})
        unknown = set(policies) - set(names)
        if unknown:
            raise ConfigurationError(
                f"policies reference unknown stage(s) {sorted(unknown)}; "
                f"stages are: {names}"
            )
        for key, policy in policies.items():
            if not isinstance(policy, StagePolicy):
                raise ConfigurationError(
                    f"policy for stage {key!r} must be a StagePolicy, "
                    f"got {type(policy).__name__}"
                )
        self.name = name
        self._stages = stages
        self._policies = policies

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The composed stages, in execution order."""
        return self._stages

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Names of the composed stages, in execution order."""
        return tuple(stage.name for stage in self._stages)

    @property
    def policies(self) -> dict[str, StagePolicy]:
        """The per-stage policies (a copy; empty when none attached)."""
        return dict(self._policies)

    def _run_stage(
        self,
        stage: Stage,
        value: Any,
        context: StageContext,
        inst: Instrumentation,
    ) -> tuple[Any, dict[str, str] | None]:
        """Run one stage under its policy.

        Returns ``(new_value, degradation)`` where ``degradation`` is
        ``None`` for a clean result and a small record when the value
        came from a fallback substitute.
        """
        policy = self._policies.get(stage.name)
        retry = policy.retry if policy is not None else None
        fallback = policy.fallback if policy is not None else None
        attempts = retry.max_attempts if retry is not None else 1
        retry_catch = retry.exceptions() if retry is not None else ()

        for attempt in range(1, attempts + 1):
            try:
                with inst.span(stage.name):
                    return stage.run(value, context), None
            except Exception as exc:
                if attempt < attempts and isinstance(exc, retry_catch):
                    inst.count("runtime.retries", 1)
                    inst.event(
                        "runtime/retry",
                        stage=stage.name,
                        attempt=attempt,
                        error=type(exc).__name__,
                    )
                    continue
                if fallback is not None and isinstance(
                    exc, fallback.exceptions()
                ):
                    substituted = fallback.produce(value, context)
                    inst.count("runtime.fallbacks", 1)
                    inst.event(
                        "runtime/fallback",
                        stage=stage.name,
                        error=type(exc).__name__,
                    )
                    return substituted, {
                        "stage": stage.name,
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                    }
                raise
        raise AssertionError("unreachable: retry loop exits via return/raise")

    def run(
        self,
        value: Any,
        instrumentation: Instrumentation | None = None,
        context: StageContext | None = None,
        start_after: str | None = None,
        checkpoint: Any = None,
    ) -> RunOutcome:
        """Thread ``value`` through every stage and trace the run.

        A fresh (silent) :class:`Instrumentation` is created when none
        is given; pass your own to choose a sink or to share one
        collector across layers.  ``context`` may be pre-seeded with
        artifacts the first stage needs.

        ``start_after`` resumes a previous run: stages up to and
        including the named one are skipped, so ``value`` and the
        pre-seeded ``context`` artifacts must be the restored outputs
        of that prefix (see :mod:`repro.resilience.checkpoint`).

        ``checkpoint`` is an optional callable invoked as
        ``checkpoint(stage_name, value, context)`` after each stage
        completes.  A checkpoint failure degrades (an event plus a
        counter) rather than killing the run — persistence is an aid,
        never a new failure mode.
        """
        if context is None:
            context = StageContext(
                instrumentation=instrumentation or Instrumentation()
            )
        elif instrumentation is not None:
            context.instrumentation = instrumentation
        inst = context.instrumentation

        names = self.stage_names
        if start_after is not None and start_after not in names:
            raise ConfigurationError(
                f"start_after names unknown stage {start_after!r}; "
                f"stages are: {list(names)}"
            )
        skipping = start_after is not None

        stage_timings: list[StageTiming] = []
        degradations: list[dict[str, str]] = []
        run_start = time.perf_counter()
        for stage in self._stages:
            if skipping:
                inst.event("runtime/stage_skipped", stage=stage.name)
                if stage.name == start_after:
                    skipping = False
                continue
            # Cooperative cancellation: checked at stage boundaries
            # only, outside the retry/fallback machinery, so a
            # cancelled run never half-applies a stage or triggers a
            # fallback substitute.
            if context.cancel_token is not None:
                context.cancel_token.raise_if_cancelled(stage.name)
            inst.event("runtime/stage_start", stage=stage.name)
            start = time.perf_counter()
            value, degradation = self._run_stage(stage, value, context, inst)
            if degradation is not None:
                degradations.append(degradation)
            stage_timings.append(
                StageTiming(stage.name, time.perf_counter() - start)
            )
            if checkpoint is not None:
                try:
                    checkpoint(stage.name, value, context)
                except Exception as exc:
                    inst.count("runtime.checkpoint_failures", 1)
                    inst.event(
                        "runtime/checkpoint_failed",
                        stage=stage.name,
                        error=type(exc).__name__,
                    )
        total = time.perf_counter() - run_start

        if degradations:
            context.metadata["degraded_stages"] = degradations
        trace = inst.trace(
            stages=tuple(stage_timings),
            total_seconds=total,
            metadata=context.metadata,
        )
        if degradations:
            trace = dataclasses.replace(
                trace,
                degraded=True,
                degraded_stages=tuple(d["stage"] for d in degradations),
            )
        return RunOutcome(value=value, trace=trace, context=context)
