"""Run traces: what one pipeline execution spent where.

A :class:`RunTrace` is the immutable record a :class:`~repro.runtime.runner.PipelineRunner`
returns next to its result: the ordered top-level stage timings, every
span recorded by the :class:`~repro.runtime.instrumentation.Instrumentation`
(including nested sub-stages such as ``segmentation/subtract``), and the
counters accumulated along the way (GA generations, fitness evaluations,
silhouette points, …).  The trace is what the CLI's ``--profile`` table
renders and what the service's ``/metrics`` endpoint aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class StageTiming:
    """Accumulated wall-clock time of one (possibly repeated) stage."""

    name: str
    seconds: float
    calls: int = 1

    @property
    def mean_seconds(self) -> float:
        """Average seconds per call."""
        return self.seconds / self.calls if self.calls else 0.0


@dataclass(frozen=True, slots=True)
class RunTrace:
    """Everything one pipeline run recorded about itself.

    ``stages`` holds the runner's top-level stages in execution order;
    ``timings`` holds every span (top-level stages plus sub-stages like
    ``tracking/frame``) in first-recorded order; ``counters`` maps
    counter names to accumulated values.
    """

    stages: tuple[StageTiming, ...]
    timings: tuple[StageTiming, ...] = ()
    counters: dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    # Run-level provenance (e.g. the resolved config dict and its hash,
    # seeded by JumpAnalyzer via the StageContext) — serialized with
    # the trace so every report records what produced it.
    metadata: dict[str, Any] = field(default_factory=dict)
    # True when any stage completed through a fallback policy instead
    # of its own result; ``degraded_stages`` names them (details — the
    # swallowed error per stage — live in ``metadata["degraded_stages"]``).
    degraded: bool = False
    degraded_stages: tuple[str, ...] = ()

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Top-level stage names in execution order."""
        return tuple(timing.name for timing in self.stages)

    def timing(self, name: str) -> StageTiming | None:
        """Look a span up by name (top-level stages first)."""
        for timing in self.stages:
            if timing.name == name:
                return timing
        for timing in self.timings:
            if timing.name == name:
                return timing
        return None

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one span, 0.0 when it never ran."""
        timing = self.timing(name)
        return timing.seconds if timing is not None else 0.0

    def counter(self, name: str, default: float = 0.0) -> float:
        """Accumulated value of one counter."""
        return self.counters.get(name, default)

    def render_table(self) -> str:
        """Human-readable per-stage timing table (``--profile``)."""
        rows = self.timings if self.timings else self.stages
        name_width = max([len("stage")] + [len(t.name) for t in rows])
        lines = [
            f"{'stage':<{name_width}}  {'calls':>6}  {'total':>10}  {'mean':>10}",
            "-" * (name_width + 32),
        ]
        for timing in rows:
            lines.append(
                f"{timing.name:<{name_width}}  {timing.calls:>6d}  "
                f"{timing.seconds:>9.4f}s  {timing.mean_seconds:>9.4f}s"
            )
        lines.append("-" * (name_width + 32))
        lines.append(
            f"{'total':<{name_width}}  {'':>6}  {self.total_seconds:>9.4f}s"
        )
        if self.counters:
            lines.append("")
            counter_width = max(len(name) for name in self.counters)
            for name, value in self.counters.items():
                rendered = f"{value:g}"
                lines.append(f"{name:<{counter_width}}  {rendered:>12}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the service payloads)."""
        return {
            "total_seconds": self.total_seconds,
            "stages": [
                {
                    "name": timing.name,
                    "seconds": timing.seconds,
                    "calls": timing.calls,
                }
                for timing in self.stages
            ],
            "timings": [
                {
                    "name": timing.name,
                    "seconds": timing.seconds,
                    "calls": timing.calls,
                }
                for timing in self.timings
            ],
            "counters": dict(self.counters),
            "metadata": dict(self.metadata),
            "degraded": self.degraded,
            "degraded_stages": list(self.degraded_stages),
        }
