"""Per-stage retry and fallback policies: degrade, don't die.

A :class:`~repro.runtime.runner.PipelineRunner` normally lets any
exception from a stage propagate — correct for the paper-faithful
pipeline, fatal for a production service where a single noisy frame
would turn into a 500.  This module supplies the two policies a runner
can attach per stage:

* :class:`RetryPolicy` — run the stage again (up to ``max_attempts``
  total tries) when it raises one of the named, *catchable* exception
  types.  Useful against transient faults (and against the seeded
  ``stage_exception`` injector of :mod:`repro.faults`).
* :class:`FallbackPolicy` — when the stage still fails, substitute a
  configured value (or call a substitute function on the stage's input)
  instead of propagating, and mark the run *degraded* on its
  :class:`~repro.runtime.trace.RunTrace`.

Exception types are named by string (``"ReproError"``,
``"TrackingError"``, …) so policies stay JSON-serialisable through the
typed config layer; :func:`resolve_catch` maps names to classes and
rejects unknown ones with the full valid vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .. import errors as _errors
from ..errors import ConfigurationError


def _build_catchable() -> dict[str, type[BaseException]]:
    table: dict[str, type[BaseException]] = {
        "Exception": Exception,
        "ValueError": ValueError,
        "RuntimeError": RuntimeError,
        "TimeoutError": TimeoutError,
        "ArithmeticError": ArithmeticError,
    }
    for name in dir(_errors):
        obj = getattr(_errors, name)
        if isinstance(obj, type) and issubclass(obj, _errors.ReproError):
            table[name] = obj
    return table


#: Exception types a policy may name in its ``catch`` tuple.
CATCHABLE_ERRORS: Mapping[str, type[BaseException]] = _build_catchable()


def resolve_catch(names: tuple[str, ...]) -> tuple[type[BaseException], ...]:
    """Map exception-type names to classes; unknown names are errors."""
    if not names:
        raise ConfigurationError("a policy's catch tuple must not be empty")
    unknown = [name for name in names if name not in CATCHABLE_ERRORS]
    if unknown:
        known = ", ".join(sorted(CATCHABLE_ERRORS))
        raise ConfigurationError(
            f"unknown catchable exception(s) {unknown}; choose from: {known}"
        )
    return tuple(CATCHABLE_ERRORS[name] for name in names)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Re-run a failing stage up to ``max_attempts`` total attempts."""

    max_attempts: int = 2
    catch: tuple[str, ...] = ("ReproError",)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry max_attempts must be >= 1")
        resolve_catch(self.catch)  # validate eagerly

    def exceptions(self) -> tuple[type[BaseException], ...]:
        """The exception classes this policy retries on."""
        return resolve_catch(self.catch)


@dataclass(frozen=True, slots=True)
class FallbackPolicy:
    """Substitute a value when a stage fails beyond its retries.

    ``substitute`` is either a plain value or a callable
    ``(value, context) -> value`` invoked with the failing stage's
    input; callables may also patch context artifacts downstream
    stages require.
    """

    substitute: Any = None
    catch: tuple[str, ...] = ("ReproError",)

    def __post_init__(self) -> None:
        resolve_catch(self.catch)  # validate eagerly

    def exceptions(self) -> tuple[type[BaseException], ...]:
        """The exception classes this policy absorbs."""
        return resolve_catch(self.catch)

    def produce(self, value: Any, context: Any) -> Any:
        """The substitute value for a failing stage."""
        if callable(self.substitute):
            return self.substitute(value, context)
        return self.substitute


@dataclass(frozen=True, slots=True)
class StagePolicy:
    """Retry and/or fallback behaviour of one named stage."""

    retry: RetryPolicy | None = None
    fallback: FallbackPolicy | None = None


#: Convenience alias for the runner's policies argument.
PolicyMap = Mapping[str, StagePolicy]


def retrying(
    max_attempts: int = 2, catch: tuple[str, ...] = ("ReproError",)
) -> StagePolicy:
    """Shorthand: a retry-only stage policy."""
    return StagePolicy(retry=RetryPolicy(max_attempts, catch))


def falling_back(
    substitute: Any | Callable[[Any, Any], Any],
    catch: tuple[str, ...] = ("ReproError",),
) -> StagePolicy:
    """Shorthand: a fallback-only stage policy."""
    return StagePolicy(fallback=FallbackPolicy(substitute, catch))
