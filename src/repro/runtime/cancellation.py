"""Cooperative cancellation for pipeline runs.

A :class:`CancellationToken` is a thread-safe flag shared between the
party that wants a run stopped (a job-cancel endpoint, a signal
handler) and the :class:`~repro.runtime.runner.PipelineRunner`
executing it.  The runner checks the token *between* stages — stages
themselves never see it, so a cancelled run stops at the next stage
boundary with a :class:`~repro.errors.CancelledError` rather than
corrupting in-flight work.  Retry/fallback policies never observe the
cancellation either: the check happens outside the per-stage policy
machinery.
"""

from __future__ import annotations

import threading

from ..errors import CancelledError


class CancellationToken:
    """Thread-safe, one-way cancellation flag.

    ``cancel()`` may be called from any thread, any number of times;
    once set the token never resets.  The executing side polls
    :attr:`cancelled` or calls :meth:`raise_if_cancelled` at safe
    points.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def raise_if_cancelled(self, where: str = "") -> None:
        """Raise :class:`~repro.errors.CancelledError` if cancelled."""
        if self._event.is_set():
            suffix = f" before stage {where!r}" if where else ""
            raise CancelledError(f"run cancelled{suffix}")

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"
