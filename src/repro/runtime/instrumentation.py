"""Spans, counters and structured events with pluggable sinks.

One :class:`Instrumentation` instance accompanies one pipeline run.  It
does two jobs:

* **accumulate** — wall-clock time per named span and totals per named
  counter, cheap enough to stay enabled on the hot path (a span costs
  two ``perf_counter`` calls and a dict update);
* **forward** — every observation as a structured :class:`SpanEvent`
  to a :class:`Sink`: :class:`NullSink` (silent, the default),
  :class:`LoggingSink` (module-level logger, the openpifpaf-style
  ``LOG`` + ``time`` idiom), or :class:`MemorySink` (captures
  everything for tests).

Span names are slash-scoped (``segmentation/subtract``,
``tracking/frame``); counter names are dot-scoped
(``ga.evaluations``, ``fitness.silhouette_points``).  Repeated spans
and counters accumulate, so per-frame work shows up as one row with a
call count rather than hundreds of rows.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Protocol, runtime_checkable

from .trace import RunTrace, StageTiming

LOG = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One structured observation forwarded to a sink.

    ``kind`` is ``"span"`` (``value`` = seconds), ``"counter"``
    (``value`` = increment) or ``"event"`` (``value`` is ``None``).
    """

    kind: str
    name: str
    value: float | None = None
    fields: tuple[tuple[str, Any], ...] = ()

    def field_dict(self) -> dict[str, Any]:
        """The event's attached fields as a dictionary."""
        return dict(self.fields)


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive :class:`SpanEvent` observations."""

    def emit(self, event: SpanEvent) -> None:
        """Consume one observation."""
        ...


class NullSink:
    """Silent sink: observations are accumulated but never reported."""

    __slots__ = ()

    def emit(self, event: SpanEvent) -> None:
        pass


class LoggingSink:
    """Forward observations to a standard-library logger."""

    __slots__ = ("_logger", "_level")

    def __init__(
        self,
        logger: logging.Logger | None = None,
        level: int = logging.DEBUG,
    ) -> None:
        self._logger = logger or LOG
        self._level = level

    def emit(self, event: SpanEvent) -> None:
        if not self._logger.isEnabledFor(self._level):
            return
        if event.kind == "span":
            self._logger.log(
                self._level, "span %s: %.6fs %s", event.name, event.value,
                event.field_dict(),
            )
        elif event.kind == "counter":
            self._logger.log(
                self._level, "counter %s += %g", event.name, event.value
            )
        else:
            self._logger.log(
                self._level, "event %s %s", event.name, event.field_dict()
            )


class MemorySink:
    """Capture every observation in memory (for tests and notebooks)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[SpanEvent] = []

    def emit(self, event: SpanEvent) -> None:
        self.events.append(event)

    def named(self, name: str) -> list[SpanEvent]:
        """All captured observations with the given name."""
        return [event for event in self.events if event.name == name]

    def spans(self) -> list[SpanEvent]:
        """All captured span observations."""
        return [event for event in self.events if event.kind == "span"]

    def counters(self) -> list[SpanEvent]:
        """All captured counter observations."""
        return [event for event in self.events if event.kind == "counter"]

    def clear(self) -> None:
        """Drop everything captured so far."""
        self.events.clear()


class Instrumentation:
    """Per-run collector of span timings, counters and events.

    Create one per pipeline run; share it across the layers of that run
    (runner → segmentation → tracker → GA) so their observations land
    in one place.  :meth:`trace` snapshots the accumulated state as an
    immutable :class:`~repro.runtime.trace.RunTrace`.
    """

    __slots__ = ("sink", "_seconds", "_calls", "_counters")

    def __init__(self, sink: Sink | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._counters: dict[str, float] = {}

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a block of work under ``name`` (accumulates on repeat)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._calls[name] = self._calls.get(name, 0) + 1
            self.sink.emit(
                SpanEvent("span", name, seconds, tuple(fields.items()))
            )

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter."""
        self._counters[name] = self._counters.get(name, 0.0) + value
        self.sink.emit(SpanEvent("counter", name, value))

    def event(self, name: str, **fields: Any) -> None:
        """Emit a structured point-in-time event to the sink."""
        self.sink.emit(SpanEvent("event", name, None, tuple(fields.items())))

    def merge(self, other: "Instrumentation") -> None:
        """Fold another collector's accumulated state into this one.

        Used by parallel fan-outs: each worker records into a private
        collector (this class is not thread-safe), and the coordinator
        merges them once the batch completes.  Only the accumulated
        spans and counters are folded — the sink sees nothing, since
        the per-observation events already happened in the worker.
        """
        for name, seconds in other._seconds.items():
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._calls[name] = self._calls.get(name, 0) + other._calls[name]
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + value

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def timings(self) -> tuple[StageTiming, ...]:
        """Every span accumulated so far, in first-recorded order."""
        return tuple(
            StageTiming(name, seconds, self._calls[name])
            for name, seconds in self._seconds.items()
        )

    def counters(self) -> dict[str, float]:
        """A copy of the accumulated counters."""
        return dict(self._counters)

    def counter(self, name: str, default: float = 0.0) -> float:
        """Current value of one counter."""
        return self._counters.get(name, default)

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one span (0.0 if it never ran)."""
        return self._seconds.get(name, 0.0)

    def trace(
        self,
        stages: tuple[StageTiming, ...] = (),
        total_seconds: float | None = None,
        metadata: dict[str, Any] | None = None,
    ) -> RunTrace:
        """Freeze the accumulated state into a :class:`RunTrace`."""
        timings = self.timings()
        if total_seconds is None:
            total_seconds = sum(timing.seconds for timing in stages)
        return RunTrace(
            stages=stages,
            timings=timings,
            counters=self.counters(),
            total_seconds=total_seconds,
            metadata=dict(metadata) if metadata else {},
        )
