"""Cumulative, thread-safe metrics across many pipeline runs.

:class:`MetricsRegistry` is the service-side aggregation point: each
request runs the pipeline with its own per-run
:class:`~repro.runtime.instrumentation.Instrumentation`, then folds the
resulting :class:`~repro.runtime.trace.RunTrace` in here.  The
``GET /metrics`` endpoint serves :meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import threading
from typing import Any

from .trace import RunTrace


class MetricsRegistry:
    """Accumulate stage timings, counters and request counts."""

    __slots__ = ("_lock", "_stage_seconds", "_stage_calls", "_counters",
                 "_requests")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stage_seconds: dict[str, float] = {}
        self._stage_calls: dict[str, int] = {}
        self._counters: dict[str, float] = {}
        self._requests: dict[str, int] = {}

    def observe_trace(self, trace: RunTrace) -> None:
        """Fold one run's trace into the cumulative totals."""
        with self._lock:
            for timing in (trace.timings or trace.stages):
                self._stage_seconds[timing.name] = (
                    self._stage_seconds.get(timing.name, 0.0) + timing.seconds
                )
                self._stage_calls[timing.name] = (
                    self._stage_calls.get(timing.name, 0) + timing.calls
                )
            for name, value in trace.counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value

    def increment(self, name: str, value: float = 1.0) -> None:
        """Add to a free-form cumulative counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def count_request(self, endpoint: str, status: int) -> None:
        """Record one served request by endpoint and status code."""
        with self._lock:
            self._requests["total"] = self._requests.get("total", 0) + 1
            by_endpoint = f"endpoint:{endpoint}"
            self._requests[by_endpoint] = self._requests.get(by_endpoint, 0) + 1
            by_status = f"status:{status}"
            self._requests[by_status] = self._requests.get(by_status, 0) + 1

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready copy of everything accumulated so far."""
        with self._lock:
            return {
                "requests": dict(self._requests),
                "stages": {
                    name: {
                        "calls": self._stage_calls[name],
                        "total_seconds": seconds,
                        "mean_seconds": (
                            seconds / self._stage_calls[name]
                            if self._stage_calls[name]
                            else 0.0
                        ),
                    }
                    for name, seconds in self._stage_seconds.items()
                },
                "counters": dict(self._counters),
            }
