"""Composable stage runtime with built-in observability.

The architectural seam of the library: independent, introspectable
stages (:class:`Stage`) composed by a thin :class:`PipelineRunner`,
with an :class:`Instrumentation` layer recording per-stage wall-clock
timings, counters and structured span events into a pluggable sink —
silent (:class:`NullSink`), logging (:class:`LoggingSink`) or
in-memory (:class:`MemorySink`).  One run yields a :class:`RunTrace`;
many runs aggregate into a thread-safe :class:`MetricsRegistry` (the
service's ``/metrics``).

The segmentation pipeline, the GA pose tracker, the scorer and the
end-to-end :class:`~repro.pipeline.JumpAnalyzer` are all composed from
this package; perf work (caching, batching, frame-parallelism) hooks
in here rather than into any one algorithm.
"""

from .cancellation import CancellationToken
from .instrumentation import (
    Instrumentation,
    LoggingSink,
    MemorySink,
    NullSink,
    Sink,
    SpanEvent,
)
from .metrics import MetricsRegistry
from .policies import (
    CATCHABLE_ERRORS,
    FallbackPolicy,
    RetryPolicy,
    StagePolicy,
    falling_back,
    resolve_catch,
    retrying,
)
from .runner import PipelineRunner, RunOutcome
from .stage import FunctionStage, Stage, StageContext, stage
from .trace import RunTrace, StageTiming

__all__ = [
    "CATCHABLE_ERRORS",
    "CancellationToken",
    "FallbackPolicy",
    "FunctionStage",
    "Instrumentation",
    "LoggingSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PipelineRunner",
    "RetryPolicy",
    "RunOutcome",
    "RunTrace",
    "Sink",
    "SpanEvent",
    "Stage",
    "StageContext",
    "StagePolicy",
    "StageTiming",
    "falling_back",
    "resolve_catch",
    "retrying",
    "stage",
]
