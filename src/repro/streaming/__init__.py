"""Frame-at-a-time analysis with provisional results.

:class:`StreamingAnalyzer` is the push-based core of the pipeline: feed
it one frame at a time (``push_frame``), read the provisional state it
returns (:class:`FrameUpdate`), and call ``finish()`` for the final
:class:`~repro.pipeline.JumpAnalysis`.  The batch
:meth:`~repro.pipeline.JumpAnalyzer.analyze` is a thin wrapper that
feeds a whole sequence through a stream, so there is exactly one
pipeline — see :class:`~repro.pipeline.StreamingConfig` for the
warm-up/provisional knobs and ``docs/streaming.md`` for the protocol.
"""

from .analyzer import FrameUpdate, ProvisionalEstimate, StreamingAnalyzer

__all__ = [
    "FrameUpdate",
    "ProvisionalEstimate",
    "StreamingAnalyzer",
]
